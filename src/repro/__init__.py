"""COSMOS reproduction: RL-enhanced counter-cache optimization for secure memory.

This package reimplements, in pure Python, the full system described in
*COSMOS: RL-Enhanced Locality-Aware Counter Cache Optimization for Secure
Memory* (MICRO 2025) and every substrate its evaluation depends on: a
multi-core cache hierarchy, a DDR4 model, an AES-CTR + MAC + Merkle-tree
secure-memory engine with MorphCtr counters, the COSMOS RL predictors and
LCR-CTR cache, the comparator designs (EMCC, RMCC), and trace generators
for the paper's graph, SPEC and ML workloads.

Quickstart::

    from repro import generate_graph_trace, simulate, SimulationConfig

    trace = generate_graph_trace("dfs", max_accesses=100_000)
    baseline = simulate("morphctr", trace, workload="dfs")
    cosmos = simulate("cosmos", trace, workload="dfs")
    print(cosmos.speedup_over(baseline))
"""

from .core import (
    CosmosConfig,
    CosmosController,
    CosmosVariant,
    CtrLocalityPredictor,
    DataLocationPredictor,
    compute_overhead,
)
from .mem import (
    AccessType,
    Cache,
    DramModel,
    HierarchyConfig,
    MemoryAccess,
    MemoryHierarchy,
)
from .secure import (
    AesCtrEngine,
    MerkleTree,
    MorphCtrCounters,
    SecureLayout,
    SecureMemoryEngine,
    make_design,
)
from .sim import (
    SimulationConfig,
    SimulationResult,
    Simulator,
    simulate,
    simulate_designs,
    smat,
)
from .exec import (
    JobSpec,
    ParallelRunner,
    ResultCache,
)
from .workloads import (
    GRAPH_WORKLOADS,
    ML_WORKLOADS,
    SPEC_WORKLOADS,
    Trace,
    generate_graph_trace,
    generate_ml_trace,
    generate_spec_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "AesCtrEngine",
    "Cache",
    "CosmosConfig",
    "CosmosController",
    "CosmosVariant",
    "CtrLocalityPredictor",
    "DataLocationPredictor",
    "DramModel",
    "GRAPH_WORKLOADS",
    "HierarchyConfig",
    "JobSpec",
    "ML_WORKLOADS",
    "MemoryAccess",
    "MemoryHierarchy",
    "MerkleTree",
    "MorphCtrCounters",
    "ParallelRunner",
    "ResultCache",
    "SPEC_WORKLOADS",
    "SecureLayout",
    "SecureMemoryEngine",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "Trace",
    "compute_overhead",
    "generate_graph_trace",
    "generate_ml_trace",
    "generate_spec_trace",
    "make_design",
    "simulate",
    "simulate_designs",
    "smat",
    "__version__",
]
