"""Simulation results: per-run metrics and cross-design comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mem.stats import TrafficStats
from .smat import SmatInputs, smat, smat_unprotected


@dataclass
class SimulationResult:
    """Everything measured from running one trace through one design.

    Attributes:
        design: Design name (``np``, ``morphctr``, ``cosmos``...).
        workload: Workload name the trace came from.
        accesses: Trace records simulated.
        instructions: Instructions represented (memory + non-memory).
        cycles: Total cycles of the IPC proxy model.
        total_latency: Sum of per-access latencies (cycles, no overlap).
        l1_miss_rate / l2_miss_rate / llc_miss_rate: Hierarchy miss rates.
        ctr_miss_rate: CTR-cache miss rate (0 for NP).
        traffic: DRAM traffic breakdown.
        extra: Design-specific metrics (prediction accuracy, bypasses...).
    """

    design: str
    workload: str
    accesses: int
    instructions: int
    cycles: float
    total_latency: int
    l1_miss_rate: float
    l2_miss_rate: float
    llc_miss_rate: float
    ctr_miss_rate: float
    traffic: TrafficStats
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle of the proxy CPU model."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def average_latency(self) -> float:
        """Mean unoverlapped latency per access."""
        if self.accesses == 0:
            return 0.0
        return self.total_latency / self.accesses

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Relative performance vs ``baseline`` (cycles ratio)."""
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles

    def normalized_to(self, reference: "SimulationResult") -> float:
        """Performance normalised to ``reference`` (typically NP).

        1.0 means parity with the reference; the paper's Figs. 10/15/16/17
        plot exactly this quantity.
        """
        return self.speedup_over(reference)

    def smat_inputs(
        self,
        l1_latency: float,
        l2_latency: float,
        llc_latency: float,
        dram_latency: float,
        ctr_hit_latency: float,
        ctr_dram_latency: float,
        ctr_verify_latency: float,
    ) -> SmatInputs:
        """Bundle measured miss rates with supplied latencies for Eq. 1-2."""
        return SmatInputs(
            l1_latency=l1_latency,
            l2_latency=l2_latency,
            llc_latency=llc_latency,
            dram_latency=dram_latency,
            ctr_hit_latency=ctr_hit_latency,
            ctr_dram_latency=ctr_dram_latency,
            ctr_verify_latency=ctr_verify_latency,
            mr_l1=self.l1_miss_rate,
            mr_l2=self.l2_miss_rate,
            mr_llc=self.llc_miss_rate,
            mr_ctr=self.ctr_miss_rate,
        )

    def smat(self, inputs: Optional[SmatInputs] = None, **latencies) -> float:
        """Compute SMAT from this run's miss rates.

        Either pass a ready :class:`SmatInputs` or the latency keyword
        arguments accepted by :meth:`smat_inputs`.
        """
        if inputs is None:
            inputs = self.smat_inputs(**latencies)
        if self.design == "np" or self.ctr_miss_rate == 0.0 and self.traffic.ctr_reads == 0:
            return smat_unprotected(inputs)
        return smat(inputs)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary losslessly capturing every field.

        Floats survive a JSON round-trip exactly (Python serialises them
        with ``repr`` precision), so :meth:`from_dict` reconstructs a
        record equal to the original — the property the on-disk result
        cache relies on.
        """
        return {
            "design": self.design,
            "workload": self.workload,
            "accesses": self.accesses,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "total_latency": self.total_latency,
            "l1_miss_rate": self.l1_miss_rate,
            "l2_miss_rate": self.l2_miss_rate,
            "llc_miss_rate": self.llc_miss_rate,
            "ctr_miss_rate": self.ctr_miss_rate,
            "traffic": {
                "data_reads": self.traffic.data_reads,
                "data_writes": self.traffic.data_writes,
                "ctr_reads": self.traffic.ctr_reads,
                "ctr_writes": self.traffic.ctr_writes,
                "mt_reads": self.traffic.mt_reads,
                "mac_accesses": self.traffic.mac_accesses,
                "reencryption_requests": self.traffic.reencryption_requests,
            },
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`.

        Raises:
            KeyError/TypeError: If ``data`` does not have the expected
                shape — callers treating deserialisation as fallible (the
                result cache) catch these and discard the entry.
        """
        traffic = data["traffic"]
        return cls(
            design=str(data["design"]),
            workload=str(data["workload"]),
            accesses=int(data["accesses"]),
            instructions=int(data["instructions"]),
            cycles=float(data["cycles"]),
            total_latency=int(data["total_latency"]),
            l1_miss_rate=float(data["l1_miss_rate"]),
            l2_miss_rate=float(data["l2_miss_rate"]),
            llc_miss_rate=float(data["llc_miss_rate"]),
            ctr_miss_rate=float(data["ctr_miss_rate"]),
            traffic=TrafficStats(
                data_reads=int(traffic["data_reads"]),
                data_writes=int(traffic["data_writes"]),
                ctr_reads=int(traffic["ctr_reads"]),
                ctr_writes=int(traffic["ctr_writes"]),
                mt_reads=int(traffic["mt_reads"]),
                mac_accesses=int(traffic["mac_accesses"]),
                reencryption_requests=int(traffic["reencryption_requests"]),
            ),
            extra=dict(data.get("extra", {})),
        )

    def summary(self) -> Dict[str, object]:
        """Flat dictionary for report tables."""
        data = {
            "design": self.design,
            "workload": self.workload,
            "accesses": self.accesses,
            "ipc": round(self.ipc, 4),
            "avg_latency": round(self.average_latency, 2),
            "l1_miss_rate": round(self.l1_miss_rate, 4),
            "l2_miss_rate": round(self.l2_miss_rate, 4),
            "llc_miss_rate": round(self.llc_miss_rate, 4),
            "ctr_miss_rate": round(self.ctr_miss_rate, 4),
            "dram_requests": self.traffic.total,
            "mt_reads": self.traffic.mt_reads,
        }
        # Sorted so table columns are stable regardless of how the result
        # was produced — locally, or round-tripped through the experiment
        # service's canonical (sorted-keys) wire format.
        data.update({key: round(value, 4)
                     for key, value in sorted(self.extra.items())})
        return data
