"""Trace-driven simulator: runs a workload trace through a secure design.

This is the reproduction's stand-in for Gem5 SE mode (DESIGN.md,
substitution 1): accesses flow through the design's cache hierarchy and
secure-memory engine, per-access latencies are accumulated, and an IPC
proxy is derived with a fixed memory-level-parallelism overlap factor.

Three dispatch paths are accepted by :meth:`Simulator.run`:

* **array traces** (:class:`~repro.workloads.trace.Trace` /
  :class:`~repro.workloads.trace.TraceArrays`) take the fast path — the
  packed address/type/core arrays are unpacked once into scalar lists and
  fed to ``design.process_fast`` with pre-shifted block addresses, so no
  per-access object is ever constructed;
* the **batched** path (``path="batched"``) layers the epoch-batched
  kernel of :mod:`repro.sim.batched` on top of the same arrays: each
  epoch's exact L1 hit/miss partition is computed vectorised and only the
  miss tail runs through scalar ``process_fast``, falling back to the
  arrays path for designs the kernel cannot model;
* any other ``Iterable[MemoryAccess]`` (lists, generators) takes the
  legacy object path through ``design.process``.

All paths execute the identical sequence of cache/engine operations and
therefore produce byte-identical metrics — a contract locked down by the
golden-metrics determinism test and the ``verify diff --path-pair``
differential oracle.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Union

from .. import obs
from ..mem.access import AccessType, MemoryAccess
from ..secure.counters import make_counter_scheme
from ..secure.designs import CosmosDesign, SecureDesign, make_design
from ..secure.layout import SecureLayout
from ..workloads.trace import TraceArrays
from .batched import run_batched
from .config import SimulationConfig
from .results import SimulationResult

_WRITE = int(AccessType.WRITE)


def _merge_hooks(
    progress_hook: Optional[Callable[[int, "Simulator"], None]],
    progress_interval: int,
    sampler: "obs.SimSampler",
) -> tuple:
    """Combine a caller's progress hook with the observability sampler.

    With no caller hook the sampler simply takes the hook slot at its own
    cadence.  With both, the loop runs at the gcd of the two intervals and
    each consumer fires only on its own multiples, preserving the exact
    callback sequence either would have seen alone.
    """
    if progress_hook is None:
        return sampler, sampler.interval
    user_hook, user_interval = progress_hook, progress_interval
    sample_interval = sampler.interval
    interval = math.gcd(user_interval, sample_interval)

    def merged(done: int, simulator: "Simulator") -> None:
        if done % user_interval == 0:
            user_hook(done, simulator)
        if done % sample_interval == 0:
            sampler.sample(done)

    return merged, interval


def build_layout(config: SimulationConfig) -> SecureLayout:
    """Layout matching the configured memory size and counter scheme."""
    scheme = make_counter_scheme(config.counter_scheme)
    return SecureLayout.for_memory_size(config.memory_bytes, scheme.blocks_per_ctr)


def build_design(name: str, config: SimulationConfig) -> SecureDesign:
    """Instantiate design ``name`` under ``config``."""
    layout = build_layout(config)
    kwargs: Dict[str, object] = {
        "hierarchy_config": config.hierarchy,
        "layout": layout,
    }
    if name != "np":
        kwargs["engine_config"] = config.engine
        kwargs["counter_scheme"] = config.counter_scheme
    if name.startswith("cosmos"):
        kwargs["cosmos_config"] = config.cosmos
    return make_design(name, **kwargs)


class Simulator:
    """Drives one design through a trace and produces a result record."""

    def __init__(
        self,
        design: SecureDesign,
        config: Optional[SimulationConfig] = None,
        workload: str = "trace",
    ) -> None:
        self.design = design
        self.config = config if config is not None else SimulationConfig()
        self.workload = workload
        self.total_latency = 0
        self.accesses = 0
        #: Windowed time-series sampler of the last observed run (populated
        #: by :meth:`run` only when observability is enabled).
        self.sampler: Optional[obs.SimSampler] = None

    def run(
        self,
        trace: Union[Iterable[MemoryAccess], TraceArrays],
        progress_hook: Optional[Callable[[int, "Simulator"], None]] = None,
        progress_interval: int = 100_000,
        warmup_accesses: int = 0,
        path: Optional[str] = None,
        batch_epoch: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate every access in ``trace`` and return the result.

        Args:
            trace: Either an iterable of accesses (a list or a generator)
                or an array-native trace — a :class:`TraceArrays` or any
                object exposing a zero-argument ``arrays()`` method (e.g.
                :class:`~repro.workloads.trace.Trace`).  Array traces take
                the allocation-free fast path.
            progress_hook: Optional callback ``(accesses_done, simulator)``
                invoked every ``progress_interval`` accesses — used by the
                convergence experiments (paper Fig. 8) to snapshot metrics
                mid-run.
            progress_interval: Callback period in accesses.
            warmup_accesses: Accesses to process before the measurement
                window: caches fill and predictors train during warmup,
                but every statistic is reset afterwards.
            path: Force a dispatch path instead of auto-detecting from the
                trace type: ``"arrays"`` (the allocation-free fast loop),
                ``"batched"`` (the epoch-batched vectorised kernel of
                :mod:`repro.sim.batched`, falling back to the arrays loop
                for designs it cannot model) or ``"objects"`` (the legacy
                ``design.process`` loop).  All paths execute the identical
                operation sequence and must produce byte-identical
                metrics — the contract the differential oracle
                (``repro.verify``) checks by running the same trace down
                each one.  ``None``/``"auto"`` keeps the existing
                behaviour.
            batch_epoch: Epoch length for the batched kernel (default
                :data:`repro.sim.batched.DEFAULT_EPOCH`).  Metrics never
                depend on it — chunk-boundary tests and the fuzz harness
                vary it to prove exactly that.  Ignored on other paths.

        When observability is enabled (``REPRO_OBS=1``), a
        :class:`~repro.obs.timeseries.SimSampler` rides in the progress-hook
        slot: every sampling window it snapshots CTR-cache hit rate, MT
        verify depth, DRAM row-buffer hit rate and RL predictor state into
        ``self.sampler.series``, and rare events (counter overflows,
        re-encryption storms, predictor mode flips) into
        ``self.sampler.events``.  When disabled, the hookless fast loops
        run exactly as before — this check is the only cost.
        """
        sampler: Optional[obs.SimSampler] = None
        if obs.enabled():
            sampler = obs.SimSampler(self)
            self.sampler = sampler
            engine = getattr(self.design, "engine", None)
            if engine is not None:
                engine.obs_events = sampler.events
                engine.register_obs_metrics(
                    obs.registry(), f"sim.{self.design.name}"
                )
            progress_hook, progress_interval = _merge_hooks(
                progress_hook, progress_interval, sampler
            )
        if path not in (None, "auto", "arrays", "objects", "batched"):
            raise ValueError(
                f"path must be 'arrays', 'batched', 'objects' or 'auto', not {path!r}"
            )
        arrays: Optional[TraceArrays] = None
        if path != "objects":
            if isinstance(trace, TraceArrays):
                arrays = trace
            else:
                to_arrays = getattr(trace, "arrays", None)
                if callable(to_arrays):
                    arrays = to_arrays()
            if arrays is None and path in ("arrays", "batched"):
                # Stream plain iterables into packed arrays chunk by chunk
                # instead of materialising the whole trace as a list first.
                arrays = TraceArrays.from_iter(trace)
        elif isinstance(trace, TraceArrays):
            trace = trace.to_accesses()
        with obs.span("sim.run", design=self.design.name, workload=self.workload):
            if arrays is not None and path == "batched":
                self._run_batched(
                    arrays, progress_hook, progress_interval, warmup_accesses,
                    batch_epoch,
                )
            elif arrays is not None:
                self._run_arrays(arrays, progress_hook, progress_interval, warmup_accesses)
            else:
                self._run_objects(trace, progress_hook, progress_interval, warmup_accesses)
        if sampler is not None:
            sampler.finish(self.accesses)
        return self.result()

    def _run_arrays(
        self,
        arrays: TraceArrays,
        progress_hook: Optional[Callable[[int, "Simulator"], None]],
        progress_interval: int,
        warmup_accesses: int,
    ) -> None:
        """Array fast path: scalars straight into ``design.process_fast``.

        The packed arrays are unpacked once (``tolist`` yields plain
        Python ints/bools, the exact values ``MemoryAccess`` would carry),
        block addresses arrive pre-shifted, and the hot loop is free of
        per-access allocation and hook bookkeeping.
        """
        design = self.design
        process = design.process_fast
        blocks = arrays.block_addresses.tolist()
        writes = (arrays.types == _WRITE).tolist()
        cores = arrays.cores.tolist()
        start = 0
        if warmup_accesses > 0:
            start = min(warmup_accesses, len(blocks))
            for index in range(start):
                process(blocks[index], writes[index], cores[index])
            design.reset_stats()
            self.total_latency = 0
            self.accesses = 0
        if progress_hook is None:
            total = 0
            for block, is_write, core in zip(
                blocks[start:], writes[start:], cores[start:]
            ):
                total += process(block, is_write, core)
            self.total_latency += total
            self.accesses += len(blocks) - start
            return
        for index in range(start, len(blocks)):
            self.total_latency += process(blocks[index], writes[index], cores[index])
            self.accesses += 1
            if self.accesses % progress_interval == 0:
                progress_hook(self.accesses, self)

    def _run_batched(
        self,
        arrays: TraceArrays,
        progress_hook: Optional[Callable[[int, "Simulator"], None]],
        progress_interval: int,
        warmup_accesses: int,
        batch_epoch: Optional[int] = None,
    ) -> None:
        """Epoch-batched kernel; falls back to the scalar arrays loop.

        :func:`repro.sim.batched.run_batched` returns False — without
        touching any design or simulator state — when the design's L1s do
        not satisfy the kernel's model (associativity != 2, custom
        replacement) or the trace carries negative addresses; those runs
        take the ordinary arrays path and still produce identical metrics.
        """
        if not run_batched(
            self, arrays, progress_hook, progress_interval, warmup_accesses,
            epoch_size=batch_epoch,
        ):
            self._run_arrays(arrays, progress_hook, progress_interval, warmup_accesses)

    def _run_objects(
        self,
        trace: Iterable[MemoryAccess],
        progress_hook: Optional[Callable[[int, "Simulator"], None]],
        progress_interval: int,
        warmup_accesses: int,
    ) -> None:
        """Legacy object path for plain iterables of ``MemoryAccess``."""
        design = self.design
        process = design.process
        iterator = iter(trace)
        if warmup_accesses > 0:
            for _, access in zip(range(warmup_accesses), iterator):
                process(access)
            design.reset_stats()
            self.total_latency = 0
            self.accesses = 0
        if progress_hook is None:
            # Hookless loop: the common path pays no per-access hook test.
            total = 0
            count = 0
            for access in iterator:
                total += process(access)
                count += 1
            self.total_latency += total
            self.accesses += count
            return
        for access in iterator:
            self.total_latency += process(access)
            self.accesses += 1
            if self.accesses % progress_interval == 0:
                progress_hook(self.accesses, self)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def cycles(self) -> float:
        """IPC-proxy cycle count.

        Three components: instruction issue, memory stalls (overlapped by
        the MLP factor), and DRAM channel serialisation — secure-memory
        metadata traffic (CTR, MT, MAC, re-encryption) competes with data
        for the same channel.

        The serialisation term is *measured*: the DRAM model tracks
        data-bus occupancy per channel (one ``burst`` per request,
        including background re-encryption), and the busiest channel's
        occupancy — scaled by ``dram_bandwidth_cycles_per_request`` per
        burst — is what serialises.  With one channel this equals the
        request count times the knob; with more channels, spreading
        traffic across them genuinely relieves the bottleneck.  Designs
        without a DRAM model fall back to the flat per-request charge.
        """
        cpu = self.config.cpu
        issue_cycles = self.accesses * (1 + cpu.nonmem_instructions_per_access)
        stall_cycles = self.total_latency / cpu.mlp_factor
        dram = self.design.dram_model()
        if dram is None:
            bandwidth_cycles = (
                self.design.traffic().total * cpu.dram_bandwidth_cycles_per_request
            )
        else:
            bandwidth_cycles = dram.stats.max_channel_busy * (
                cpu.dram_bandwidth_cycles_per_request / dram.timings.burst
            )
        return issue_cycles + stall_cycles + bandwidth_cycles

    def instructions(self) -> int:
        """Instructions represented by the trace under the CPU model."""
        return self.accesses * (1 + self.config.cpu.nonmem_instructions_per_access)

    def result(self) -> SimulationResult:
        """Snapshot the current metrics into a :class:`SimulationResult`."""
        design = self.design
        extra: Dict[str, float] = {
            "bypass_fraction": design.stats.bypass_fraction,
        }
        if isinstance(design, CosmosDesign):
            controller = design.controller
            if controller.location is not None:
                stats = controller.location.stats
                extra["prediction_accuracy"] = stats.accuracy
                extra["off_chip_misprediction_rate"] = stats.off_chip_misprediction_rate
                extra.update(
                    {
                        f"pred_{key}": value
                        for key, value in stats.distribution().items()
                    }
                )
            if controller.locality is not None:
                extra["good_locality_fraction"] = controller.locality.stats.good_fraction
        return SimulationResult(
            design=design.name,
            workload=self.workload,
            accesses=self.accesses,
            instructions=self.instructions(),
            cycles=self.cycles(),
            total_latency=self.total_latency,
            l1_miss_rate=design.hierarchy.l1_miss_rate(),
            l2_miss_rate=design.hierarchy.l2_miss_rate(),
            llc_miss_rate=design.hierarchy.llc_miss_rate(),
            ctr_miss_rate=design.ctr_miss_rate(),
            traffic=design.traffic(),
            extra=extra,
        )


def simulate(
    design_name: str,
    trace: Iterable[MemoryAccess],
    config: Optional[SimulationConfig] = None,
    workload: str = "trace",
    path: Optional[str] = None,
    batch_epoch: Optional[int] = None,
) -> SimulationResult:
    """One-call convenience: build the design, run the trace, return results."""
    config = config if config is not None else SimulationConfig()
    design = build_design(design_name, config)
    simulator = Simulator(design, config, workload)
    return simulator.run(trace, path=path, batch_epoch=batch_epoch)


def simulate_designs(
    design_names: List[str],
    trace_factory: Callable[[], Iterable[MemoryAccess]],
    config: Optional[SimulationConfig] = None,
    workload: str = "trace",
) -> Dict[str, SimulationResult]:
    """Run the *same* trace through several designs.

    ``trace_factory`` is called once per design so generators are not
    shared across runs.
    """
    results: Dict[str, SimulationResult] = {}
    for name in design_names:
        results[name] = simulate(name, trace_factory(), config, workload)
    return results
