"""Trace-driven simulation layer: config (Table 3), runner, results, SMAT."""

from .config import CpuModel, SimulationConfig, small_test_config
from .results import SimulationResult
from .simulator import Simulator, build_design, build_layout, simulate, simulate_designs
from .smat import SmatInputs, ctr_term, smat, smat_unprotected

__all__ = [
    "CpuModel",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SmatInputs",
    "build_design",
    "build_layout",
    "ctr_term",
    "simulate",
    "simulate_designs",
    "small_test_config",
    "smat",
    "smat_unprotected",
]
