"""Secure Memory Access Time (SMAT) — paper Sec. 6.1.3, Eqs. 1-2.

SMAT folds the per-level latencies and measured miss rates into one
average-latency-per-access figure:

    SMAT = L1 + MR_L1 * (L2 + MR_L2 * (LLC + MR_LLC * (CTR + DRAM)))
    CTR  = CTR_hit + MR_CTR * (CTR_DRAM + CTR_verify)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SmatInputs:
    """Everything Eq. 1-2 needs: latencies (cycles) and miss rates [0,1]."""

    l1_latency: float
    l2_latency: float
    llc_latency: float
    dram_latency: float
    ctr_hit_latency: float
    ctr_dram_latency: float
    ctr_verify_latency: float
    mr_l1: float
    mr_l2: float
    mr_llc: float
    mr_ctr: float

    def __post_init__(self) -> None:
        for name in ("mr_l1", "mr_l2", "mr_llc", "mr_ctr"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def ctr_term(inputs: SmatInputs) -> float:
    """Equation 2: average CTR-access cost."""
    return inputs.ctr_hit_latency + inputs.mr_ctr * (
        inputs.ctr_dram_latency + inputs.ctr_verify_latency
    )


def smat(inputs: SmatInputs) -> float:
    """Equation 1: average secure-memory access time in cycles."""
    memory_cost = ctr_term(inputs) + inputs.dram_latency
    return inputs.l1_latency + inputs.mr_l1 * (
        inputs.l2_latency
        + inputs.mr_l2 * (inputs.llc_latency + inputs.mr_llc * memory_cost)
    )


def smat_unprotected(inputs: SmatInputs) -> float:
    """Eq. 1 with the CTR term removed (the non-protected reference)."""
    return inputs.l1_latency + inputs.mr_l1 * (
        inputs.l2_latency
        + inputs.mr_l2 * (inputs.llc_latency + inputs.mr_llc * inputs.dram_latency)
    )
