"""Epoch-batched simulation kernel (``Simulator.run(path="batched")``).

The scalar fast path steps one access at a time through Python, even
though the dominant outcome — an L1 hit — touches nothing but one cache
line and three counters.  This kernel restructures the loop around a key
structural property of the hierarchy:

**The always-fill L1 closure.**  Every access ends with its block as the
MRU line of the issuing core's L1: an L1 hit touches the line, and every
L1 miss path (L2 hit, LLC hit, memory fill) ends in exactly one
``l1.fill(block)``.  Hardware prefetches fill L2/LLC only, and nothing
invalidates L1 mid-run.  L1 residency is therefore a pure function of
the access stream itself — for a 2-way LRU L1, of each (core, set)
sub-stream and the carry-in (MRU, LRU) pair — so the exact hit/miss
partition of a whole epoch can be computed *offline*, vectorised, before
any state is mutated.  The scalar miss tail cannot invalidate the
partition: a miss evicts exactly the LRU way the classifier already
modelled.

Per epoch (a chunk of accesses whose end lands on a ``progress_interval``
multiple, preserving the obs-sampler hook contract):

1. **Classify** (vectorised): a stable sort groups the epoch by
   (core, set) segment; per segment, the 2-way always-fill LRU recurrence
   reduces to *change points* — after access ``i`` the MRU is ``b[i]``
   and the LRU is the element just before the last position where the
   stream changed value.  One ``maximum.accumulate`` over the change
   mask yields every access's (MRU, LRU) predecessor pair, hence the
   exact hit mask and the carry-out state, with no Python-level loop.
2. **Drain** (program order): runs of classified hits are applied via the
   design's ``apply_hits_batch`` contract (identical per-line effects and
   clock/counter bookkeeping as ``process_fast``, with a vectorised bulk
   path for long runs), and each classified miss goes through the
   unchanged scalar ``process_fast`` — evictions, writeback cascades, RL
   predict+train, MT walks, counter overflows and DRAM bank stepping all
   mutate state in exactly the scalar order.  Before the drain the
   design may stage vectorised RL hashes for the whole miss tail
   (``stage_predictions``).

**Re-validation.**  ``apply_hits_batch`` checks residency per classified
hit (and, on the bulk path, per distinct line before mutating anything).
Under the closure above a mismatch is unreachable, but if a future
design breaks the contract the kernel splits on the first invalidation:
the epoch remainder is processed scalar, the carry is discarded, and the
next epoch re-seeds from ``snapshot_tags()``.  Designs whose L1s do not
satisfy the classifier model at all (associativity != 2, custom
replacement policies) are detected up front via ``supports_batch_hits``
and the simulator falls back to the arrays path — the dispatch is
behaviour-preserving by construction, which is what the golden-metrics
byte-identity gate and ``verify diff --path-pair`` check end to end.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..mem.access import AccessType

_WRITE = int(AccessType.WRITE)

#: Default epoch length in accesses (the issue's 4-16k window): long
#: enough to amortise the numpy classifier, short enough that the carry
#: arrays and miss staging stay cache-resident.
DEFAULT_EPOCH = 8192


class _Carry:
    """Per-(core, set) classifier carry: (MRU tag, LRU tag) arrays.

    ``valid`` is False before the first epoch and after a
    split-on-first-invalidation fallback; the next epoch re-seeds from
    the design's live L1 state via ``snapshot_tags()``.
    """

    __slots__ = ("top", "second", "valid")

    def __init__(self) -> None:
        self.top: Optional[np.ndarray] = None
        self.second: Optional[np.ndarray] = None
        self.valid = False


def classify_epoch(
    blocks: np.ndarray,
    keys: np.ndarray,
    carry_top: np.ndarray,
    carry_second: np.ndarray,
) -> np.ndarray:
    """Exact L1 hit mask for one epoch; updates the carry state in place.

    ``blocks`` are non-negative block addresses, ``keys`` the parallel
    ``core * num_sets + set_index`` stream.  The carry arrays hold each
    segment's (MRU, LRU) pair, always distinct (sentinels -1/-2 for
    empty ways), which guarantees a change point right after every
    segment's carry prefix — the ``maximum.accumulate`` lookups can
    therefore never escape their segment.
    """
    m = len(blocks)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_blocks = blocks[order]
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    seg_start = np.flatnonzero(boundary)
    seg_keys = sorted_keys[seg_start]
    nseg = len(seg_start)
    seg_len = np.empty(nseg, dtype=np.int64)
    seg_len[:-1] = seg_start[1:] - seg_start[:-1]
    seg_len[-1] = m - seg_start[-1]
    # Extended stream: per segment, [carry LRU, carry MRU, accesses...].
    ext_start = np.empty(nseg + 1, dtype=np.int64)
    ext_start[0] = 0
    np.cumsum(seg_len + 2, out=ext_start[1:])
    total = m + 2 * nseg
    ext = np.empty(total, dtype=np.int64)
    starts = ext_start[:-1]
    ext[starts] = carry_second[seg_keys]
    ext[starts + 1] = carry_top[seg_keys]
    seg_id = np.repeat(np.arange(nseg), seg_len)
    pos = starts[seg_id] + 2 + (np.arange(m) - seg_start[seg_id])
    ext[pos] = sorted_blocks
    # Change points: positions where the MRU changes hands.  After ext[p]
    # the MRU is ext[p] and the LRU is ext[lastchg(p) - 1].
    chg = np.empty(total, dtype=bool)
    chg[0] = True
    np.not_equal(ext[1:], ext[:-1], out=chg[1:])
    chg[starts] = True
    lastchg = np.maximum.accumulate(np.where(chg, np.arange(total), 0))
    prev = pos - 1
    hit_sorted = (sorted_blocks == ext[prev]) | (
        sorted_blocks == ext[lastchg[prev] - 1]
    )
    hit = np.empty(m, dtype=bool)
    hit[order] = hit_sorted
    last = ext_start[1:] - 1
    carry_top[seg_keys] = ext[last]
    carry_second[seg_keys] = ext[lastchg[last] - 1]
    return hit


def run_batched(
    simulator,
    arrays,
    progress_hook: Optional[Callable] = None,
    progress_interval: int = 100_000,
    warmup_accesses: int = 0,
    epoch_size: Optional[int] = None,
) -> bool:
    """Run ``arrays`` through ``simulator.design`` epoch-batched.

    Returns False (without touching any state) when the design or trace
    does not satisfy the kernel's preconditions; the caller then falls
    back to the scalar arrays path.
    """
    design = simulator.design
    supports = getattr(design, "supports_batch_hits", None)
    if supports is None or not supports():
        return False
    blocks_arr = arrays.block_addresses
    n = len(blocks_arr)
    if n == 0:
        return True
    if int(blocks_arr.min()) < 0:
        # Negative addresses would collide with the empty-way sentinels.
        return False
    epoch = epoch_size if epoch_size else DEFAULT_EPOCH
    if epoch < 1:
        epoch = 1
    writes_arr = arrays.types == _WRITE
    cores_arr = arrays.cores
    num_sets = design.hierarchy.l1[0].num_sets
    keys_arr = cores_arr.astype(np.int64) * num_sets + (
        blocks_arr & (num_sets - 1)
    )
    # Scalar unpack once, exactly like the arrays path: plain ints/bools
    # for process_fast and the per-hit loop.
    blocks = blocks_arr.tolist()
    writes = writes_arr.tolist()
    cores = cores_arr.tolist()
    np_view = (blocks_arr, writes_arr, cores_arr)
    carry = _Carry()

    start = 0
    if warmup_accesses > 0:
        start = min(warmup_accesses, n)
        pos = 0
        while pos < start:
            stop = min(start, pos + epoch)
            _process_epoch(
                simulator, design, carry, blocks_arr, keys_arr,
                blocks, writes, cores, np_view, pos, stop,
            )
            pos = stop
        design.reset_stats()
        simulator.total_latency = 0
        simulator.accesses = 0

    pos = start
    while pos < n:
        if progress_hook is not None:
            gap = progress_interval - (simulator.accesses % progress_interval)
            stop = min(n, pos + min(gap, epoch))
        else:
            stop = min(n, pos + epoch)
        _process_epoch(
            simulator, design, carry, blocks_arr, keys_arr,
            blocks, writes, cores, np_view, pos, stop,
        )
        pos = stop
        if progress_hook is not None and simulator.accesses % progress_interval == 0:
            progress_hook(simulator.accesses, simulator)
    return True


def _process_epoch(
    simulator,
    design,
    carry: _Carry,
    blocks_arr: np.ndarray,
    keys_arr: np.ndarray,
    blocks,
    writes,
    cores,
    np_view,
    pos: int,
    stop: int,
) -> None:
    """Classify and drain one epoch ``[pos, stop)``; flush sim counters."""
    if not carry.valid:
        carry.top, carry.second = design.snapshot_tags()
        carry.valid = True
    epoch_blocks = blocks_arr[pos:stop]
    hit = classify_epoch(
        epoch_blocks, keys_arr[pos:stop], carry.top, carry.second
    )
    miss_idx = np.flatnonzero(~hit)
    process = design.process_fast
    apply_hits = design.apply_hits_batch
    total = 0
    if len(miss_idx):
        design.stage_predictions(epoch_blocks[miss_idx])
    prev = pos
    ok = True
    for mi in miss_idx.tolist():
        here = pos + mi
        if here > prev:
            applied, latency = apply_hits(blocks, writes, cores, prev, here, np_view)
            total += latency
            if applied != here - prev:
                ok = False
                prev += applied
                break
        total += process(blocks[here], writes[here], cores[here])
        prev = here + 1
    if ok and prev < stop:
        applied, latency = apply_hits(blocks, writes, cores, prev, stop, np_view)
        total += latency
        if applied != stop - prev:
            ok = False
            prev += applied
    if not ok:
        # Split on first invalidation: a classified hit was not resident.
        # The staged RL stream no longer lines up, the carry no longer
        # reflects reality — finish the epoch scalar and re-snapshot.
        design.clear_staged()
        for here in range(prev, stop):
            total += process(blocks[here], writes[here], cores[here])
        carry.valid = False
    else:
        design.clear_staged()
    simulator.accesses += stop - pos
    simulator.total_latency += total
