"""Top-level simulation configuration reproducing the paper's Table 3."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from ..core.config import CosmosConfig
from ..mem.hierarchy import HierarchyConfig, LevelConfig
from ..secure.engine import EngineConfig


@dataclass
class CpuModel:
    """Constants for the trace-driven IPC proxy.

    The paper simulates a 4-core out-of-order X86 at 3 GHz; we substitute a
    latency-accounting model (DESIGN.md, substitution 1):

    * each trace record is one memory instruction accompanied by
      ``nonmem_instructions_per_access`` single-cycle instructions,
    * memory latency is divided by ``mlp_factor`` to credit the overlap an
      OoO core extracts across outstanding misses, and
    * every DRAM request serialises for
      ``dram_bandwidth_cycles_per_request`` cycles on the shared channel —
      this is what makes wasted speculative fetches and Merkle-tree node
      reads expensive, as in the paper's Figure 2 traffic analysis.
    """

    frequency_ghz: float = 3.0
    nonmem_instructions_per_access: int = 3
    mlp_factor: float = 4.0
    dram_bandwidth_cycles_per_request: float = 6.0


@dataclass
class SimulationConfig:
    """Everything needed to instantiate a design and run a trace.

    Defaults mirror Table 3: 4 cores, 32KB/1MB/8MB caches, DDR4 32GB,
    MorphCtr counters with a 512KB LRU CTR cache, and the LCR-CTR cache
    (128KB per core) for the COSMOS variants.
    """

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    memory_bytes: int = 32 * 1024**3
    counter_scheme: str = "morphctr"
    engine: EngineConfig = field(default_factory=EngineConfig)
    cosmos: CosmosConfig = field(default_factory=CosmosConfig)
    cpu: CpuModel = field(default_factory=CpuModel)

    def with_cores(self, num_cores: int, scale_llc: bool = True) -> "SimulationConfig":
        """A copy configured for ``num_cores`` (paper Fig. 15: 8-core/16MB).

        Args:
            num_cores: Core count for the new configuration.
            scale_llc: Scale the shared LLC at 2MB per core, as the paper
                does for its 8-core experiment.
        """
        hierarchy = HierarchyConfig(
            num_cores=num_cores,
            l1=self.hierarchy.l1,
            l2=self.hierarchy.l2,
            llc=self.hierarchy.llc,
        )
        if scale_llc:
            hierarchy = hierarchy.scaled_llc_for_cores()
        return SimulationConfig(
            hierarchy=hierarchy,
            memory_bytes=self.memory_bytes,
            counter_scheme=self.counter_scheme,
            engine=self.engine,
            cosmos=self.cosmos,
            cpu=self.cpu,
        )

    def with_ctr_cache_bytes(self, size_bytes: int) -> "SimulationConfig":
        """A copy with a different baseline CTR-cache capacity (Fig. 3).

        ``dataclasses.replace`` keeps every other engine knob (policy and
        prefetcher names, MAC placement, DRAM calibration profile) — a
        field-by-field rebuild here once silently dropped new fields.
        """
        engine = replace(self.engine, ctr_cache_bytes=size_bytes)
        return SimulationConfig(
            hierarchy=self.hierarchy,
            memory_bytes=self.memory_bytes,
            counter_scheme=self.counter_scheme,
            engine=engine,
            cosmos=self.cosmos,
            cpu=self.cpu,
        )


def scaled_paper_config(scale: int = 16, num_cores: int = 4) -> SimulationConfig:
    """Table 3 with every capacity divided by ``scale`` (latencies kept).

    The paper's experiments run hundreds of millions of instructions on
    Gem5; a pure-Python trace simulator cannot.  Dividing every cache,
    CTR-cache and CET capacity by the same factor — while workload
    footprints shrink by roughly the same factor — preserves the capacity
    ratios that drive the paper's behaviour (footprint >> CTR-cache
    coverage, CTR cache ~ LLC/16), so miss-rate and speedup *shapes* carry
    over.  EXPERIMENTS.md documents this substitution.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    hierarchy = HierarchyConfig(
        num_cores=num_cores,
        l1=LevelConfig(max(2048, 32 * 1024 // scale), 2, 2),
        l2=LevelConfig(max(8192, 1024 * 1024 // scale), 8, 20),
        llc=LevelConfig(max(32768, 8 * 1024 * 1024 // scale), 16, 128),
    )
    engine = EngineConfig(
        ctr_cache_bytes=max(4096, 512 * 1024 // scale),
        mt_cache_bytes=max(4096, 128 * 1024 // scale),
    )
    # CET entries scale less aggressively than capacities: reuse windows in
    # the scaled traces do not shrink proportionally.  2048 at scale 16 is
    # the optimum of our own CET design-space sweep (the Figure 9
    # reproduction), mirroring how the paper picked its 8192.
    cosmos = CosmosConfig(
        lcr_cache_bytes=max(2048, 512 * 1024 // scale),
        cet_entries=max(256, 8192 // max(1, scale // 4)),
    )
    return SimulationConfig(
        hierarchy=hierarchy,
        memory_bytes=max(4 * 1024**3, 32 * 1024**3 // scale),
        engine=engine,
        cosmos=cosmos,
    )


def small_test_config(num_cores: int = 1) -> SimulationConfig:
    """A deliberately tiny configuration for fast unit tests.

    Shrinks every cache so that miss behaviour appears within a few
    thousand accesses instead of millions.
    """
    hierarchy = HierarchyConfig(
        num_cores=num_cores,
        l1=LevelConfig(4 * 1024, 2, 2),
        l2=LevelConfig(16 * 1024, 4, 20),
        llc=LevelConfig(64 * 1024, 8, 128),
    )
    engine = EngineConfig(ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024)
    cosmos = CosmosConfig(lcr_cache_bytes=4 * 1024, cet_entries=512)
    return SimulationConfig(
        hierarchy=hierarchy,
        # Generous address space: workload heaps start at 256MB and the
        # layout only does address arithmetic, so this costs nothing.
        memory_bytes=4 * 1024**3,
        engine=engine,
        cosmos=cosmos,
    )
