"""repro.verify: adversarial tamper injection + differential correctness.

The trust story for the rest of the repository: the functional secure
memory must *detect every physical attack* (no false negatives), stay
silent on honest runs (no false positives), and the timing stack's two
dispatch paths must be byte-identical.  This package attacks both claims
mechanically — seeded tamper schedules through :mod:`~repro.verify.
attack`, differential and invariant oracles through :mod:`~repro.verify.
differential`, a fuzz campaign over both through :mod:`~repro.verify.
fuzz` (``python -m repro verify fuzz``), and a RowHammer disturbance
model through :mod:`~repro.verify.hammer` (``python -m repro verify
hammer``) that earns its bit flips from DRAM activation pressure instead
of drawing them at random.
"""

from .attack import AttackError, AttackHarness, AttackReport, Detection, run_attack
from .differential import (
    DifferentialReport,
    Divergence,
    check_invariants,
    diff_functional,
    diff_paths,
    lockstep_path_pair,
    lockstep_paths,
    run_with_invariants,
)
from .fuzz import replay, run_fuzz, shrink_case
from .hammer import (
    HammerConfig,
    HammerFlip,
    HammerPlan,
    PhysicalMap,
    boundary_hammer_ops,
    ops_from_trace,
    plan_hammer,
    run_hammer_attack,
    run_hammer_sweep,
)
from .tamper import (
    ATTACK_CLASSES,
    ATTACK_KINDS,
    EXPECTED_DETECTOR,
    HAMMER_TARGETS,
    TAMPER_KINDS,
    AttackClass,
    Op,
    TamperSpec,
    affected_blocks,
    expected_detector,
    expected_level,
    generate_ops,
    generate_schedule,
)

__all__ = [
    "ATTACK_CLASSES",
    "ATTACK_KINDS",
    "AttackClass",
    "AttackError",
    "AttackHarness",
    "AttackReport",
    "Detection",
    "DifferentialReport",
    "Divergence",
    "EXPECTED_DETECTOR",
    "HAMMER_TARGETS",
    "HammerConfig",
    "HammerFlip",
    "HammerPlan",
    "Op",
    "PhysicalMap",
    "TAMPER_KINDS",
    "TamperSpec",
    "affected_blocks",
    "boundary_hammer_ops",
    "check_invariants",
    "diff_functional",
    "diff_paths",
    "expected_detector",
    "expected_level",
    "generate_ops",
    "generate_schedule",
    "lockstep_path_pair",
    "lockstep_paths",
    "ops_from_trace",
    "plan_hammer",
    "replay",
    "run_attack",
    "run_fuzz",
    "run_hammer_attack",
    "run_hammer_sweep",
    "run_with_invariants",
    "shrink_case",
]
