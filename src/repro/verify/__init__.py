"""repro.verify: adversarial tamper injection + differential correctness.

The trust story for the rest of the repository: the functional secure
memory must *detect every physical attack* (no false negatives), stay
silent on honest runs (no false positives), and the timing stack's two
dispatch paths must be byte-identical.  This package attacks both claims
mechanically — seeded tamper schedules through :mod:`~repro.verify.
attack`, differential and invariant oracles through :mod:`~repro.verify.
differential`, and a fuzz campaign over both through :mod:`~repro.verify.
fuzz` (``python -m repro verify fuzz``).
"""

from .attack import AttackError, AttackHarness, AttackReport, Detection, run_attack
from .differential import (
    DifferentialReport,
    Divergence,
    check_invariants,
    diff_functional,
    diff_paths,
    lockstep_path_pair,
    lockstep_paths,
    run_with_invariants,
)
from .fuzz import replay, run_fuzz, shrink_case
from .tamper import (
    EXPECTED_DETECTOR,
    TAMPER_KINDS,
    Op,
    TamperSpec,
    affected_blocks,
    generate_ops,
    generate_schedule,
)

__all__ = [
    "AttackError",
    "AttackHarness",
    "AttackReport",
    "Detection",
    "DifferentialReport",
    "Divergence",
    "EXPECTED_DETECTOR",
    "Op",
    "TAMPER_KINDS",
    "TamperSpec",
    "affected_blocks",
    "check_invariants",
    "diff_functional",
    "diff_paths",
    "generate_ops",
    "generate_schedule",
    "lockstep_path_pair",
    "lockstep_paths",
    "replay",
    "run_attack",
    "run_fuzz",
    "run_with_invariants",
    "shrink_case",
]
