"""Differential oracle: the same input, two independent computations.

Three flavours of cross-checking, each reporting the *first* divergence
rather than a bare mismatch flag:

* :func:`diff_paths` — one trace, one design, two of the simulator's
  dispatch paths (any pair of ``arrays``/``objects``/``batched``; default
  the array-native fast path vs the object path).  The implementations
  share no per-access code beyond the design itself, so a byte-level
  match of :meth:`~repro.sim.results.SimulationResult.to_dict` is strong
  evidence a hot-path rewrite preserved semantics.  On mismatch, a
  lockstep replay pinpoints the first access whose latency disagrees
  (pairs involving ``objects``), or the first progress-hook epoch whose
  accumulated ``(accesses, total_latency)`` snapshot disagrees
  (``arrays`` vs ``batched`` — epoch granularity, since the batched
  kernel only surfaces state at epoch boundaries).

* :func:`diff_functional` — one op trace, two counter schemes, lockstep
  through two :class:`~repro.secure.functional.FunctionalSecureMemory`
  instances.  The schemes organise counters completely differently
  (monolithic vs split vs MorphCtr), but decrypted plaintext must be
  identical op-for-op.

* :func:`check_invariants` — conservation laws the timing engine must
  obey on *any* run: every counter-line DRAM fetch is authenticated
  exactly once, re-encryption traffic is exactly two background requests
  per covered block per overflow, MAC-in-ECC designs issue zero MAC
  accesses, the hierarchy funnel never widens
  (``l1_misses >= llc_misses``), and the DRAM bank-state model's
  per-class / per-channel accounting balances against the traffic
  ledger (reads = data+ctr+mt+mac, writes = data+ctr, background
  occupancy = re-encryption requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..secure.designs import SecureDesign
from ..secure.functional import FunctionalSecureMemory
from ..sim.simulator import SimulationConfig, build_design, simulate
from ..workloads.trace import MemoryAccess, TraceArrays
from .tamper import Op


@dataclass(frozen=True)
class Divergence:
    """One flattened field where the two computations disagree."""

    key: str
    left: object
    right: object

    def to_dict(self) -> Dict[str, object]:
        return {"key": self.key, "left": self.left, "right": self.right}


@dataclass
class DifferentialReport:
    """Outcome of one differential comparison."""

    label: str
    matched: bool
    divergences: List[Divergence] = field(default_factory=list)
    #: First access/op index where the two computations disagree
    #: (``None`` when they match, or when the divergence only shows in
    #: aggregate state).
    first_divergence_at: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "matched": self.matched,
            "divergences": [d.to_dict() for d in self.divergences],
            "first_divergence_at": self.first_divergence_at,
        }


def flatten(value: object, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists into dotted-key scalars for diffing."""
    flat: Dict[str, object] = {}
    if isinstance(value, dict):
        for key in value:
            flat.update(flatten(value[key], f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            flat.update(flatten(item, f"{prefix}[{i}]"))
    else:
        flat[prefix] = value
    return flat


def diff_dicts(left: Dict[str, object], right: Dict[str, object], limit: int = 16) -> List[Divergence]:
    """Field-level divergences between two nested dicts, sorted by key."""
    flat_left = flatten(left)
    flat_right = flatten(right)
    missing = object()
    divergences: List[Divergence] = []
    for key in sorted(set(flat_left) | set(flat_right)):
        a = flat_left.get(key, missing)
        b = flat_right.get(key, missing)
        if a != b:
            divergences.append(
                Divergence(
                    key=key,
                    left="<absent>" if a is missing else a,
                    right="<absent>" if b is missing else b,
                )
            )
            if len(divergences) >= limit:
                break
    return divergences


# ----------------------------------------------------------------------
# Array path vs object path
# ----------------------------------------------------------------------
def _as_access_list(
    trace: Union[Sequence[MemoryAccess], TraceArrays],
) -> List[MemoryAccess]:
    if isinstance(trace, TraceArrays):
        return trace.to_accesses()
    return list(trace)


def lockstep_paths(
    design_name: str,
    accesses: Sequence[MemoryAccess],
    config: Optional[SimulationConfig] = None,
) -> Optional[int]:
    """First access whose latency differs between the two dispatch APIs.

    Drives one fresh design through ``process_fast`` scalars and another
    through ``process`` objects, comparing per-access latencies; returns
    the first diverging index, or ``None`` when every access agrees.
    """
    config = config if config is not None else SimulationConfig()
    fast = build_design(design_name, config)
    slow = build_design(design_name, config)
    for i, access in enumerate(accesses):
        latency_fast = fast.process_fast(access.block_address, access.is_write, access.core)
        latency_slow = slow.process(access)
        if latency_fast != latency_slow:
            return i
    return None


def lockstep_path_pair(
    design_name: str,
    arrays: TraceArrays,
    path_a: str,
    path_b: str,
    config: Optional[SimulationConfig] = None,
    epoch: int = 1024,
) -> Optional[int]:
    """First access index at whose epoch boundary two paths diverge.

    Runs the same trace down both dispatch paths with a progress hook
    every ``epoch`` accesses and compares the cumulative
    ``(accesses, total_latency)`` snapshot streams.  Returns the start of
    the first epoch whose snapshot disagrees (so the faulty access lies
    in ``[index, index + epoch)``), or ``None`` when every snapshot —
    including the final totals — matches.  Epoch granularity is the
    finest the batched kernel can surface without changing its own
    behaviour: its counters are flushed exactly at hook boundaries.
    """
    from ..sim.simulator import Simulator

    config = config if config is not None else SimulationConfig()
    streams: List[List[tuple]] = []
    for path in (path_a, path_b):
        design = build_design(design_name, config)
        simulator = Simulator(design, config)
        snaps: List[tuple] = []
        simulator.run(
            arrays,
            progress_hook=lambda done, s: snaps.append((done, s.total_latency)),
            progress_interval=epoch,
            path=path,
            batch_epoch=epoch,
        )
        snaps.append((simulator.accesses, simulator.total_latency))
        streams.append(snaps)
    for index, (snap_a, snap_b) in enumerate(zip(*streams)):
        if snap_a != snap_b:
            return index * epoch
    if len(streams[0]) != len(streams[1]):
        return min(len(streams[0]), len(streams[1])) * epoch
    return None


def diff_paths(
    design_name: str,
    trace: Union[Sequence[MemoryAccess], TraceArrays],
    config: Optional[SimulationConfig] = None,
    workload: str = "trace",
    path_pair: tuple = ("arrays", "objects"),
    epoch: int = 1024,
) -> DifferentialReport:
    """One design, one trace, two dispatch paths — first divergence.

    ``path_pair`` picks the two implementations (default array fast path
    vs object path; ``("arrays", "batched")`` exercises the epoch-batched
    kernel against its scalar reference).  ``epoch`` is both the batched
    kernel's chunk size and the lockstep snapshot granularity for pairs
    that exclude ``objects`` — varying it fuzzes the kernel's
    chunk-boundary carry handoff, which by contract must never change
    metrics.
    """
    path_a, path_b = path_pair
    for path in path_pair:
        if path not in ("arrays", "objects", "batched"):
            raise ValueError(f"unknown dispatch path {path!r}")
    accesses = _as_access_list(trace)
    arrays = TraceArrays.from_accesses(accesses)

    def run(path: str):
        source = list(accesses) if path == "objects" else arrays
        return simulate(
            design_name, source, config, workload, path=path,
            batch_epoch=epoch,
        )

    result_a = run(path_a)
    result_b = run(path_b)
    divergences = diff_dicts(result_a.to_dict(), result_b.to_dict())
    first_at: Optional[int] = None
    if divergences:
        if "objects" in path_pair:
            first_at = lockstep_paths(design_name, accesses, config)
        else:
            first_at = lockstep_path_pair(
                design_name, arrays, path_a, path_b, config, epoch
            )
    label = f"paths:{design_name}"
    if path_pair != ("arrays", "objects"):
        label = f"paths:{design_name}:{path_a}-vs-{path_b}"
    return DifferentialReport(
        label=label,
        matched=not divergences,
        divergences=divergences,
        first_divergence_at=first_at,
    )


# ----------------------------------------------------------------------
# Functional memory: scheme A vs scheme B
# ----------------------------------------------------------------------
def diff_functional(
    ops: Sequence[Op],
    memory_a: FunctionalSecureMemory,
    memory_b: FunctionalSecureMemory,
    label: str = "functional",
) -> DifferentialReport:
    """Lockstep two functional memories through the same op trace.

    Decrypted plaintext must agree on every read regardless of counter
    organisation; afterwards both memories must hold the same resident
    set and the same recoverable contents.
    """
    divergences: List[Divergence] = []
    first_at: Optional[int] = None
    shadow: Dict[int, bytes] = {}
    for i, op in enumerate(ops):
        if op.is_write:
            payload = op.payload.ljust(64, b"\x00")
            memory_a.write(op.block, op.payload)
            memory_b.write(op.block, op.payload)
            shadow[op.block] = payload
        else:
            value_a = memory_a.read(op.block)
            value_b = memory_b.read(op.block)
            if value_a != value_b or value_a != shadow[op.block]:
                divergences.append(
                    Divergence(
                        key=f"read[{i}].block{op.block}",
                        left=value_a.hex(),
                        right=value_b.hex(),
                    )
                )
                if first_at is None:
                    first_at = i
    if first_at is None:
        if memory_a.resident_blocks != memory_b.resident_blocks:
            divergences.append(
                Divergence(
                    key="resident_blocks",
                    left=memory_a.resident_blocks,
                    right=memory_b.resident_blocks,
                )
            )
        else:
            for block in sorted(shadow):
                value_a = memory_a.read(block)
                value_b = memory_b.read(block)
                if value_a != value_b:
                    divergences.append(
                        Divergence(
                            key=f"final.block{block}",
                            left=value_a.hex(),
                            right=value_b.hex(),
                        )
                    )
                    break
    return DifferentialReport(
        label=label,
        matched=not divergences,
        divergences=divergences,
        first_divergence_at=first_at,
    )


# ----------------------------------------------------------------------
# Conservation invariants
# ----------------------------------------------------------------------
def check_invariants(design: SecureDesign) -> List[str]:
    """Conservation laws any run must satisfy; returns violations."""
    problems: List[str] = []
    stats = design.stats
    if stats.l1_misses > stats.accesses:
        problems.append(
            f"l1_misses ({stats.l1_misses}) > accesses ({stats.accesses})"
        )
    if stats.llc_misses > stats.l1_misses:
        problems.append(
            f"llc_misses ({stats.llc_misses}) > l1_misses ({stats.l1_misses})"
        )
    if stats.bypasses > stats.l1_misses:
        problems.append(
            f"bypasses ({stats.bypasses}) > l1_misses ({stats.l1_misses})"
        )
    dram = design.dram_model()
    if dram is not None:
        dstats = dram.stats
        if dstats.row_hits + dstats.row_misses != dstats.requests:
            problems.append(
                f"dram row_hits ({dstats.row_hits}) + row_misses "
                f"({dstats.row_misses}) != requests ({dstats.requests})"
            )
        if sum(dstats.per_channel.values()) != dstats.requests:
            problems.append(
                f"dram per-channel requests ({sum(dstats.per_channel.values())}) "
                f"!= requests ({dstats.requests})"
            )
        expected_busy = (dstats.requests + dstats.background_requests) * dram.timings.burst
        if sum(dstats.per_channel_busy.values()) != expected_busy:
            problems.append(
                "dram bus occupancy: per-channel busy "
                f"({sum(dstats.per_channel_busy.values())}) != "
                f"(requests + background) x burst ({expected_busy})"
            )
    engine = getattr(design, "engine", None)
    if engine is None:
        return problems
    traffic = engine.traffic
    if dram is not None:
        dstats = dram.stats
        expected_reads = (
            traffic.data_reads + traffic.ctr_reads
            + traffic.mt_reads + traffic.mac_accesses
        )
        if dstats.reads != expected_reads:
            problems.append(
                "every traffic read must hit DRAM exactly once: dram reads "
                f"({dstats.reads}) != data+ctr+mt+mac reads ({expected_reads})"
            )
        expected_writes = traffic.data_writes + traffic.ctr_writes
        if dstats.writes != expected_writes:
            problems.append(
                f"dram writes ({dstats.writes}) != data_writes + ctr_writes "
                f"({expected_writes})"
            )
        if dstats.background_requests != traffic.reencryption_requests:
            problems.append(
                f"dram background requests ({dstats.background_requests}) != "
                f"reencryption_requests ({traffic.reencryption_requests})"
            )
    integrity = engine.integrity.stats
    for name in (
        "data_reads", "data_writes", "ctr_reads", "ctr_writes",
        "mt_reads", "mac_accesses", "reencryption_requests",
    ):
        if getattr(traffic, name) < 0:
            problems.append(f"traffic.{name} is negative")
    if integrity.traversals != traffic.ctr_reads:
        problems.append(
            "every CTR DRAM fetch must be authenticated exactly once: "
            f"mt traversals ({integrity.traversals}) != ctr_reads ({traffic.ctr_reads})"
        )
    if traffic.mt_reads != integrity.nodes_fetched:
        problems.append(
            f"mt_reads ({traffic.mt_reads}) != mt nodes fetched ({integrity.nodes_fetched})"
        )
    expected_reenc = engine.events.ctr_overflows * 2 * engine.scheme.blocks_per_ctr
    if traffic.reencryption_requests != expected_reenc:
        problems.append(
            "overflow accounting: reencryption_requests "
            f"({traffic.reencryption_requests}) != ctr_overflows x 2 x blocks_per_ctr "
            f"({expected_reenc})"
        )
    if engine.config.mac_in_ecc and traffic.mac_accesses != 0:
        problems.append(
            f"mac_in_ecc design issued {traffic.mac_accesses} MAC accesses"
        )
    ctr_stats = engine.ctr_cache.stats
    if ctr_stats.hits + ctr_stats.misses != ctr_stats.accesses:
        problems.append("ctr-cache hits + misses != accesses")
    return problems


def run_with_invariants(
    design_name: str,
    trace: Union[Sequence[MemoryAccess], TraceArrays],
    config: Optional[SimulationConfig] = None,
) -> DifferentialReport:
    """Run one design over ``trace`` and apply :func:`check_invariants`."""
    config = config if config is not None else SimulationConfig()
    design = build_design(design_name, config)
    from ..sim.simulator import Simulator

    Simulator(design, config).run(trace)
    problems = check_invariants(design)
    return DifferentialReport(
        label=f"invariants:{design_name}",
        matched=not problems,
        divergences=[Divergence(key=p, left=None, right=None) for p in problems],
    )
