"""Seeded fuzz driver: random traces x random tamper schedules x designs.

Each trial deterministically derives everything from ``(seed, trial)``:

* a random op trace and tamper schedule against a functional memory with
  the trial's counter scheme (cycled monolithic / split / MorphCtr) —
  the :class:`~repro.verify.attack.AttackHarness` asserts every
  injection is detected and nothing else fires;
* a schedule-free **control** run of the same trace — must be silent;
* a **functional differential** of the same ops through the next scheme;
* a **timing differential** of a random simulator trace through the
  trial's design (cycled through all designs): array path vs object
  path, plus the engine conservation invariants.

Failures are shrunk greedily — drop tamper events one at a time, then
binary-truncate the op trace — and the minimal case is written to disk
as a JSON repro file that :func:`replay` (and ``python -m repro verify
replay``) re-executes bit-for-bit.

The summary is a plain dict with no timestamps or machine state, so the
same seed and budget produce byte-identical output anywhere (the CI
fuzz step relies on this).
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..mem.access import AccessType, MemoryAccess
from ..secure.counters import make_counter_scheme
from ..secure.functional import FunctionalSecureMemory
from ..sim.simulator import SimulationConfig
from .attack import AttackError, AttackHarness, AttackReport
from .differential import diff_functional, diff_paths, run_with_invariants
from .tamper import Op, TamperSpec, generate_ops, generate_schedule

#: Counter schemes cycled across trials.
SCHEMES = ("monolithic", "split", "morphctr")

#: Designs cycled across trials for the timing differential.
DESIGNS = [
    "np", "morphctr", "early", "emcc", "rmcc",
    "cosmos-dp", "cosmos-cp", "cosmos", "cosmos-early",
    "synergy", "cosmos-synergy",
]

REPRO_VERSION = 1


def _trial_rng(seed: int, trial: int) -> random.Random:
    return random.Random(f"cosmos-verify:{seed}:{trial}")


def _make_memory(scheme_name: str, num_blocks: int) -> FunctionalSecureMemory:
    return FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme_name)
    )


def _random_accesses(rng: random.Random, count: int, footprint_blocks: int) -> List[MemoryAccess]:
    """A small simulator trace with enough reuse to exercise the caches."""
    accesses: List[MemoryAccess] = []
    hot = [rng.randrange(footprint_blocks) for _ in range(max(4, footprint_blocks // 8))]
    for _ in range(count):
        block = rng.choice(hot) if rng.random() < 0.6 else rng.randrange(footprint_blocks)
        kind = AccessType.WRITE if rng.random() < 0.3 else AccessType.READ
        accesses.append(MemoryAccess(block << 6, kind, core=0))
    return accesses


def _attack_failures(
    scheme_name: str,
    num_blocks: int,
    ops: Sequence[Op],
    schedule: Sequence[TamperSpec],
) -> Tuple[List[str], Optional[AttackReport]]:
    """Run one attack on a fresh memory; returns (failures, report)."""
    memory = _make_memory(scheme_name, num_blocks)
    harness = AttackHarness(memory)
    try:
        report = harness.run(ops, schedule)
    except AttackError as exc:
        return [f"attack error: {exc}"], getattr(harness, "report", None)
    return report.failures(), report


def shrink_case(
    scheme_name: str,
    num_blocks: int,
    ops: List[Op],
    schedule: List[TamperSpec],
) -> Tuple[List[Op], List[TamperSpec]]:
    """Greedily minimise a failing (ops, schedule) pair.

    First drops tamper events one at a time, then truncates the op trace
    by halves (dropping schedule entries the shorter trace can no longer
    host).  Every candidate re-runs on a fresh memory, so the result is
    the smallest case this strategy finds that still fails.
    """

    def still_fails(candidate_ops: Sequence[Op], candidate_schedule: Sequence[TamperSpec]) -> bool:
        failures, _ = _attack_failures(scheme_name, num_blocks, candidate_ops, candidate_schedule)
        return bool(failures)

    changed = True
    while changed:
        changed = False
        for i in range(len(schedule) - 1, -1, -1):
            candidate = schedule[:i] + schedule[i + 1:]
            if still_fails(ops, candidate):
                schedule = candidate
                changed = True
        length = len(ops)
        while length > 1:
            length //= 2
            candidate_ops = ops[:length]
            candidate_schedule = [
                s for s in schedule
                if s.inject_at <= length and s.snapshot_at <= length
            ]
            if still_fails(candidate_ops, candidate_schedule):
                ops = candidate_ops
                schedule = candidate_schedule
                changed = True
            else:
                break
    return list(ops), list(schedule)


def write_repro(
    path: Path,
    seed: int,
    trial: int,
    scheme_name: str,
    num_blocks: int,
    ops: Sequence[Op],
    schedule: Sequence[TamperSpec],
    failures: Sequence[str],
) -> None:
    """Persist a minimised failing case as a replayable JSON file."""
    case = {
        "version": REPRO_VERSION,
        "seed": seed,
        "trial": trial,
        "scheme": scheme_name,
        "num_blocks": num_blocks,
        "ops": [op.to_dict() for op in ops],
        "schedule": [spec.to_dict() for spec in schedule],
        "failures": list(failures),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case, indent=2, sort_keys=True) + "\n")


def replay(path: Path) -> Tuple[List[str], Optional[AttackReport]]:
    """Re-execute a repro file; returns current (failures, report)."""
    case = json.loads(Path(path).read_text())
    if case.get("version") != REPRO_VERSION:
        raise ValueError(f"unsupported repro version {case.get('version')!r}")
    ops = [Op.from_dict(record) for record in case["ops"]]
    schedule = [TamperSpec.from_dict(record) for record in case["schedule"]]
    return _attack_failures(case["scheme"], int(case["num_blocks"]), ops, schedule)


def run_fuzz(
    seed: int,
    budget: int,
    out_dir: Optional[Path] = None,
    designs: Sequence[str] = tuple(DESIGNS),
    sim_accesses: int = 300,
) -> Dict[str, object]:
    """Run ``budget`` fuzz trials; returns a byte-reproducible summary.

    Args:
        seed: Master seed; with the same budget, output is identical.
        budget: Number of trials (each trial = attack + control +
            functional differential + one design's timing differential).
        out_dir: Where minimised repro files land (created on demand);
            defaults to ``verify-repros/`` under the current directory.
        designs: Design pool for the timing differential leg.
        sim_accesses: Length of each trial's simulator trace.
    """
    from ..workloads.hammer import HAMMER_WORKLOADS, generate_hammer_trace
    from .hammer import HammerConfig, ops_from_trace, plan_hammer

    out_dir = Path(out_dir) if out_dir is not None else Path("verify-repros")
    injections = 0
    detections = 0
    hammer_injections = 0
    hammer_detections = 0
    repro_files: List[str] = []
    failure_summaries: List[Dict[str, object]] = []
    schemes_checked: set = set()
    designs_checked: set = set()

    for trial in range(budget):
        rng = _trial_rng(seed, trial)
        scheme_name = SCHEMES[trial % len(SCHEMES)]
        schemes_checked.add(scheme_name)
        num_blocks = rng.choice((64, 128, 256))
        ops = generate_ops(
            rng,
            num_ops=rng.randrange(40, 90),
            num_blocks=num_blocks,
            footprint_blocks=max(8, num_blocks // 2),
            write_fraction=0.6,
        )
        schedule = generate_schedule(
            rng, ops, _make_memory(scheme_name, num_blocks),
            max_events=rng.randrange(1, 5),
        )
        failures, report = _attack_failures(scheme_name, num_blocks, ops, schedule)
        if report is not None:
            injections += len(report.schedule)
            detections += len(report.detections)

        control_failures, _ = _attack_failures(scheme_name, num_blocks, ops, ())
        failures.extend(f"control run: {f}" for f in control_failures)

        other_scheme = SCHEMES[(trial + 1) % len(SCHEMES)]
        functional = diff_functional(
            ops,
            _make_memory(scheme_name, num_blocks),
            _make_memory(other_scheme, num_blocks),
            label=f"functional:{scheme_name}-vs-{other_scheme}",
        )
        if not functional.matched:
            failures.append(f"functional differential diverged: {functional.to_dict()}")

        design = designs[trial % len(designs)]
        designs_checked.add(design)
        accesses = _random_accesses(rng, sim_accesses, footprint_blocks=512)
        config = SimulationConfig()
        paths_report = diff_paths(design, accesses, config)
        if not paths_report.matched:
            failures.append(f"path differential diverged: {paths_report.to_dict()}")
        # Second leg: the epoch-batched kernel against its scalar arrays
        # reference, with a trial-varied epoch so chunk boundaries (and
        # the carry handoff between them) are fuzzed too.
        batched_report = diff_paths(
            design, accesses, config,
            path_pair=("arrays", "batched"),
            epoch=rng.choice((64, 256, 1024)),
        )
        if not batched_report.matched:
            failures.append(
                f"batched differential diverged: {batched_report.to_dict()}"
            )
        invariants = run_with_invariants(design, accesses, config)
        if not invariants.matched:
            failures.append(f"invariants violated: {invariants.to_dict()}")

        # RowHammer leg: a seeded aggressor workload is planned into
        # disturbance flips from the activation ledger, then every flip
        # must be caught with correct attribution.  Pattern, threshold
        # and refresh-window proxy are all trial-varied; the planned
        # schedule round-trips the same repro format as the other kinds.
        hammer_failures: List[str] = []
        pattern = HAMMER_WORKLOADS[trial % len(HAMMER_WORKLOADS)]
        hammer_config = HammerConfig(
            threshold=rng.choice((48, 64, 96)),
            window_ops=rng.choice((256, 384)),
        )
        hammer_blocks = 1 << 12
        hammer_trace = generate_hammer_trace(
            pattern, num_cores=2, max_accesses=600,
            seed=rng.randrange(1 << 16), start=0,
        )
        hammer_ops = ops_from_trace(hammer_trace, hammer_blocks)
        hammer_plan = plan_hammer(
            hammer_ops, _make_memory(scheme_name, hammer_blocks),
            hammer_config, seed=trial,
        )
        if not hammer_plan.flips:
            hammer_failures.append(
                f"hammer leg planned no flips for {pattern} "
                f"(threshold {hammer_config.threshold}, max pressure "
                f"{hammer_plan.max_pressure})"
            )
        leg_failures, hammer_report = _attack_failures(
            scheme_name, hammer_blocks, hammer_ops, hammer_plan.schedule
        )
        hammer_failures.extend(leg_failures)
        if hammer_report is not None:
            hammer_injections += len(hammer_report.schedule)
            hammer_detections += len(hammer_report.detections)
        if hammer_failures:
            min_ops, min_schedule = shrink_case(
                scheme_name, hammer_blocks,
                list(hammer_ops), list(hammer_plan.schedule),
            )
            repro_path = out_dir / f"repro-{seed}-{trial}-hammer.json"
            write_repro(
                repro_path, seed, trial, scheme_name, hammer_blocks,
                min_ops, min_schedule, hammer_failures,
            )
            repro_files.append(repro_path.name)
            failures.extend(f"hammer leg ({pattern}): {f}" for f in hammer_failures)

        if failures:
            min_ops, min_schedule = (list(ops), list(schedule))
            attack_related = any(
                not f.startswith(
                    ("path ", "batched ", "invariants", "functional", "hammer leg")
                )
                for f in failures
            )
            if attack_related and schedule:
                min_ops, min_schedule = shrink_case(scheme_name, num_blocks, list(ops), list(schedule))
            repro_path = out_dir / f"repro-{seed}-{trial}.json"
            write_repro(
                repro_path, seed, trial, scheme_name, num_blocks,
                min_ops, min_schedule, failures,
            )
            repro_files.append(repro_path.name)
            failure_summaries.append(
                {"trial": trial, "scheme": scheme_name, "design": design, "failures": failures}
            )

    return {
        "seed": seed,
        "budget": budget,
        "trials": budget,
        "injections": injections,
        "detections": detections,
        "hammer_injections": hammer_injections,
        "hammer_detections": hammer_detections,
        "schemes_checked": sorted(schemes_checked),
        "designs_checked": sorted(designs_checked),
        "failing_trials": failure_summaries,
        "repro_files": sorted(repro_files),
        "clean": not failure_summaries,
    }
