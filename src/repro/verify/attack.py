"""Adversarial tamper-injection harness over the functional secure memory.

The harness drives a trace of :class:`~repro.verify.tamper.Op` records
through a :class:`~repro.secure.functional.FunctionalSecureMemory` while a
seeded :class:`~repro.verify.tamper.TamperSpec` schedule corrupts state
mid-run — through the memory's ``attack_hook``, i.e. *inside* the victim
operation, exactly as a bus-level attacker interposes.

Contract enforced (and accounted in the :class:`AttackReport`):

* **Zero false negatives** — every injection is detected: by the op it
  lands in, by a later access to the corrupted region, by the
  verify-on-write path, or by the end-of-run probe sweep.
* **Zero false positives** — no :class:`IntegrityViolation` fires that is
  not attributable to an armed injection (a schedule-free control run must
  be completely silent).
* **Correct attribution** — each class is caught by the right check
  (:func:`~repro.verify.tamper.expected_detector`, driven by the
  :data:`~repro.verify.tamper.ATTACK_CLASSES` registry) at the right tree
  level; anything else lands in ``misattributions``.
* **Honest recovery** — detection triggers the injection's *undo* (the
  attacker is evicted), the failed op is retried, and the run continues;
  decrypted plaintexts are checked against a shadow model throughout.

Detections are recorded in the shared obs :class:`~repro.obs.events.
EventRing` as ``tamper_injected`` / ``tamper_detected`` events carrying
the detection latency (in ops) and the failing tree level.

Writes need care: overwriting a corrupted block would *heal* MAC-level
tampering before anything noticed.  The harness therefore probe-reads the
armed victim first (``via="probe_heal"``) whenever a write is about to
touch an armed region that the verify-on-write path cannot catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..obs.events import EventRing
from ..secure.functional import FunctionalSecureMemory, IntegrityViolation
from .tamper import (
    ATTACK_CLASSES,
    Op,
    TamperSpec,
    affected_blocks,
    expected_detector,
    expected_level,
    perturb_line_snapshot,
)


class AttackError(AssertionError):
    """The secure-memory stack broke its detection contract."""


@dataclass
class Detection:
    """One injection caught by the stack."""

    spec_index: int
    kind: str
    injected_at: int
    detected_at: int
    via: str  # "read" | "write" | "probe" | "probe_heal"
    detector: str  # exc.kind: "mt" | "mac"
    level: Optional[int]
    block: Optional[int]

    @property
    def latency(self) -> int:
        """Detection latency in ops since the injection landed."""
        return self.detected_at - self.injected_at

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec_index": self.spec_index,
            "kind": self.kind,
            "injected_at": self.injected_at,
            "detected_at": self.detected_at,
            "latency": self.latency,
            "via": self.via,
            "detector": self.detector,
            "level": self.level,
            "block": self.block,
        }


@dataclass
class AttackReport:
    """Outcome of one attacked (or control) run."""

    num_ops: int
    schedule: List[TamperSpec]
    detections: List[Detection] = field(default_factory=list)
    false_negatives: List[Dict[str, object]] = field(default_factory=list)
    false_positives: List[Dict[str, object]] = field(default_factory=list)
    misattributions: List[Dict[str, object]] = field(default_factory=list)
    divergences: List[Dict[str, object]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every contract held on this run."""
        return (
            len(self.detections) == len(self.schedule)
            and not self.false_negatives
            and not self.false_positives
            and not self.misattributions
            and not self.divergences
        )

    def failures(self) -> List[str]:
        """Human-readable contract breaches (empty when clean)."""
        out: List[str] = []
        for fn in self.false_negatives:
            out.append(f"false negative: {fn}")
        for fp in self.false_positives:
            out.append(f"false positive: {fp}")
        for mis in self.misattributions:
            out.append(f"misattributed detection: {mis}")
        for div in self.divergences:
            out.append(f"plaintext divergence: {div}")
        if len(self.detections) < len(self.schedule):
            caught = {d.spec_index for d in self.detections}
            for i, spec in enumerate(self.schedule):
                if i not in caught:
                    out.append(f"undetected injection: {spec.to_dict()}")
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_ops": self.num_ops,
            "schedule": [s.to_dict() for s in self.schedule],
            "detections": [d.to_dict() for d in self.detections],
            "false_negatives": self.false_negatives,
            "false_positives": self.false_positives,
            "misattributions": self.misattributions,
            "divergences": self.divergences,
            "clean": self.clean,
        }


@dataclass
class _Armed:
    """Runtime state of an injected, not-yet-detected tamper."""

    spec_index: int
    spec: TamperSpec
    injected_at: int
    undo: Callable[[], None]
    blocks: Set[int]
    lines: Set[int]

    @property
    def mt_level(self) -> bool:
        """True for tree-level tampers, whose blast radius is whole lines.

        MAC-level tampers (bitflip, stale MAC, swap, hammer-data) corrupt
        only their victim blocks — other blocks in the same counter line
        stay perfectly readable.  Resolved through the class registry so
        new kinds carry their own semantics.
        """
        return ATTACK_CLASSES[self.spec.kind].line_level(self.spec)


class AttackHarness:
    """Runs a trace against a memory under a tamper schedule.

    Args:
        memory: The victim.  The harness takes over its ``attack_hook``
            and ``obs_events`` slots for the duration of :meth:`run`.
        events: Obs ring receiving ``tamper_injected`` / ``tamper_detected``
            (and the memory's own ``integrity_violation``) events; a fresh
            ring is created when omitted.
    """

    def __init__(
        self,
        memory: FunctionalSecureMemory,
        events: Optional[EventRing] = None,
    ) -> None:
        self.memory = memory
        self.events = events if events is not None else EventRing()
        self._op_index = 0
        self._probing = False
        self._armed: List[_Armed] = []
        self._snapshots: Dict[int, object] = {}
        self._by_snapshot: Dict[int, List[int]] = {}
        self._by_inject: Dict[int, List[int]] = {}
        self._shadow: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # Drive
    # ------------------------------------------------------------------
    def run(self, ops: Sequence[Op], schedule: Sequence[TamperSpec] = ()) -> AttackReport:
        """Execute ``ops`` with ``schedule`` injected; returns the report."""
        memory = self.memory
        self.report = AttackReport(num_ops=len(ops), schedule=list(schedule))
        self._armed.clear()
        self._snapshots.clear()
        self._shadow.clear()
        self._by_snapshot = {}
        self._by_inject = {}
        for i, spec in enumerate(schedule):
            if spec.snapshot_at >= 0:
                self._by_snapshot.setdefault(spec.snapshot_at, []).append(i)
            self._by_inject.setdefault(spec.inject_at, []).append(i)

        memory.attack_hook = self._hook
        memory.obs_events = self.events
        try:
            for i, op in enumerate(ops):
                self._op_index = i
                if op.is_write:
                    self._drain(i)
                    self._probe_before_heal(op.block)
                    self._do_write(op, i)
                else:
                    self._do_read(op, i)
            self._op_index = len(ops)
            self._drain(len(ops))
            self._final_probe(len(ops))
        finally:
            memory.attack_hook = None
        return self.report

    # ------------------------------------------------------------------
    # Injection plumbing
    # ------------------------------------------------------------------
    def _hook(self, _op: str, _block: int) -> None:
        """``attack_hook`` callback: fires inside read()/write()."""
        if not self._probing:
            self._drain(self._op_index)

    def _drain(self, index: int) -> None:
        """Apply every snapshot and injection scheduled at op ``index``."""
        for spec_index in self._by_snapshot.pop(index, ()):
            self._capture(spec_index, self.report.schedule[spec_index])
        for spec_index in self._by_inject.pop(index, ()):
            self._inject(spec_index, self.report.schedule[spec_index], index)

    def _capture(self, spec_index: int, spec: TamperSpec) -> None:
        memory = self.memory
        if spec.kind == "rollback":
            line = memory.scheme.ctr_index(spec.block)
            self._snapshots[spec_index] = memory.scheme.snapshot_line(line)
        elif spec.kind == "stale_mac":
            self._snapshots[spec_index] = (
                memory.snapshot_ciphertext(spec.block),
                memory.macs.snapshot(spec.block),
            )

    def _inject(self, spec_index: int, spec: TamperSpec, index: int) -> None:
        memory = self.memory
        scheme = memory.scheme
        if spec.kind == "bitflip":
            old = memory.snapshot_ciphertext(spec.block)
            flipped = bytearray(old)
            flipped[spec.bit // 8] ^= 1 << (spec.bit % 8)
            memory.tamper_ciphertext(spec.block, bytes(flipped))
            undo = lambda: memory.tamper_ciphertext(spec.block, old)
        elif spec.kind == "swap":
            memory.tamper_swap(spec.block, spec.partner)
            undo = lambda: memory.tamper_swap(spec.block, spec.partner)
        elif spec.kind == "stale_mac":
            stale_ct, stale_mac = self._snapshots.pop(spec_index)
            cur_ct = memory.snapshot_ciphertext(spec.block)
            cur_mac = memory.macs.snapshot(spec.block)
            memory.tamper_ciphertext(spec.block, stale_ct)
            memory.macs.restore(spec.block, stale_mac)

            def undo(ct=cur_ct, mac=cur_mac):
                memory.tamper_ciphertext(spec.block, ct)
                memory.macs.restore(spec.block, mac)

        elif spec.kind == "rollback":
            line = scheme.ctr_index(spec.block)
            stale = self._snapshots.pop(spec_index)
            current = scheme.snapshot_line(line)
            scheme.restore_line(line, stale)
            undo = lambda: scheme.restore_line(line, current)
        elif spec.kind == "splice":
            line = scheme.ctr_index(spec.block)
            node_index = line // (memory.tree.arity ** (spec.level + 1))
            old_digest = memory.tree.node_digest(spec.level, node_index)
            memory.tree.tamper_node(spec.level, node_index, spec.splice_digest())

            def undo(level=spec.level, node=node_index, digest=old_digest):
                # Writes outside the subtree may have re-hashed their paths
                # through the tampered digest while it was armed, so the
                # ancestors must be recomputed after the node is restored.
                memory.tree.tamper_node(level, node, digest)
                memory.tree.rehash_ancestors(level, node)
        elif spec.kind == "hammer":
            undo = self._inject_hammer(spec)
        else:
            raise ValueError(f"unknown tamper kind {spec.kind!r}")
        blocks = affected_blocks(spec, memory)
        self._armed.append(
            _Armed(
                spec_index=spec_index,
                spec=spec,
                injected_at=index,
                undo=undo,
                blocks=blocks,
                lines={scheme.ctr_index(b) for b in blocks},
            )
        )
        self.events.record(
            "tamper_injected",
            at=index,
            tamper=spec.kind,
            block=spec.block,
            level=spec.level if spec.level >= 0 else None,
            **({"target": spec.target} if spec.target else {}),
        )

    def _inject_hammer(self, spec: TamperSpec) -> Callable[[], None]:
        """Land a disturbance-error flip in the targeted physical region.

        The flip is injected through the same tamper surfaces as the other
        classes — it is the *cause* (activation pressure, modelled by the
        planner) that differs, not the corruption mechanics.
        """
        memory = self.memory
        scheme = memory.scheme
        if spec.target == "data":
            old = memory.snapshot_ciphertext(spec.block)
            flipped = bytearray(old)
            flipped[(spec.bit // 8) % len(old)] ^= 1 << (spec.bit % 8)
            memory.tamper_ciphertext(spec.block, bytes(flipped))
            return lambda: memory.tamper_ciphertext(spec.block, old)
        if spec.target == "ctr":
            line = scheme.ctr_index(spec.block)
            before = scheme.snapshot_line(line)
            scheme.restore_line(
                line, perturb_line_snapshot(scheme, spec.block, before, spec.bit)
            )
            return lambda: scheme.restore_line(line, before)
        if spec.target == "mt":
            line = scheme.ctr_index(spec.block)
            node_index = line // (memory.tree.arity ** (spec.level + 1))
            old_digest = memory.tree.node_digest(spec.level, node_index)
            flipped = bytearray(old_digest)
            flipped[(spec.bit // 8) % len(old_digest)] ^= 1 << (spec.bit % 8)
            memory.tree.tamper_node(spec.level, node_index, bytes(flipped))

            def undo(level=spec.level, node=node_index, digest=old_digest):
                memory.tree.tamper_node(level, node, digest)
                memory.tree.rehash_ancestors(level, node)

            return undo
        raise ValueError(f"unknown hammer target {spec.target!r}")

    # ------------------------------------------------------------------
    # Operations with detection accounting
    # ------------------------------------------------------------------
    def _do_write(self, op: Op, index: int) -> None:
        try:
            self.memory.write(op.block, op.payload)
        except IntegrityViolation as exc:
            self._on_violation(exc, index, via="write")
            self.memory.write(op.block, op.payload)
        self._shadow[op.block] = op.payload.ljust(64, b"\x00")

    def _do_read(self, op: Op, index: int) -> None:
        try:
            value = self.memory.read(op.block)
        except IntegrityViolation as exc:
            self._on_violation(exc, index, via="read")
            value = self.memory.read(op.block)
        else:
            armed = self._armed_covering(op.block, self.memory.scheme.ctr_index(op.block))
            if armed is not None:
                self.report.false_negatives.append(
                    {
                        "at": index,
                        "block": op.block,
                        "spec": armed.spec.to_dict(),
                        "why": "read of tampered region did not raise",
                    }
                )
        expected = self._shadow.get(op.block)
        if expected is not None and value != expected:
            self.report.divergences.append(
                {"at": index, "block": op.block, "why": "decrypted plaintext != shadow"}
            )

    def _probe_before_heal(self, block: int) -> None:
        """Probe-read armed victims a write to ``block`` would silently heal.

        MAC-level tampering (bitflip, stale MAC, swap) lives in the block's
        own ciphertext/MAC — overwriting the victim destroys the evidence,
        and a write *anywhere in the victim's counter line* can do the same
        indirectly by overflowing the minor counter and re-encrypting the
        whole page (ciphertexts and MACs are rewritten).  A splice over a
        line whose leaf does not exist yet is healed by the first write's
        ``update_leaf`` (there is nothing for verify-on-write to check).
        Rollback and leaf-backed splices are caught by the verify-on-write
        path instead, so no probe is needed.  Each class declares its heal
        channel in the :data:`~repro.verify.tamper.ATTACK_CLASSES`
        registry (hammer flips inherit the channel of the region they
        landed in: data flips heal like bitflips, MT-node flips like
        splices, counter flips not at all).
        """
        line = self.memory.scheme.ctr_index(block)
        for armed in list(self._armed):
            heal = ATTACK_CLASSES[armed.spec.kind].write_heal(armed.spec)
            heals = False
            if heal == "overwrite" and line in armed.lines:
                heals = True
            elif (
                heal == "unbacked_leaf"
                and line in armed.lines
                and not self.memory.tree.has_leaf(line)
            ):
                heals = True
            if heals:
                self._probe(armed, self._op_index, via="probe_heal")

    def _final_probe(self, end: int) -> None:
        """End-of-run sweep: every still-armed injection must be caught."""
        for armed in list(self._armed):
            self._probe(armed, end, via="probe")

    def _probe(self, armed: _Armed, index: int, via: str) -> None:
        self._probing = True
        try:
            self.memory.read(armed.spec.block)
        except IntegrityViolation as exc:
            self._on_violation(exc, index, via=via)
        else:
            self._armed.remove(armed)
            armed.undo()
            self.report.false_negatives.append(
                {
                    "at": index,
                    "block": armed.spec.block,
                    "spec": armed.spec.to_dict(),
                    "why": f"{via} read of tampered victim did not raise",
                }
            )
        finally:
            self._probing = False

    # ------------------------------------------------------------------
    # Violation attribution
    # ------------------------------------------------------------------
    def _armed_covering(self, block: Optional[int], ctr_index: Optional[int]) -> Optional[_Armed]:
        for armed in self._armed:
            if armed.mt_level:
                if ctr_index is not None and ctr_index in armed.lines:
                    return armed
                if block is not None and block in armed.blocks:
                    return armed
            elif block is not None and block in armed.blocks:
                return armed
        return None

    def _on_violation(self, exc: IntegrityViolation, index: int, via: str) -> None:
        armed = self._armed_covering(exc.block, exc.ctr_index)
        if armed is None:
            self.report.false_positives.append(
                {
                    "at": index,
                    "via": via,
                    "detector": exc.kind,
                    "block": exc.block,
                    "ctr_index": exc.ctr_index,
                    "message": str(exc),
                }
            )
            raise AttackError(
                f"integrity violation with no armed injection at op {index}: {exc}"
            ) from exc
        spec = armed.spec
        detection = Detection(
            spec_index=armed.spec_index,
            kind=spec.kind,
            injected_at=armed.injected_at,
            detected_at=index,
            via=via,
            detector=exc.kind,
            level=exc.level,
            block=exc.block,
        )
        self.report.detections.append(detection)
        want_detector = expected_detector(spec)
        want_level = expected_level(spec, self.memory, exc.ctr_index)
        if exc.kind != want_detector or (
            want_level is not None and exc.level != want_level
        ):
            self.report.misattributions.append(
                {
                    "spec": spec.to_dict(),
                    "expected_detector": want_detector,
                    "expected_level": want_level,
                    "actual_detector": exc.kind,
                    "actual_level": exc.level,
                }
            )
        self._armed.remove(armed)
        armed.undo()
        self.events.record(
            "tamper_detected",
            at=index,
            tamper=spec.kind,
            latency=detection.latency,
            via=via,
            detector=exc.kind,
            level=exc.level,
            block=exc.block,
            **({"target": spec.target} if spec.target else {}),
        )


def run_attack(
    ops: Sequence[Op],
    schedule: Sequence[TamperSpec],
    memory: Optional[FunctionalSecureMemory] = None,
    events: Optional[EventRing] = None,
    num_blocks: int = 1 << 12,
) -> AttackReport:
    """Convenience wrapper: build a memory, attack it, return the report."""
    if memory is None:
        memory = FunctionalSecureMemory(num_blocks=num_blocks)
    return AttackHarness(memory, events=events).run(ops, schedule)
