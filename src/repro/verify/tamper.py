"""Parameterised tamper classes and deterministic injection schedules.

A :class:`TamperSpec` describes one attack — what to corrupt, when, and
with which parameters — against a :class:`~repro.secure.functional.
FunctionalSecureMemory` run.  Specs are plain JSON-safe records so fuzzer
repro cases can be written to disk and replayed bit-for-bit.

Six classes cover the secure-memory threat model (paper Sec. 2.1 plus
the RowHammer disturbance-error adversary of ROADMAP item 4):

====================  =====================================================
``bitflip``           Flip one ciphertext bit — caught by the per-line MAC.
``rollback``          Restore a counter line to an earlier state (replay)
                      — caught by the MT leaf digest (level 0).
``stale_mac``         Replay an old (ciphertext, MAC) pair after the
                      counter moved on — caught by the MAC's CTR binding.
``splice``            Overwrite an internal MT node — caught one level up
                      when the path is recomputed.
``swap``              Relocate two blocks' (ciphertext, MAC) pairs — caught
                      by the MAC's physical-address binding.
``hammer``            Disturbance-error bitflip from row-activation
                      pressure (planned by :mod:`repro.verify.hammer`).
                      Lands in a data line (caught by the MAC), a counter
                      line (MT leaf, level 0) or an internal MT node
                      (caught like a splice), per ``spec.target``.
====================  =====================================================

Per-class accounting semantics (expected detector, blast radius, silent
write-heal channel) live in the :data:`ATTACK_CLASSES` registry so the
harness, the fuzzer's shrinking/replay and any future class stay in sync.

Schedules are generated from a seeded :class:`random.Random` against a
concrete trace of :class:`Op` records, so the same seed always yields the
same attack run.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..secure.aes import LINE_BYTES
from ..secure.functional import FunctionalSecureMemory

#: The five schedulable tamper classes (:func:`generate_schedule` draws
#: from these; ``hammer`` specs are planned by :mod:`repro.verify.hammer`
#: from an activation ledger instead of drawn at random).
TAMPER_KINDS = ("bitflip", "rollback", "stale_mac", "splice", "swap")

#: Injection channels a ``hammer`` spec can land in (``spec.target``).
HAMMER_TARGETS = ("data", "ctr", "mt")

#: Which check must fire for each class (zero tolerance for misattribution:
#: a rollback "caught" by the MAC means the tree is not doing its job).
#: Kept for the five fixed-detector classes; :func:`expected_detector`
#: additionally resolves ``hammer``, whose detector depends on the target.
EXPECTED_DETECTOR = {
    "bitflip": "mac",
    "rollback": "mt",
    "stale_mac": "mac",
    "splice": "mt",
    "swap": "mac",
}


@dataclass(frozen=True)
class Op:
    """One operation of a functional-memory trace."""

    block: int
    is_write: bool
    payload: bytes = b""

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"block": self.block, "is_write": self.is_write}
        if self.is_write:
            record["payload"] = self.payload.hex()
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Op":
        return cls(
            block=int(data["block"]),
            is_write=bool(data["is_write"]),
            payload=bytes.fromhex(str(data.get("payload", ""))),
        )


@dataclass(frozen=True)
class TamperSpec:
    """One scheduled injection.

    Attributes:
        kind: One of :data:`TAMPER_KINDS`.
        inject_at: Op index at which the corruption lands (before that op
            executes; ``len(ops)`` means after the final op).
        block: Primary victim block — always a block the trace has written,
            so it doubles as the end-of-run probe target.
        snapshot_at: For ``rollback``/``stale_mac``: op index at which the
            replayed pre-state is captured (before that op executes).
        bit: For ``bitflip``/``hammer``: which bit to flip.
        partner: For ``swap``: the other block of the exchanged pair.
        level: For ``splice`` and ``hammer`` with ``target="mt"``: internal
            tree level of the corrupted node.
        target: For ``hammer``: which physical region the disturbance
            error lands in — ``"data"`` (victim block's ciphertext),
            ``"ctr"`` (the victim's counter line) or ``"mt"`` (an internal
            tree node on the victim's path).  Empty for other kinds.
    """

    kind: str
    inject_at: int
    block: int
    snapshot_at: int = -1
    bit: int = -1
    partner: int = -1
    level: int = -1
    target: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "inject_at": self.inject_at,
            "block": self.block,
            "snapshot_at": self.snapshot_at,
            "bit": self.bit,
            "partner": self.partner,
            "level": self.level,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TamperSpec":
        return cls(
            kind=str(data["kind"]),
            inject_at=int(data["inject_at"]),
            block=int(data["block"]),
            snapshot_at=int(data.get("snapshot_at", -1)),
            bit=int(data.get("bit", -1)),
            partner=int(data.get("partner", -1)),
            level=int(data.get("level", -1)),
            target=str(data.get("target", "")),
        )

    def splice_digest(self) -> bytes:
        """Deterministic garbage digest for a ``splice`` injection."""
        tag = f"cosmos-splice:{self.inject_at}:{self.block}:{self.level}"
        return hashlib.sha256(tag.encode()).digest()


@dataclass(frozen=True)
class AttackClass:
    """Accounting semantics of one attack class.

    The harness and the fuzzer's shrinking/replay consult this registry
    instead of dispatching on kind strings, so a new class (``hammer``
    today, whatever comes next) only has to describe itself here.

    Attributes:
        kind: Registry key, matching ``TamperSpec.kind``.
        detector: Expected check ("mac" | "mt") for a given spec.
        line_level: True when the blast radius is whole counter lines
            (tree-level state); False when only the victim blocks
            themselves are corrupted.
        write_heal: Silent-heal channel a write can open — ``"overwrite"``
            (overwriting the victim's line destroys MAC-level evidence),
            ``"unbacked_leaf"`` (the first ``update_leaf`` of a line with
            no leaf yet re-hashes over the corruption), or ``"none"``
            (the verify-on-write path catches it first).
    """

    kind: str
    detector: Callable[["TamperSpec"], str]
    line_level: Callable[["TamperSpec"], bool]
    write_heal: Callable[["TamperSpec"], str]


def _hammer_detector(spec: "TamperSpec") -> str:
    return "mac" if spec.target == "data" else "mt"


def _hammer_heal(spec: "TamperSpec") -> str:
    return {"data": "overwrite", "ctr": "none", "mt": "unbacked_leaf"}[spec.target]


#: kind -> accounting semantics, for every class the harness can arm.
ATTACK_CLASSES: Dict[str, AttackClass] = {
    "bitflip": AttackClass("bitflip", lambda s: "mac", lambda s: False,
                           lambda s: "overwrite"),
    "stale_mac": AttackClass("stale_mac", lambda s: "mac", lambda s: False,
                             lambda s: "overwrite"),
    "swap": AttackClass("swap", lambda s: "mac", lambda s: False,
                        lambda s: "overwrite"),
    "rollback": AttackClass("rollback", lambda s: "mt", lambda s: True,
                            lambda s: "none"),
    "splice": AttackClass("splice", lambda s: "mt", lambda s: True,
                          lambda s: "unbacked_leaf"),
    "hammer": AttackClass("hammer", _hammer_detector,
                          lambda s: s.target in ("ctr", "mt"), _hammer_heal),
}

#: Every kind the harness can arm (schedulable five + planned ``hammer``).
ATTACK_KINDS = tuple(ATTACK_CLASSES)


def expected_detector(spec: TamperSpec) -> str:
    """Which check ("mac" | "mt") must catch ``spec``."""
    return ATTACK_CLASSES[spec.kind].detector(spec)


def expected_level(
    spec: TamperSpec,
    memory: FunctionalSecureMemory,
    violation_ctr_index: Optional[int],
) -> Optional[int]:
    """Tree level the detection must report, or ``None`` when the class
    does not constrain it (MAC-level classes).

    Counter-line corruption (rollback, hammer-ctr) must fail the leaf
    digest: level 0.  Node corruption (splice, hammer-mt) at level L is
    caught at L+1 for leaves under the node (the node is recomputed from
    its honest children) and at L+2 for leaves under its siblings (the
    parent's recomputation includes the tampered digest).
    """
    if spec.kind == "rollback" or (spec.kind == "hammer" and spec.target == "ctr"):
        return 0
    if spec.kind == "splice" or (spec.kind == "hammer" and spec.target == "mt"):
        tree = memory.tree
        node_index = (
            memory.scheme.ctr_index(spec.block) // (tree.arity ** (spec.level + 1))
        )
        first, last = tree.subtree_leaves(spec.level, node_index)
        under_node = (
            violation_ctr_index is not None and first <= violation_ctr_index < last
        )
        return spec.level + 1 if under_node else spec.level + 2
    return None


def perturb_line_snapshot(scheme, block: int, snapshot, bit: int):
    """Deterministically corrupt one counter-line snapshot.

    Models a disturbance error landing in stored counter state.  Split and
    morph schemes snapshot as ``(major, {offset: minor})`` — the flip lands
    in the shared major counter; the monolithic scheme snapshots a tuple of
    per-offset counters — the flip lands in the victim block's own counter.
    Either way the re-serialised leaf payload differs from the digest the
    tree holds, so the MT leaf check fails at level 0.
    """
    if (
        isinstance(snapshot, tuple)
        and len(snapshot) == 2
        and isinstance(snapshot[1], dict)
    ):
        major, minors = snapshot
        return (major ^ (1 << (bit % 8)), dict(minors))
    values = list(snapshot)
    offset = block % len(values)
    values[offset] = values[offset] ^ (1 << (bit % 8))
    return tuple(values)


def _line_blocks(line: int, memory: FunctionalSecureMemory) -> Set[int]:
    bpc = memory.scheme.blocks_per_ctr
    return set(range(line * bpc, min((line + 1) * bpc, memory.num_blocks)))


def _parent_subtree_blocks(spec: TamperSpec, memory: FunctionalSecureMemory) -> Set[int]:
    """Blocks poisoned by corrupting the MT node on ``spec.block``'s path.

    Tampering node N poisons every path through N's *parent*: leaves under
    N fail when N is recomputed from its honest children (level + 1), and
    leaves under N's siblings fail one level higher when the parent is
    recomputed from children that include the tampered N (level + 2).
    Outside the parent's subtree every recomputation only touches honest
    stored digests.
    """
    scheme = memory.scheme
    bpc = scheme.blocks_per_ctr
    line = scheme.ctr_index(spec.block)
    tree = memory.tree
    parent_level = spec.level + 1
    if parent_level >= tree.levels:
        first, last = 0, tree.num_leaves
    else:
        parent_index = line // (tree.arity ** (parent_level + 1))
        first, last = tree.subtree_leaves(parent_level, parent_index)
    return set(range(first * bpc, min(last * bpc, memory.num_blocks)))


def affected_blocks(spec: TamperSpec, memory: FunctionalSecureMemory) -> Set[int]:
    """Blocks whose reads (or heals) the armed tamper can touch.

    Reading any *written* block in this set while the tamper is armed must
    raise; a write to any block in it could silently repair the corruption
    and therefore needs a probe first.
    """
    scheme = memory.scheme
    if spec.kind in ("bitflip", "stale_mac"):
        return {spec.block}
    if spec.kind == "swap":
        return {spec.block, spec.partner}
    if spec.kind == "rollback":
        return _line_blocks(scheme.ctr_index(spec.block), memory)
    if spec.kind == "splice":
        return _parent_subtree_blocks(spec, memory)
    if spec.kind == "hammer":
        if spec.target == "data":
            return {spec.block}
        if spec.target == "ctr":
            return _line_blocks(scheme.ctr_index(spec.block), memory)
        if spec.target == "mt":
            return _parent_subtree_blocks(spec, memory)
        raise ValueError(f"unknown hammer target {spec.target!r}")
    raise ValueError(f"unknown tamper kind {spec.kind!r}")


def generate_ops(
    rng: random.Random,
    num_ops: int,
    num_blocks: int,
    footprint_blocks: Optional[int] = None,
    write_fraction: float = 0.5,
) -> List[Op]:
    """A seeded random trace whose reads only target written blocks."""
    footprint = min(footprint_blocks or num_blocks, num_blocks)
    written: List[int] = []
    seen: Set[int] = set()
    ops: List[Op] = []
    for i in range(num_ops):
        if not written or rng.random() < write_fraction:
            block = rng.randrange(footprint)
            payload = bytes(rng.getrandbits(8) for _ in range(16)) + i.to_bytes(4, "little")
            ops.append(Op(block=block, is_write=True, payload=payload))
            if block not in seen:
                seen.add(block)
                written.append(block)
        else:
            ops.append(Op(block=rng.choice(written), is_write=False))
    return ops


@dataclass
class _TraceIndex:
    """Precomputed views of a trace the generator samples from."""

    writes_by_block: Dict[int, List[int]] = field(default_factory=dict)
    writes_by_line: Dict[int, List[int]] = field(default_factory=dict)
    read_indices: List[int] = field(default_factory=list)


def _index_trace(ops: Sequence[Op], memory: FunctionalSecureMemory) -> _TraceIndex:
    index = _TraceIndex()
    for i, op in enumerate(ops):
        if op.is_write:
            index.writes_by_block.setdefault(op.block, []).append(i)
            line = memory.scheme.ctr_index(op.block)
            index.writes_by_line.setdefault(line, []).append(i)
        else:
            index.read_indices.append(i)
    return index


def generate_schedule(
    rng: random.Random,
    ops: Sequence[Op],
    memory: FunctionalSecureMemory,
    max_events: int = 4,
    kinds: Sequence[str] = TAMPER_KINDS,
    attempts_per_event: int = 40,
) -> List[TamperSpec]:
    """Draw a feasible, pairwise-disjoint tamper schedule for ``ops``.

    Feasibility per class (so every injection is *detectable*, which the
    harness then asserts it *is detected*):

    * every victim is a written block (its MAC and leaf exist);
    * injections land at read-op indices or at end-of-trace, never inside
      a write that would immediately overwrite the corruption;
    * ``stale_mac`` snapshots after one write to the victim and injects
      after a second, so the replayed MAC is bound to a stale counter;
    * ``rollback`` snapshots a line between two of its writes, so the
      restored state provably differs at injection time;
    * affected block regions are pairwise disjoint, so each detection is
      attributable to exactly one injection.

    ``memory`` supplies only *shape* (scheme geometry, tree levels); its
    state is not consulted and it is safe to pass the instance that will
    later be attacked.
    """
    index = _index_trace(ops, memory)
    end = len(ops)
    inject_points = index.read_indices + [end]
    claimed: Set[int] = set()
    schedule: List[TamperSpec] = []

    def points_after(threshold: int) -> List[int]:
        return [p for p in inject_points if p > threshold]

    def claim(spec: TamperSpec) -> bool:
        region = affected_blocks(spec, memory)
        if region & claimed:
            return False
        claimed.update(region)
        schedule.append(spec)
        return True

    written = sorted(index.writes_by_block)
    for _ in range(max_events):
        for _ in range(attempts_per_event):
            kind = rng.choice(list(kinds))
            spec = _draw_spec(rng, kind, index, written, memory, points_after)
            if spec is not None and claim(spec):
                break
    return sorted(schedule, key=lambda s: (s.inject_at, s.block, s.kind))


def _draw_spec(
    rng: random.Random,
    kind: str,
    index: _TraceIndex,
    written: Sequence[int],
    memory: FunctionalSecureMemory,
    points_after,
) -> Optional[TamperSpec]:
    if not written:
        return None
    if kind == "bitflip":
        block = rng.choice(written)
        points = points_after(index.writes_by_block[block][0])
        if not points:
            return None
        return TamperSpec(
            kind=kind,
            inject_at=rng.choice(points),
            block=block,
            bit=rng.randrange(LINE_BYTES * 8),
        )
    if kind == "swap":
        if len(written) < 2:
            return None
        block, partner = rng.sample(list(written), 2)
        first = max(index.writes_by_block[block][0], index.writes_by_block[partner][0])
        points = points_after(first)
        if not points:
            return None
        return TamperSpec(
            kind=kind, inject_at=rng.choice(points), block=block, partner=partner
        )
    if kind == "stale_mac":
        candidates = [b for b in written if len(index.writes_by_block[b]) >= 2]
        if not candidates:
            return None
        block = rng.choice(candidates)
        first, second = index.writes_by_block[block][:2]
        points = points_after(second)
        if not points:
            return None
        return TamperSpec(
            kind=kind,
            inject_at=rng.choice(points),
            block=block,
            snapshot_at=first + 1,
        )
    if kind == "rollback":
        lines = [l for l, w in index.writes_by_line.items() if len(w) >= 2]
        if not lines:
            return None
        line = rng.choice(lines)
        first, second = index.writes_by_line[line][:2]
        points = points_after(second)
        if not points:
            return None
        # Victim: a block of this line written before the snapshot, so it
        # is readable (and probe-able) the whole armed window.
        ops_written = [
            b for b, w in index.writes_by_block.items()
            if memory.scheme.ctr_index(b) == line and w[0] <= first
        ]
        return TamperSpec(
            kind=kind,
            inject_at=rng.choice(points),
            block=rng.choice(ops_written),
            snapshot_at=first + 1,
        )
    if kind == "splice":
        # The root is held on-chip (unsplicable); need >= 2 internal levels.
        if memory.tree.levels < 2:
            return None
        block = rng.choice(written)
        points = points_after(index.writes_by_block[block][0])
        if not points:
            return None
        # Bias toward low levels: high nodes cover huge block regions and
        # starve the disjointness constraint.
        level = min(
            rng.randrange(memory.tree.levels - 1),
            rng.randrange(memory.tree.levels - 1),
        )
        return TamperSpec(
            kind=kind, inject_at=rng.choice(points), block=block, level=level
        )
    raise ValueError(f"unknown tamper kind {kind!r}")
