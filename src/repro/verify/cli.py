"""CLI for the verification harness: ``python -m repro verify ...``.

Subcommands:

* ``fuzz`` — seeded fuzz campaign (attack + differential legs); prints a
  byte-reproducible JSON summary and exits non-zero on any failure.
* ``attack`` — one seeded tamper-injection run against the functional
  memory; prints the attack report.
* ``diff`` — array-vs-object path differential plus engine invariants
  for one design on a seeded random trace.
* ``replay`` — re-execute a minimised fuzz repro file.
* ``hammer`` — RowHammer disturbance-error sweep: aggressor workloads
  and region-boundary scenarios, every planned flip must be detected
  with correct attribution and benign traffic must stay silent.
* ``dram-calib`` — replay the DRAM microbenchmark suite against a pinned
  calibration profile; every curve point must stay inside its tolerance
  band.  ``--fit`` reports least-squares knob deltas, ``--pin``
  re-measures and rewrites the profile JSON after a deliberate timing
  change.
"""

from __future__ import annotations

import argparse
import json
import random
from pathlib import Path

from ..secure.counters import make_counter_scheme
from ..secure.functional import FunctionalSecureMemory
from ..sim.simulator import SimulationConfig
from .attack import AttackError, AttackHarness
from .differential import diff_paths, run_with_invariants
from .fuzz import DESIGNS, SCHEMES, _random_accesses, replay, run_fuzz
from .hammer import (
    HammerConfig,
    run_hammer_attack,
    run_hammer_sweep,
)
from .tamper import TAMPER_KINDS, generate_ops, generate_schedule


def _print(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_fuzz(args: argparse.Namespace) -> int:
    summary = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        out_dir=Path(args.out),
        sim_accesses=args.sim_accesses,
    )
    _print(summary)
    return 0 if summary["clean"] else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    rng = random.Random(f"cosmos-verify:attack:{args.seed}")
    memory = FunctionalSecureMemory(
        num_blocks=args.blocks, scheme=make_counter_scheme(args.scheme)
    )
    ops = generate_ops(rng, num_ops=args.ops, num_blocks=args.blocks)
    schedule = generate_schedule(
        rng, ops, memory, max_events=args.events, kinds=tuple(args.kinds)
    )
    harness = AttackHarness(memory)
    try:
        report = harness.run(ops, schedule)
    except AttackError as exc:
        print(f"ATTACK ERROR: {exc}")
        return 1
    _print(report.to_dict())
    return 0 if report.clean else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    pair = tuple(p.strip() for p in args.path_pair.split(","))
    if len(pair) != 2 or not all(
        p in ("arrays", "objects", "batched") for p in pair
    ):
        print(
            "--path-pair must name two of arrays, objects, batched "
            f"(got {args.path_pair!r})"
        )
        return 2
    rng = random.Random(f"cosmos-verify:diff:{args.seed}")
    accesses = _random_accesses(rng, args.accesses, footprint_blocks=512)
    config = SimulationConfig()
    paths_report = diff_paths(args.design, accesses, config, path_pair=pair)
    invariants = run_with_invariants(args.design, accesses, config)
    _print({"paths": paths_report.to_dict(), "invariants": invariants.to_dict()})
    return 0 if paths_report.matched and invariants.matched else 1


def _cmd_hammer(args: argparse.Namespace) -> int:
    config = HammerConfig(threshold=args.threshold, window_ops=args.window_ops)
    if args.pattern is not None:
        from ..workloads.hammer import generate_hammer_trace
        from .hammer import ops_from_trace

        trace = generate_hammer_trace(
            args.pattern, num_cores=2, max_accesses=args.accesses,
            seed=args.seed, start=0,
        )
        ops = ops_from_trace(trace, args.blocks)
        plan, report = run_hammer_attack(
            ops, scheme=args.scheme, num_blocks=args.blocks,
            config=config, seed=args.seed,
        )
        payload = {"plan": plan.to_dict(), "report": report.to_dict()}
        clean = report.clean and bool(plan.flips)
    else:
        payload = run_hammer_sweep(
            seed=args.seed, num_blocks=args.blocks,
            accesses=args.accesses, config=config,
        )
        clean = bool(payload["clean"])
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _print(payload)
    return 0 if clean else 1


def _cmd_dram_calib(args: argparse.Namespace) -> int:
    from ..mem.calibrate import (
        available_profiles,
        fit_timings,
        load_profile,
        load_reference,
        pin_profile,
        run_calibration,
    )

    names = (
        available_profiles() if args.profile == "all" else [args.profile]
    )
    if not names:
        print("no calibration profiles found")
        return 1

    payload: dict = {"profiles": {}}
    status = 0
    for name in names:
        profile = load_profile(name)
        if args.pin:
            path = pin_profile(profile, requests=args.requests)
            payload["profiles"][name] = {"pinned": str(path)}
            continue
        report = run_calibration(profile, requests=args.requests)
        entry = report.to_dict()
        if args.fit:
            result = fit_timings(
                load_reference(name),
                initial=profile.timings,
                seed=args.seed,
                requests=args.requests,
                num_channels=profile.num_channels,
                num_banks=profile.num_banks,
            )
            entry["fit"] = result.to_dict()
        payload["profiles"][name] = entry
        if not report.ok:
            status = 1
    payload["ok"] = status == 0
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    _print(payload)
    return status


def _cmd_replay(args: argparse.Namespace) -> int:
    failures, report = replay(Path(args.file))
    payload: dict = {"failures": failures}
    if report is not None:
        payload["report"] = report.to_dict()
    _print(payload)
    return 1 if failures else 0


def add_verify_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``verify`` subcommand on the repro CLI."""
    verify_parser = sub.add_parser(
        "verify", help="adversarial tamper injection and differential checking"
    )
    verify_sub = verify_parser.add_subparsers(dest="verify_command", required=True)

    fuzz = verify_sub.add_parser(
        "fuzz", help="seeded fuzz campaign over traces x tampers x designs"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--budget", type=int, default=25, help="number of trials")
    fuzz.add_argument(
        "--out", default="verify-repros", help="directory for minimised repro files"
    )
    fuzz.add_argument(
        "--sim-accesses", type=int, default=300,
        help="simulator trace length for the differential leg",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    attack = verify_sub.add_parser(
        "attack", help="one seeded tamper-injection run (functional memory)"
    )
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--ops", type=int, default=80)
    attack.add_argument("--events", type=int, default=4)
    attack.add_argument("--blocks", type=int, default=256)
    attack.add_argument("--scheme", choices=SCHEMES, default="monolithic")
    attack.add_argument(
        "--kinds", nargs="+", choices=TAMPER_KINDS, default=list(TAMPER_KINDS)
    )
    attack.set_defaults(func=_cmd_attack)

    diff = verify_sub.add_parser(
        "diff", help="dispatch-path differential + engine invariants"
    )
    diff.add_argument("--design", choices=DESIGNS, default="cosmos")
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--accesses", type=int, default=2000)
    diff.add_argument(
        "--path-pair", default="arrays,objects", metavar="PATH,PATH",
        help="the two dispatch paths to lockstep (e.g. arrays,batched; "
             "default: %(default)s)",
    )
    diff.set_defaults(func=_cmd_diff)

    calib = verify_sub.add_parser(
        "dram-calib",
        help="DRAM timing calibration check against a pinned profile",
    )
    calib.add_argument(
        "--profile", default="all",
        help="profile name (e.g. ddr4-2400) or 'all' (default)",
    )
    calib.add_argument(
        "--requests", type=int, default=2048,
        help="microbenchmark request budget (must match the pinned budget)",
    )
    calib.add_argument("--seed", type=int, default=0, help="fitter seed")
    calib.add_argument(
        "--fit", action="store_true",
        help="also run the least-squares knob fitter and report deltas",
    )
    calib.add_argument(
        "--pin", action="store_true",
        help="re-measure and overwrite the pinned profile JSON(s)",
    )
    calib.add_argument(
        "--out", default="",
        help="also write the comparison report JSON to this file (CI artifact)",
    )
    calib.set_defaults(func=_cmd_dram_calib)

    replay_parser = verify_sub.add_parser(
        "replay", help="re-execute a minimised fuzz repro file"
    )
    replay_parser.add_argument("file", help="path to a repro-*.json file")
    replay_parser.set_defaults(func=_cmd_replay)

    hammer = verify_sub.add_parser(
        "hammer", help="RowHammer disturbance-error sweep (sixth attack class)"
    )
    hammer.add_argument("--seed", type=int, default=0)
    hammer.add_argument(
        "--pattern", choices=("hammer-single", "hammer-double",
                              "hammer-many", "hammer-mixed"),
        default=None,
        help="run a single aggressor workload instead of the full sweep",
    )
    hammer.add_argument("--scheme", choices=SCHEMES, default="monolithic")
    hammer.add_argument("--blocks", type=int, default=1 << 12)
    hammer.add_argument("--accesses", type=int, default=1200)
    hammer.add_argument(
        "--threshold", type=int, default=96,
        help="HC threshold (combined neighbour activations per window)",
    )
    hammer.add_argument(
        "--window-ops", type=int, default=384,
        help="ops per refresh window (tREFI proxy)",
    )
    hammer.add_argument(
        "--out", default="", help="also write the JSON summary to this file"
    )
    hammer.set_defaults(func=_cmd_hammer)
