"""RowHammer disturbance-error model over a row-activation ledger.

The sixth attack class (ROADMAP item 4, modelled after HammerSim's
system-level approach): instead of drawing corruption points at random,
flips are *earned* by activation pressure.  The planner replays an op
trace through the same bank/row decode the DRAM model uses, counts row
activations per (channel, bank, row) within tREFI-proxy windows, and
plants a :class:`~repro.verify.tamper.TamperSpec` of kind ``"hammer"``
wherever a victim row's adjacent-activation count crosses the HC
threshold.  The spec's ``target`` records which physical region the
victim row holds — data blocks, counter lines or internal MT nodes — so
the :class:`~repro.verify.attack.AttackHarness` lands the bit flip in
the right state and the accounting asserts the right detector catches it
(MAC for data, MT level 0 for counters, splice-style level attribution
for tree nodes).

Physical layout assumed by the planner (the *model geometry*, distinct
from the timing model's): data blocks first, then one 64B line per
counter line, then the internal MT levels bottom-up (the root lives
on-chip and cannot be hammered).  Rows are deliberately small
(``row_blocks`` defaults to 4) so modest footprints span many rows and
region boundaries — which is precisely what lets aggressor patterns
reach counter and tree rows through their *induced* metadata traffic.

Everything is seeded and a pure function of ``(ops, memory shape,
config, seed)``: the same inputs always yield byte-identical plans,
which the determinism suite pins across processes and cache modes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..mem.dram import DramModel, DramTimings
from ..obs.events import EventRing
from ..secure.counters import make_counter_scheme
from ..secure.functional import FunctionalSecureMemory
from .attack import AttackError, AttackHarness, AttackReport
from .tamper import HAMMER_TARGETS, Op, TamperSpec, affected_blocks

#: Ciphertext bits per 64B line / digest bits per MT node — bit-draw ranges.
_DATA_BITS = 64 * 8
_NODE_BITS = 32 * 8


@dataclass(frozen=True)
class HammerConfig:
    """Geometry and disturbance parameters of the hammer model.

    Attributes:
        threshold: HC threshold — combined activations of a victim row's
            two physical neighbours, within one window, that flip it.
        window_ops: tREFI proxy measured in ops: the activation ledger
            resets every ``window_ops`` operations (refresh rewrites every
            row, so pressure cannot carry across a boundary).
        num_banks / num_channels / row_blocks: Model geometry for the
            row decode; ``row_blocks`` is 64B blocks per DRAM row.
        max_flips: Planner budget; crossings past it are counted, not
            scheduled (``skipped_budget``).
        targets: Which physical regions may be victimised; crossings whose
            only candidates lie elsewhere count as ``vacuous``.
        include_metadata: Model the induced counter-line and level-0 MT
            fetch of every op in the ledger (the channel that lets data
            aggressors hammer metadata rows).  Disable for unit tests
            that want pure data-row pressure.
    """

    threshold: int = 96
    window_ops: int = 384
    num_banks: int = 2
    num_channels: int = 1
    row_blocks: int = 4
    max_flips: int = 8
    targets: Tuple[str, ...] = HAMMER_TARGETS
    include_metadata: bool = True

    def geometry(self) -> DramModel:
        """A decode-only DRAM model with this config's geometry."""
        return DramModel(
            timings=DramTimings(refresh_interval=0),
            num_banks=self.num_banks,
            num_channels=self.num_channels,
            row_size_bytes=self.row_blocks * 64,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "window_ops": self.window_ops,
            "num_banks": self.num_banks,
            "num_channels": self.num_channels,
            "row_blocks": self.row_blocks,
            "max_flips": self.max_flips,
            "targets": list(self.targets),
            "include_metadata": self.include_metadata,
        }


class PhysicalMap:
    """Block-granular layout of the protected physical space.

    ``[0, num_blocks)`` data blocks, then one block per counter line,
    then the internal MT levels bottom-up (root excluded — it is held
    on-chip).  Gives the planner a bijection between physical block
    addresses and the entities a disturbance error can corrupt.
    """

    def __init__(self, memory: FunctionalSecureMemory) -> None:
        tree = memory.tree
        self.blocks_per_ctr = memory.scheme.blocks_per_ctr
        self.arity = tree.arity
        self.num_blocks = memory.num_blocks
        self.num_lines = tree.num_leaves
        self.ctr_base = self.num_blocks
        self.mt_base = self.ctr_base + self.num_lines
        self.level_bases: List[int] = []
        self.level_sizes: List[int] = []
        cursor = self.mt_base
        for level in range(tree.levels - 1):
            self.level_bases.append(cursor)
            size = tree.level_size(level)
            self.level_sizes.append(size)
            cursor += size
        self.total = cursor

    def data_phys(self, block: int) -> int:
        return block

    def ctr_phys(self, line: int) -> int:
        return self.ctr_base + line

    def mt_phys(self, level: int, index: int) -> int:
        return self.level_bases[level] + index

    def classify(self, phys: int) -> Optional[Tuple]:
        """``("data", block)`` | ``("ctr", line)`` | ``("mt", level, index)``
        | ``None`` for addresses past the mapped space."""
        if phys < 0 or phys >= self.total:
            return None
        if phys < self.ctr_base:
            return ("data", phys)
        if phys < self.mt_base:
            return ("ctr", phys - self.ctr_base)
        for level, (base, size) in enumerate(zip(self.level_bases, self.level_sizes)):
            if phys < base + size:
                return ("mt", level, phys - base)
        return None  # pragma: no cover - unreachable given the total bound


@dataclass(frozen=True)
class HammerFlip:
    """Provenance of one planned disturbance flip."""

    spec: TamperSpec
    window: int
    channel: int
    bank: int
    victim_row: int
    #: Activations of the row-below / row-above neighbours at trigger time.
    low: int
    high: int

    @property
    def pressure(self) -> int:
        return self.low + self.high

    @property
    def pattern(self) -> str:
        """``"double"`` when both neighbours carry real pressure."""
        return "double" if min(self.low, self.high) * 4 >= self.pressure else "single"

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "window": self.window,
            "channel": self.channel,
            "bank": self.bank,
            "victim_row": self.victim_row,
            "low": self.low,
            "high": self.high,
            "pressure": self.pressure,
            "pattern": self.pattern,
        }


@dataclass
class HammerPlan:
    """Outcome of one planning pass over an op trace."""

    config: HammerConfig
    flips: List[HammerFlip] = field(default_factory=list)
    windows: int = 0
    activations: int = 0
    #: Highest victim pressure observed anywhere (also on rows that never
    #: crossed) — the margin benign workloads are judged by.
    max_pressure: int = 0
    #: Threshold crossings whose victim row held nothing detectable.
    vacuous: int = 0
    #: Crossings dropped to keep armed regions pairwise disjoint.
    skipped_overlap: int = 0
    #: Crossings past the ``max_flips`` budget.
    skipped_budget: int = 0

    @property
    def schedule(self) -> List[TamperSpec]:
        return [flip.spec for flip in self.flips]

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": self.config.to_dict(),
            "flips": [flip.to_dict() for flip in self.flips],
            "windows": self.windows,
            "activations": self.activations,
            "max_pressure": self.max_pressure,
            "vacuous": self.vacuous,
            "skipped_overlap": self.skipped_overlap,
            "skipped_budget": self.skipped_budget,
        }


def ops_from_trace(trace, num_blocks: int, tag: str = "hammer") -> List[Op]:
    """Convert a workload trace into a functional-memory op list.

    Addresses fold into ``[0, num_blocks)`` (traces based at
    ``HEAP_BASE`` concentrate accordingly — deliberate: the hammer model
    geometry is small).  The first touch of every block becomes a write
    with a deterministic payload, because the functional memory treats a
    read of a never-written block as a caller error.
    """
    arrays = trace.arrays()
    blocks = ((arrays.addresses >> 6) % num_blocks).tolist()
    writes = arrays.is_write.tolist()
    ops: List[Op] = []
    written: Set[int] = set()
    for i, (block, is_write) in enumerate(zip(blocks, writes)):
        if is_write or block not in written:
            written.add(block)
            payload = f"{tag}:{block}:{i}".encode()[:64]
            ops.append(Op(block=block, is_write=True, payload=payload))
        else:
            ops.append(Op(block=block, is_write=False))
    return ops


def _op_phys(op: Op, pmap: PhysicalMap, config: HammerConfig) -> List[int]:
    """Physical block addresses one op touches (data + induced metadata)."""
    line = op.block // pmap.blocks_per_ctr
    phys = [pmap.data_phys(op.block)]
    if config.include_metadata:
        phys.append(pmap.ctr_phys(line))
        if pmap.level_bases:
            phys.append(pmap.mt_phys(0, line // pmap.arity))
    return phys


def plan_hammer(
    ops: Sequence[Op],
    memory: FunctionalSecureMemory,
    config: Optional[HammerConfig] = None,
    seed: int = 0,
) -> HammerPlan:
    """Plan disturbance flips for ``ops`` from the activation ledger.

    ``memory`` supplies only *shape* (scheme geometry, tree structure);
    its state is not consulted, so the instance that will later be
    attacked is safe to pass.

    For every row activation (open-page model: a row-buffer transition in
    the row's bank) the two adjacent rows' combined pressure is checked
    against the threshold.  A crossing selects a victim entity inside the
    victim row — a *written* data block, a counter line with a written
    block, or an MT node with a written leaf below it — so every planned
    flip is detectable, which the harness then asserts it *is detected*.
    Victim rows flip at most once per run; armed regions stay pairwise
    disjoint so each detection is attributable to exactly one flip.
    """
    config = config if config is not None else HammerConfig()
    rng = random.Random(f"cosmos-hammer:{seed}")
    pmap = PhysicalMap(memory)
    geometry = config.geometry()
    tree = memory.tree
    bpc = pmap.blocks_per_ctr

    plan = HammerPlan(config=config)
    ledger: Dict[Tuple[int, int, int], int] = {}
    open_rows: Dict[Tuple[int, int], int] = {}
    window = 0
    written: Set[int] = set()
    line_first_written: Dict[int, int] = {}
    handled_rows: Set[Tuple[int, int, int]] = set()
    claimed: Set[int] = set()

    def victim_candidates(channel: int, bank: int, row: int) -> List[TamperSpec]:
        candidates: List[TamperSpec] = []
        for column in range(config.row_blocks):
            entity = pmap.classify(geometry.encode(channel, bank, row, column))
            if entity is None:
                continue
            if entity[0] == "data" and "data" in config.targets:
                block = entity[1]
                if block in written:
                    candidates.append(
                        TamperSpec(
                            kind="hammer", inject_at=0, block=block,
                            bit=rng.randrange(_DATA_BITS), target="data",
                        )
                    )
            elif entity[0] == "ctr" and "ctr" in config.targets:
                line = entity[1]
                block = line_first_written.get(line)
                if block is not None:
                    candidates.append(
                        TamperSpec(
                            kind="hammer", inject_at=0, block=block,
                            bit=rng.randrange(_NODE_BITS), target="ctr",
                        )
                    )
            elif entity[0] == "mt" and "mt" in config.targets:
                level, index = entity[1], entity[2]
                first, last = tree.subtree_leaves(level, index)
                block = next(
                    (
                        line_first_written[line]
                        for line in range(first, last)
                        if line in line_first_written
                    ),
                    None,
                )
                if block is not None:
                    candidates.append(
                        TamperSpec(
                            kind="hammer", inject_at=0, block=block,
                            bit=rng.randrange(_NODE_BITS), level=level,
                            target="mt",
                        )
                    )
        return candidates

    for i, op in enumerate(ops):
        if op.is_write:
            written.add(op.block)
            line_first_written.setdefault(op.block // bpc, op.block)
        current_window = i // config.window_ops
        if current_window != window:
            window = current_window
            ledger.clear()
        for phys in _op_phys(op, pmap, config):
            channel, bank, row, _ = geometry.decode(phys)
            bank_key = (channel, bank)
            if open_rows.get(bank_key) == row:
                continue  # row hit: no activation, no disturbance
            open_rows[bank_key] = row
            plan.activations += 1
            row_key = (channel, bank, row)
            ledger[row_key] = ledger.get(row_key, 0) + 1
            for victim_row in (row - 1, row + 1):
                if victim_row < 0:
                    continue
                low = ledger.get((channel, bank, victim_row - 1), 0)
                high = ledger.get((channel, bank, victim_row + 1), 0)
                pressure = low + high
                if pressure > plan.max_pressure:
                    plan.max_pressure = pressure
                if pressure < config.threshold:
                    continue
                victim_key = (channel, bank, victim_row)
                if victim_key in handled_rows:
                    continue
                handled_rows.add(victim_key)
                candidates = victim_candidates(channel, bank, victim_row)
                if not candidates:
                    plan.vacuous += 1
                    continue
                if len(plan.flips) >= config.max_flips:
                    plan.skipped_budget += 1
                    continue
                spec = replace(rng.choice(candidates), inject_at=i + 1)
                region = affected_blocks(spec, memory)
                if region & claimed:
                    plan.skipped_overlap += 1
                    continue
                claimed.update(region)
                plan.flips.append(
                    HammerFlip(
                        spec=spec, window=window, channel=channel, bank=bank,
                        victim_row=victim_row, low=low, high=high,
                    )
                )
    plan.windows = (max(len(ops) - 1, 0)) // config.window_ops + 1 if ops else 0
    return plan


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
def _row_driver(
    pmap: PhysicalMap,
    geometry: DramModel,
    tree,
    channel: int,
    bank: int,
    row: int,
    row_blocks: int,
) -> Optional[int]:
    """A *data block* whose access activates ``(channel, bank, row)``.

    Data rows are driven directly; counter rows through any data block of
    a resident line; level-0 MT rows through a data block under one of
    their nodes.  Deeper MT rows have no driver in the induced-traffic
    model (only the level-0 path node is fetched per op).
    """
    for column in range(row_blocks):
        entity = pmap.classify(geometry.encode(channel, bank, row, column))
        if entity is None:
            continue
        if entity[0] == "data":
            return entity[1]
        if entity[0] == "ctr":
            return entity[1] * pmap.blocks_per_ctr
        if entity[0] == "mt" and entity[1] == 0:
            first, _ = tree.subtree_leaves(0, entity[2])
            return first * pmap.blocks_per_ctr
    return None


def boundary_hammer_ops(
    memory: FunctionalSecureMemory,
    config: Optional[HammerConfig] = None,
    region: str = "ctr",
    seed: int = 0,
) -> List[Op]:
    """Aggressor op stream targeting a victim row inside ``region``.

    Picks the first row of the requested region (``"data"`` | ``"ctr"`` |
    ``"mt"``) whose physical neighbours are both drivable, then
    alternates reads of the two driver blocks so every access re-opens a
    neighbour row in the victim's bank — a double-sided hammer expressed
    purely through (induced) access patterns.  Falls back to single-sided
    hammering against a far dummy row when only one neighbour has a
    driver.  A seeded prologue writes the victim row's entities (the
    benign tenant whose data is at risk) and the driver blocks.
    """
    config = config if config is not None else HammerConfig()
    pmap = PhysicalMap(memory)
    geometry = config.geometry()
    tree = memory.tree
    bpc = pmap.blocks_per_ctr

    if region == "data":
        phys_range = range(0, pmap.ctr_base)
    elif region == "ctr":
        phys_range = range(pmap.ctr_base, pmap.mt_base)
    elif region == "mt":
        phys_range = range(pmap.mt_base, pmap.total)
    else:
        raise ValueError(f"unknown hammer region {region!r}")

    rows: List[Tuple[int, int, int]] = []
    seen_rows: Set[Tuple[int, int, int]] = set()
    for phys in phys_range:
        channel, bank, row, _ = geometry.decode(phys)
        key = (channel, bank, row)
        if key not in seen_rows:
            seen_rows.add(key)
            rows.append(key)

    chosen: Optional[Tuple[Tuple[int, int, int], Optional[int], Optional[int]]] = None
    for key in rows:
        channel, bank, row = key
        low = (
            _row_driver(pmap, geometry, tree, channel, bank, row - 1, config.row_blocks)
            if row > 0 else None
        )
        high = _row_driver(
            pmap, geometry, tree, channel, bank, row + 1, config.row_blocks
        )
        if low is not None and high is not None:
            chosen = (key, low, high)
            break
        if chosen is None and (low is not None or high is not None):
            chosen = (key, low, high)
    if chosen is None:
        raise ValueError(f"no drivable victim row in region {region!r}")

    (channel, bank, victim_row), low_driver, high_driver = chosen
    if low_driver is None or high_driver is None:
        # Single-sided: pair the lone driver with a far dummy data row in
        # the same bank, so each access still re-opens the aggressor row.
        driver = low_driver if low_driver is not None else high_driver
        dummy_row = None
        for offset in range(4, 64):
            for candidate in (victim_row + offset, victim_row - offset):
                if candidate < 0:
                    continue
                block = geometry.encode(channel, bank, candidate, 0)
                if block < pmap.num_blocks:
                    dummy_row = candidate
                    break
            if dummy_row is not None:
                break
        if dummy_row is None:
            raise ValueError(f"no dummy row available beside region {region!r}")
        low_driver, high_driver = driver, geometry.encode(channel, bank, dummy_row, 0)

    # Victim-row residents: the state the disturbance error will corrupt.
    victims: List[int] = []
    for column in range(config.row_blocks):
        entity = pmap.classify(geometry.encode(channel, bank, victim_row, column))
        if entity is None:
            continue
        if entity[0] == "data":
            victims.append(entity[1])
        elif entity[0] == "ctr":
            victims.append(entity[1] * bpc)
        elif entity[0] == "mt":
            first, _ = tree.subtree_leaves(entity[1], entity[2])
            victims.append(first * bpc)
    victims = sorted(set(victims))[:4]

    rng = random.Random(f"cosmos-hammer-boundary:{region}:{seed}")
    ops: List[Op] = []
    for block in dict.fromkeys(victims + [low_driver, high_driver]):
        payload = f"boundary:{region}:{block}:{rng.randrange(1 << 16)}".encode()[:64]
        ops.append(Op(block=block, is_write=True, payload=payload))
    body = 2 * config.threshold + 64
    for i in range(body):
        ops.append(Op(block=low_driver if i % 2 == 0 else high_driver, is_write=False))
    return ops


# ----------------------------------------------------------------------
# Attack driver + seeded sweep
# ----------------------------------------------------------------------
def run_hammer_attack(
    ops: Sequence[Op],
    scheme: str = "monolithic",
    num_blocks: int = 1 << 12,
    config: Optional[HammerConfig] = None,
    seed: int = 0,
    events: Optional[EventRing] = None,
) -> Tuple[HammerPlan, AttackReport]:
    """Plan flips for ``ops`` and run the attack; returns (plan, report)."""
    config = config if config is not None else HammerConfig()
    shape = FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme)
    )
    plan = plan_hammer(ops, shape, config, seed=seed)
    victim = FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme)
    )
    harness = AttackHarness(victim, events=events)
    report = harness.run(ops, plan.schedule)
    return plan, report


#: (name, kind, argument, scheme) — the seeded CI sweep.  Workload
#: scenarios exercise the aggressor generators end to end (data-region
#: flips); boundary scenarios steer induced metadata traffic at counter
#: and MT rows; the benign scenario pins the zero-false-positive floor.
SWEEP_SCENARIOS: Tuple[Tuple[str, str, str, str], ...] = (
    ("single", "workload", "hammer-single", "monolithic"),
    ("double", "workload", "hammer-double", "split"),
    ("many", "workload", "hammer-many", "morphctr"),
    ("mixed", "workload", "hammer-mixed", "monolithic"),
    ("data-boundary", "boundary", "data", "split"),
    ("ctr-boundary", "boundary", "ctr", "monolithic"),
    ("mt-boundary", "boundary", "mt", "monolithic"),
    ("below-threshold", "benign", "zipf", "monolithic"),
)


def _sweep_ops(
    kind: str, argument: str, scheme: str, config: HammerConfig,
    num_blocks: int, seed: int, accesses: int,
) -> List[Op]:
    if kind == "workload":
        from ..workloads.hammer import generate_hammer_trace

        trace = generate_hammer_trace(
            argument, num_cores=2, max_accesses=accesses, seed=seed, start=0,
            row_blocks=config.row_blocks, num_banks=config.num_banks,
            num_channels=config.num_channels,
        )
        return ops_from_trace(trace, num_blocks)
    if kind == "boundary":
        memory = FunctionalSecureMemory(
            num_blocks=num_blocks, scheme=make_counter_scheme(scheme)
        )
        return boundary_hammer_ops(memory, config, region=argument, seed=seed)
    if kind == "benign":
        from ..workloads.micro import zipf_trace

        trace = zipf_trace(
            n=accesses, footprint_blocks=num_blocks, start=0, seed=seed
        )
        return ops_from_trace(trace, num_blocks)
    raise ValueError(f"unknown sweep scenario kind {kind!r}")


def run_hammer_sweep(
    seed: int = 0,
    num_blocks: int = 1 << 12,
    accesses: int = 1200,
    config: Optional[HammerConfig] = None,
) -> Dict[str, object]:
    """Seeded sweep over every scenario; byte-reproducible summary.

    Contract asserted per aggressor scenario: at least one flip planned,
    every flip detected (injected == detected), zero false negatives,
    zero false positives, zero misattributions, detection latency and
    tree level present in the event ring.  The benign scenario must plan
    zero flips and stay silent.  Across the sweep all three targets
    (data, ctr, mt) must be exercised.
    """
    config = config if config is not None else HammerConfig()
    failures: List[str] = []
    scenarios: Dict[str, Dict[str, object]] = {}
    by_target: Dict[str, int] = {}
    by_pattern: Dict[str, int] = {}

    for name, kind, argument, scheme in SWEEP_SCENARIOS:
        ops = _sweep_ops(kind, argument, scheme, config, num_blocks, seed, accesses)
        events = EventRing()
        try:
            plan, report = run_hammer_attack(
                ops, scheme=scheme, num_blocks=num_blocks, config=config,
                seed=seed, events=events,
            )
        except AttackError as exc:
            failures.append(f"{name}: attack error: {exc}")
            scenarios[name] = {"error": str(exc)}
            continue
        detected = events.filter("tamper_detected")
        detail: Dict[str, object] = {
            "scheme": scheme,
            "ops": len(ops),
            "planned": len(plan.flips),
            "injected": len(report.schedule),
            "detected": len(report.detections),
            "false_negatives": len(report.false_negatives),
            "false_positives": len(report.false_positives),
            "misattributions": len(report.misattributions),
            "vacuous": plan.vacuous,
            "skipped_overlap": plan.skipped_overlap,
            "skipped_budget": plan.skipped_budget,
            "max_pressure": plan.max_pressure,
            "windows": plan.windows,
            "targets": _count(flip.spec.target for flip in plan.flips),
            "patterns": _count(flip.pattern for flip in plan.flips),
            "max_latency": max((d.latency for d in report.detections), default=0),
            "levels": sorted(
                {d.level for d in report.detections if d.level is not None}
            ),
            "events": dict(events.counts_by_kind),
        }
        scenarios[name] = detail
        for flip in plan.flips:
            by_target[flip.spec.target] = by_target.get(flip.spec.target, 0) + 1
            by_pattern[flip.pattern] = by_pattern.get(flip.pattern, 0) + 1

        failures.extend(f"{name}: {f}" for f in report.failures())
        if kind == "benign":
            if plan.flips:
                failures.append(
                    f"{name}: benign trace planned {len(plan.flips)} flips "
                    f"(max pressure {plan.max_pressure} vs threshold "
                    f"{config.threshold})"
                )
        else:
            if not plan.flips:
                failures.append(f"{name}: no flips planned")
            if len(report.detections) != len(report.schedule):
                failures.append(
                    f"{name}: {len(report.schedule)} injected, "
                    f"{len(report.detections)} detected"
                )
            if len(detected) != len(report.detections):
                failures.append(f"{name}: detection events missing from ring")
            for event in detected:
                if "latency" not in event:
                    failures.append(f"{name}: detection event without latency")
                    break

    for target in HAMMER_TARGETS:
        if not by_target.get(target):
            failures.append(f"sweep never exercised target {target!r}")

    return {
        "seed": seed,
        "num_blocks": num_blocks,
        "config": config.to_dict(),
        "scenarios": scenarios,
        "by_target": dict(sorted(by_target.items())),
        "by_pattern": dict(sorted(by_pattern.items())),
        "failures": failures,
        "clean": not failures,
    }


def _count(items) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    return dict(sorted(counts.items()))
