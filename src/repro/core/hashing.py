"""State-space hashing for the COSMOS RL predictors.

The paper (Sec. 4.1.1) builds the RL state from bits 6..47 of the physical
address (the page-number bits) pushed through "a variant of the splitmix64
hashing function, leveraging prime multipliers" so that the 16,384-entry
Q-tables see a uniform state distribution.
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1

#: First splitmix64 mixing constant (prime-derived, Vigna 2017).
_MIX1 = 0xBF58476D1CE4E5B9
#: Second splitmix64 mixing constant.
_MIX2 = 0x94D049BB133111EB
#: splitmix64 gamma (golden-ratio increment).
_GAMMA = 0x9E3779B97F4A7C15

#: Default number of RL states (paper Table 2: 16,384 Q-table entries).
DEFAULT_NUM_STATES = 16384

#: Bits 6..47 of the physical address == low 42 bits of the block address.
_STATE_MASK = (1 << 42) - 1


def splitmix64(value: int) -> int:
    """One splitmix64 finalisation round of ``value`` (64-bit)."""
    value = (value + _GAMMA) & _MASK64
    value ^= value >> 30
    value = (value * _MIX1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX2) & _MASK64
    value ^= value >> 31
    return value


def address_state_bits(physical_address: int) -> int:
    """Extract bits 6..47 of a physical address (the hashing input)."""
    return (physical_address >> 6) & ((1 << 42) - 1)


def hash_address(physical_address: int, num_states: int = DEFAULT_NUM_STATES) -> int:
    """Map a physical address to an RL state index in [0, num_states).

    Args:
        physical_address: Byte address of the access.
        num_states: Size of the Q-table's state space.
    """
    if num_states <= 0:
        raise ValueError("num_states must be positive")
    return splitmix64(address_state_bits(physical_address)) % num_states


def hash_block(block_address: int, num_states: int = DEFAULT_NUM_STATES) -> int:
    """Map a 64B block address to an RL state index.

    Convenience wrapper: the simulator works in block addresses, and the
    paper's hash input (bits 6..47) is exactly the block address's low bits.

    Called once per L1 miss and once per CTR classification, so the
    splitmix64 round is inlined here (identical arithmetic to
    :func:`splitmix64`).
    """
    if num_states <= 0:
        raise ValueError("num_states must be positive")
    value = ((block_address & _STATE_MASK) + _GAMMA) & _MASK64
    value ^= value >> 30
    value = (value * _MIX1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX2) & _MASK64
    value ^= value >> 31
    return value % num_states


def hash_block_batch(
    block_addresses: np.ndarray, num_states: int = DEFAULT_NUM_STATES
) -> np.ndarray:
    """Vectorised :func:`hash_block` over an array of block addresses.

    Bit-exact with the scalar form for every non-negative block address:
    the state mask keeps inputs inside 42 bits, so the whole pipeline fits
    ``uint64`` and the wrap-around multiplies match Python's ``& _MASK64``
    arithmetic.  The batched simulation kernel uses this to precompute the
    RL state stream for a whole epoch's miss tail in one shot.
    """
    if num_states <= 0:
        raise ValueError("num_states must be positive")
    value = np.asarray(block_addresses).astype(np.uint64)
    with np.errstate(over="ignore"):
        value = (value & np.uint64(_STATE_MASK)) + np.uint64(_GAMMA)
        value ^= value >> np.uint64(30)
        value *= np.uint64(_MIX1)
        value ^= value >> np.uint64(27)
        value *= np.uint64(_MIX2)
        value ^= value >> np.uint64(31)
        value %= np.uint64(num_states)
    return value.astype(np.int64)
