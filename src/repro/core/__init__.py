"""COSMOS core: RL predictors, CET, LCR replacement, tuning, overhead."""

from .cet import CetEntry, CtrEvaluationTable
from .config import (
    CosmosConfig,
    CtrPredictorRewards,
    DataPredictorRewards,
    Hyperparameters,
)
from .cosmos import CosmosController, CosmosVariant
from .introspection import PolicySnapshot, policy_agreement, q_value_histogram, snapshot_policy
from .hashing import DEFAULT_NUM_STATES, hash_address, hash_block, splitmix64
from .lcr_cache import FLAG_BAD, FLAG_GOOD, LcrReplacementPolicy
from .locality_predictor import (
    BAD_LOCALITY,
    GOOD_LOCALITY,
    CtrLocalityPredictor,
    LocalityPredictorStats,
)
from .location_predictor import (
    OFF_CHIP,
    ON_CHIP,
    DataLocationPredictor,
    LocationPredictorStats,
)
from .overhead import ComponentOverhead, OverheadReport, compute_overhead
from .rl import EpsilonGreedy, QTable

__all__ = [
    "BAD_LOCALITY",
    "CetEntry",
    "ComponentOverhead",
    "CosmosConfig",
    "CosmosController",
    "CosmosVariant",
    "CtrEvaluationTable",
    "CtrLocalityPredictor",
    "CtrPredictorRewards",
    "DEFAULT_NUM_STATES",
    "DataLocationPredictor",
    "DataPredictorRewards",
    "EpsilonGreedy",
    "FLAG_BAD",
    "FLAG_GOOD",
    "GOOD_LOCALITY",
    "Hyperparameters",
    "LcrReplacementPolicy",
    "LocalityPredictorStats",
    "LocationPredictorStats",
    "OFF_CHIP",
    "ON_CHIP",
    "OverheadReport",
    "PolicySnapshot",
    "QTable",
    "compute_overhead",
    "hash_address",
    "policy_agreement",
    "q_value_histogram",
    "snapshot_policy",
    "hash_block",
    "splitmix64",
]
