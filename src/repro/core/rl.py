"""Tabular reinforcement-learning primitives shared by both predictors.

COSMOS keeps two small Q-tables (16,384 states x 2 actions, 8-bit Q-values
each; paper Table 2).  Selection is epsilon-greedy and updates follow the
one-step bootstrapped rule used in Algorithms 1 and 3:

    Q(S, A) <- Q(S, A) + alpha * [R + gamma * Q(S2, A2) - Q(S, A)]
"""

from __future__ import annotations

import random
from typing import List

#: Q-values are stored as 8-bit signed integers in hardware (Table 2);
#: we clamp to the same range so the software model has the same dynamics.
Q_MIN = -128.0
Q_MAX = 127.0


class QTable:
    """A dense ``num_states x num_actions`` table of clamped Q-values.

    Args:
        num_states: Number of hashed RL states.
        num_actions: Number of discrete actions (2 for both predictors).
        initial_value: Starting Q-value for every pair.
    """

    def __init__(self, num_states: int, num_actions: int = 2, initial_value: float = 0.0) -> None:
        if num_states <= 0 or num_actions <= 0:
            raise ValueError("num_states and num_actions must be positive")
        self.num_states = num_states
        self.num_actions = num_actions
        self._table: List[List[float]] = [
            [initial_value] * num_actions for _ in range(num_states)
        ]

    def q(self, state: int, action: int) -> float:
        """Q-value of (state, action)."""
        return self._table[state][action]

    def best_action(self, state: int) -> int:
        """Greedy action for ``state`` (lowest index wins ties)."""
        row = self._table[state]
        if len(row) == 2:  # both COSMOS predictors: binary action space
            return 1 if row[1] > row[0] else 0
        best = 0
        best_q = row[0]
        for action in range(1, self.num_actions):
            if row[action] > best_q:
                best = action
                best_q = row[action]
        return best

    def max_q(self, state: int) -> float:
        """Highest Q-value available in ``state``."""
        return max(self._table[state])

    def update(
        self,
        state: int,
        action: int,
        reward: float,
        alpha: float,
        gamma: float,
        bootstrap: float = 0.0,
    ) -> float:
        """Apply the one-step update; returns the new (clamped) Q-value.

        ``bootstrap`` carries the successor value term (``Q(S2, A2)`` in
        Algorithm 1, ``Q(S, a_actual)`` in Algorithm 3).
        """
        row = self._table[state]
        current = row[action]
        updated = current + alpha * (reward + gamma * bootstrap - current)
        if updated > Q_MAX:
            updated = Q_MAX
        elif updated < Q_MIN:
            updated = Q_MIN
        row[action] = updated
        return updated

    def quantized(self, state: int, action: int) -> int:
        """The Q-value as the 8-bit integer hardware would store."""
        return int(round(self.q(state, action)))


class EpsilonGreedy:
    """Epsilon-greedy action selection with a seeded RNG.

    With probability ``epsilon`` a uniformly random action is taken for
    exploration (paper Sec. 4.5); otherwise the greedy action is used.
    """

    def __init__(self, epsilon: float, num_actions: int = 2, seed: int = 0) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.num_actions = num_actions
        self._rng = random.Random(seed)
        # Bound methods hoisted once: select() runs on every L1 miss.
        self._random = self._rng.random
        self._randrange = self._rng.randrange
        self.explorations = 0
        self.exploitations = 0

    def select(self, table: QTable, state: int) -> int:
        """Pick an action for ``state`` from ``table``."""
        if self._random() < self.epsilon:
            self.explorations += 1
            return self._randrange(self.num_actions)
        self.exploitations += 1
        return table.best_action(state)

    @property
    def exploration_fraction(self) -> float:
        """Observed fraction of exploratory selections."""
        total = self.explorations + self.exploitations
        if total == 0:
            return 0.0
        return self.explorations / total
