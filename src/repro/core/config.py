"""Configuration for COSMOS: reward values, hyperparameters, sizes.

Defaults reproduce the paper's Table 1 (tuned rewards/hyperparameters) and
Table 2 (structure sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DataPredictorRewards:
    """Rewards for the data-location predictor (paper Table 1).

    Naming follows the paper: ``hi`` = correct on-chip ("hit-in"), ``mo`` =
    correct off-chip ("miss-out"), ``ho`` = wrong off-chip prediction when
    data was on-chip, ``mi`` = wrong on-chip prediction when data was
    off-chip.
    """

    r_hi: float = 9.0
    r_mo: float = 12.0
    r_ho: float = -20.0
    r_mi: float = -30.0


@dataclass(frozen=True)
class CtrPredictorRewards:
    """Rewards for the CTR locality predictor (paper Table 1).

    ``hg``/``hb``: CET hit with a good/bad prediction; ``mg``/``mb``: CET
    miss with a good/bad prediction; ``eg``/``eb``: CET eviction of an entry
    predicted good/bad.
    """

    r_hg: float = 13.0
    r_hb: float = -12.0
    r_mg: float = -16.0
    r_mb: float = 20.0
    r_eg: float = -22.0
    r_eb: float = 26.0


@dataclass(frozen=True)
class Hyperparameters:
    """Learning rates, discount factors and exploration rates (Table 1)."""

    alpha_d: float = 0.09
    gamma_d: float = 0.88
    epsilon_d: float = 0.1
    alpha_c: float = 0.05
    gamma_c: float = 0.35
    epsilon_c: float = 0.001

    def __post_init__(self) -> None:
        for name in ("alpha_d", "gamma_d", "alpha_c", "gamma_c"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        for name in ("epsilon_d", "epsilon_c"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class CosmosConfig:
    """Top-level COSMOS configuration (paper Tables 1-3).

    Attributes:
        num_states: Q-table entries for each predictor (16,384).
        cet_entries: Capacity of the CTR Evaluation Table (8,192).
        cet_radius_blocks: Spatial radius, in counter-line addresses, of
            the CET nearby-match.  Algorithm 1 line 9 probes hashed states
            for ``[ctr_addr-32, ctr_addr+32]`` *byte* addresses; since the
            state hash drops the low 6 bits, a +/-32B window reaches at
            most the adjacent counter line, hence the default of 1.
        lcr_cache_bytes: Capacity of the LCR-CTR cache.  The paper states
            "128KB CTR cache per core" for the baseline system (Sec. 3.1)
            and lists the LCR-CTR cache as 128KB (Table 3); we read both
            as per-core figures, giving 512KB total on the 4-core system —
            the reading that makes the baseline and COSMOS storage
            comparable (see EXPERIMENTS.md).
        lcr_cache_assoc: Ways per set of the LCR-CTR cache.
        hyper: Learning-rate / discount / exploration settings.
        data_rewards: Data-location predictor rewards.
        ctr_rewards: CTR locality predictor rewards.
        seed: RNG seed for exploration.
    """

    num_states: int = 16384
    cet_entries: int = 8192
    cet_radius_blocks: int = 1
    lcr_cache_bytes: int = 512 * 1024
    lcr_cache_assoc: int = 16
    hyper: Hyperparameters = field(default_factory=Hyperparameters)
    data_rewards: DataPredictorRewards = field(default_factory=DataPredictorRewards)
    ctr_rewards: CtrPredictorRewards = field(default_factory=CtrPredictorRewards)
    seed: int = 1234
