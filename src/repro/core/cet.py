"""CTR Evaluation Table (CET).

An LRU-managed buffer that tracks recent CTR accesses so the locality
predictor can grade its own predictions (paper Sec. 4.1.1, "Observable").
Each entry records the RL state and predicted action for one counter line;
a later access to the same line — or to one within a +/-32-line spatial
radius — counts as evidence of good locality, while an LRU eviction is
evidence of bad locality.

The paper's Algorithm 1 expresses the nearby-match as hashing every address
in ``[ctr_addr-32, ctr_addr+32]`` and probing the CET for any of those
states; we index entries by counter-line address in coarse regions so the
same predicate is evaluated with O(1) work per access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set


@dataclass
class CetEntry:
    """One CET record: where it lives plus the prediction being graded."""

    ctr_block: int
    state: int
    action: int


class CtrEvaluationTable:
    """LRU buffer of recent CTR accesses with spatial nearby-matching.

    Args:
        capacity: Maximum resident entries (paper: 8,192).
        radius: Nearby-match radius in counter-line addresses (paper: 32).
    """

    def __init__(self, capacity: int = 8192, radius: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if radius < 0:
            raise ValueError("radius must be >= 0")
        self.capacity = capacity
        self.radius = radius
        self._entries: "OrderedDict[int, CetEntry]" = OrderedDict()
        # Coarse spatial index: region id -> resident ctr blocks. Region
        # width equals the radius rounded up to a power of two so a +/-r
        # window spans at most three regions.
        self._region_shift = max(1, radius).bit_length()
        self._regions: Dict[int, Set[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _region(self, ctr_block: int) -> int:
        return ctr_block >> self._region_shift

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, ctr_block: int) -> Optional[CetEntry]:
        """Exact-match probe; refreshes LRU position on hit."""
        entry = self._entries.get(ctr_block)
        if entry is not None:
            self._entries.move_to_end(ctr_block)
        return entry

    def probe_nearby(self, ctr_block: int) -> Optional[CetEntry]:
        """Probe for ``ctr_block`` or any resident line within the radius.

        Returns the closest matching entry (exact match preferred) and
        refreshes its LRU position, mirroring Algorithm 1 line 9.
        """
        exact = self.probe(ctr_block)
        if exact is not None:
            return exact
        if self.radius == 0:
            return None
        best: Optional[int] = None
        best_distance = self.radius + 1
        region = self._region(ctr_block)
        for region_id in (region - 1, region, region + 1):
            residents = self._regions.get(region_id)
            if not residents:
                continue
            for candidate in residents:
                distance = abs(candidate - ctr_block)
                if distance <= self.radius and distance < best_distance:
                    best = candidate
                    best_distance = distance
        if best is None:
            return None
        entry = self._entries[best]
        self._entries.move_to_end(best)
        return entry

    # ------------------------------------------------------------------
    # Insertion / eviction
    # ------------------------------------------------------------------
    def insert(self, ctr_block: int, state: int, action: int) -> Optional[CetEntry]:
        """Insert or refresh an entry; returns the LRU victim if one fell out."""
        existing = self._entries.get(ctr_block)
        if existing is not None:
            existing.state = state
            existing.action = action
            self._entries.move_to_end(ctr_block)
            return None
        evicted: Optional[CetEntry] = None
        if len(self._entries) >= self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self._unindex(evicted.ctr_block)
        entry = CetEntry(ctr_block, state, action)
        self._entries[ctr_block] = entry
        self._regions.setdefault(self._region(ctr_block), set()).add(ctr_block)
        return evicted

    def _unindex(self, ctr_block: int) -> None:
        region = self._region(ctr_block)
        residents = self._regions.get(region)
        if residents is not None:
            residents.discard(ctr_block)
            if not residents:
                del self._regions[region]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def head(self) -> Optional[CetEntry]:
        """Most recently touched entry (Algorithm 1's ``CET.head``)."""
        if not self._entries:
            return None
        return next(reversed(self._entries.values()))

    def contains(self, ctr_block: int) -> bool:
        """Exact residency check without LRU side effects."""
        return ctr_block in self._entries
