"""Storage, power and area overhead model for COSMOS (paper Table 2).

Storage is computed from first principles (entries x bits); the power/area
figures are the paper's reported values from a commercial 28nm SRAM
compiler (Sec. 4.6) and are carried as constants with provenance, since no
PDK is available in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .config import CosmosConfig


@dataclass(frozen=True)
class ComponentOverhead:
    """Overhead of one COSMOS hardware structure."""

    name: str
    detail: str
    bits: int
    area_mm2: float
    power_mw: float

    @property
    def kilobytes(self) -> float:
        """Storage in KB (1 KB = 1024 bytes)."""
        return self.bits / 8 / 1024


#: Paper-reported power/area per component (28nm, 0.9V, 25C, 3GHz).
_PAPER_AREA_POWER = {
    "data_q_table": (0.057, 45.29),
    "ctr_q_table": (0.057, 45.29),
    "cet": (0.116, 92.00),
    "lcr_ctr_cache": (0.030, 24.06),
}

#: Bits per Q-table entry: two 8-bit Q-values for the binary prediction.
Q_TABLE_ENTRY_BITS = 16

#: Bits per CET entry: 64-bit address/state value + 1-bit prediction.
CET_ENTRY_BITS = 65

#: Extra bits per LCR-CTR cache line: 8-bit score + 1-bit prediction flag.
LCR_EXTRA_BITS_PER_LINE = 9


@dataclass
class OverheadReport:
    """Full Table 2 reproduction: per-component rows plus totals."""

    components: List[ComponentOverhead] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        """Total storage bits across components."""
        return sum(component.bits for component in self.components)

    @property
    def total_kilobytes(self) -> float:
        """Total storage in KB."""
        return self.total_bits / 8 / 1024

    @property
    def total_area_mm2(self) -> float:
        """Total area (paper-reported figures)."""
        return sum(component.area_mm2 for component in self.components)

    @property
    def total_power_mw(self) -> float:
        """Total power (paper-reported figures)."""
        return sum(component.power_mw for component in self.components)

    def fraction_of_llc(self, llc_bytes: int = 8 * 1024 * 1024) -> float:
        """Storage overhead relative to an LLC (paper: 1.84% of 8MB)."""
        return (self.total_bits / 8) / llc_bytes

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for a text-table report."""
        rows: List[Dict[str, object]] = []
        for component in self.components:
            rows.append(
                {
                    "component": component.name,
                    "details": component.detail,
                    "kilobytes": round(component.kilobytes, 1),
                    "area_mm2": component.area_mm2,
                    "power_mw": component.power_mw,
                }
            )
        rows.append(
            {
                "component": "total",
                "details": "",
                "kilobytes": round(self.total_kilobytes, 1),
                "area_mm2": round(self.total_area_mm2, 3),
                "power_mw": round(self.total_power_mw, 2),
            }
        )
        return rows


def compute_overhead(config: CosmosConfig = CosmosConfig()) -> OverheadReport:
    """Compute COSMOS's storage overhead for ``config``.

    With the default configuration this reproduces Table 2's arithmetic:
    two 32KB Q-tables, a 65-bit x 8,192-entry CET (the paper rounds its
    66,560 bytes to 66KB), and 9 extra bits per LCR-CTR cache line.  Note
    the paper lists the LCR-CTR line overhead as 17KB, which corresponds to
    ~15.5K tagged lines; for the 128KB/64B LCR-CTR cache itself the
    arithmetic gives 2,048 lines (2.25KB) — we report the computed value and
    flag the difference in EXPERIMENTS.md.
    """
    components: List[ComponentOverhead] = []
    q_bits = config.num_states * Q_TABLE_ENTRY_BITS
    for name, label in (("data_q_table", "Data Q-Table"), ("ctr_q_table", "CTR Q-Table")):
        area, power = _PAPER_AREA_POWER[name]
        components.append(
            ComponentOverhead(
                name=label,
                detail=f"{config.num_states} entries; {Q_TABLE_ENTRY_BITS} bits/entry",
                bits=q_bits,
                area_mm2=area,
                power_mw=power,
            )
        )
    area, power = _PAPER_AREA_POWER["cet"]
    components.append(
        ComponentOverhead(
            name="CET",
            detail=f"{config.cet_entries} entries; {CET_ENTRY_BITS} bits/entry",
            bits=config.cet_entries * CET_ENTRY_BITS,
            area_mm2=area,
            power_mw=power,
        )
    )
    lcr_lines = config.lcr_cache_bytes // 64
    area, power = _PAPER_AREA_POWER["lcr_ctr_cache"]
    components.append(
        ComponentOverhead(
            name="LCR-CTR cache",
            detail=f"extra {LCR_EXTRA_BITS_PER_LINE} bits/cache line x {lcr_lines} lines",
            bits=lcr_lines * LCR_EXTRA_BITS_PER_LINE,
            area_mm2=area,
            power_mw=power,
        )
    )
    return OverheadReport(components=components)
