"""RL-based CTR locality predictor (paper Sec. 4.2, Algorithm 1).

For every CTR access the predictor hashes the counter-line address into a
state, picks good/bad locality epsilon-greedily from the CTR Q-table, and
grades itself against the CTR Evaluation Table: a nearby CET hit means the
line had good locality, a miss means it did not, and a CET eviction is the
final verdict of bad locality.  The resulting tag (1-bit flag + 8-bit
quantised Q-score) drives the LCR-CTR cache replacement policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .cet import CtrEvaluationTable
from .config import CosmosConfig
from .hashing import hash_block
from .rl import Q_MAX, Q_MIN, EpsilonGreedy, QTable

#: Action indices.
BAD_LOCALITY = 0
GOOD_LOCALITY = 1


@dataclass(slots=True)
class LocalityPredictorStats:
    """Prediction/grading counters for the locality predictor."""

    predictions: int = 0
    good_predictions: int = 0
    cet_hits: int = 0
    cet_misses: int = 0
    cet_evictions: int = 0
    rewarded_correct: int = 0
    rewarded_incorrect: int = 0

    @property
    def good_fraction(self) -> float:
        """Fraction of CTR accesses classified good locality (Fig. 13)."""
        if self.predictions == 0:
            return 0.0
        return self.good_predictions / self.predictions

    @property
    def grading_accuracy(self) -> float:
        """Fraction of graded predictions that matched the CET evidence."""
        graded = self.rewarded_correct + self.rewarded_incorrect
        if graded == 0:
            return 0.0
        return self.rewarded_correct / graded


class CtrLocalityPredictor:
    """Classifies each CTR access as good or bad locality (Algorithm 1)."""

    def __init__(self, config: Optional[CosmosConfig] = None) -> None:
        self.config = config if config is not None else CosmosConfig()
        hyper = self.config.hyper
        self.q_table = QTable(self.config.num_states, num_actions=2)
        self.cet = CtrEvaluationTable(
            capacity=self.config.cet_entries,
            radius=self.config.cet_radius_blocks,
        )
        self._selector = EpsilonGreedy(
            hyper.epsilon_c, num_actions=2, seed=self.config.seed * 2 + 1
        )
        self._alpha = hyper.alpha_c
        self._gamma = hyper.gamma_c
        self._rewards = self.config.ctr_rewards
        self._num_states = self.config.num_states
        self.stats = LocalityPredictorStats()

    def state_of(self, ctr_block: int) -> int:
        """Hashed RL state for a counter-line address."""
        return hash_block(ctr_block, self._num_states)

    def predict(self, ctr_block: int, state: Optional[int] = None) -> Tuple[int, int]:
        """Run one decision+training step for a CTR access.

        Follows Algorithm 1: select the action, grade it against the CET
        (nearby hit => good-locality evidence), update the Q-table with the
        head-of-CET bootstrap, insert the new observation, and settle the
        final reward for any evicted entry.

        ``state`` may carry a precomputed ``hash_block(ctr_block)`` (the
        batched kernel hashes a whole epoch's counter-line indices at
        once); the hash is a pure function of the address, so supplying it
        changes nothing but cost.

        Returns:
            Tuple ``(action, score)`` where ``action`` is
            :data:`GOOD_LOCALITY`/:data:`BAD_LOCALITY` and ``score`` is the
            8-bit quantised Q-value used by the LCR-CTR cache.

        The selection and Q-update helpers are inlined (same operations,
        RNG order and counters as the :class:`~repro.core.rl` reference
        implementations) — this runs on every CTR access of a COSMOS
        design, so the call overhead is measurable.
        """
        table = self.q_table._table
        if state is None:
            state = hash_block(ctr_block, self._num_states)
        selector = self._selector
        if selector._random() < selector.epsilon:
            selector.explorations += 1
            action = selector._randrange(2)
        else:
            selector.exploitations += 1
            row = table[state]
            action = 1 if row[1] > row[0] else 0
        stats = self.stats
        stats.predictions += 1
        if action == GOOD_LOCALITY:
            stats.good_predictions += 1

        # Grade against CET evidence (Algorithm 1 lines 9-15).
        rewards = self._rewards
        nearby = self.cet.probe_nearby(ctr_block)
        if nearby is not None:
            stats.cet_hits += 1
            correct = action == GOOD_LOCALITY
            reward = rewards.r_hg if correct else rewards.r_hb
        else:
            stats.cet_misses += 1
            correct = action == BAD_LOCALITY
            reward = rewards.r_mb if correct else rewards.r_mg
        if correct:
            stats.rewarded_correct += 1
        else:
            stats.rewarded_incorrect += 1

        # Bootstrap from the most recent CET entry (lines 16-17).
        alpha = self._alpha
        gamma = self._gamma
        head = self.cet.head
        bootstrap = max(table[head.state]) if head is not None else 0.0
        row = table[state]
        current = row[action]
        updated = current + alpha * (reward + gamma * bootstrap - current)
        if updated > Q_MAX:
            updated = Q_MAX
        elif updated < Q_MIN:
            updated = Q_MIN
        row[action] = updated

        # Record the observation; settle evicted entries (lines 18-23).
        evicted = self.cet.insert(ctr_block, state, action)
        if evicted is not None:
            stats.cet_evictions += 1
            if evicted.action == GOOD_LOCALITY:
                evict_reward = rewards.r_eg
            else:
                evict_reward = rewards.r_eb
            head = self.cet.head
            bootstrap = max(table[head.state]) if head is not None else 0.0
            evicted_row = table[evicted.state]
            current = evicted_row[evicted.action]
            updated = current + alpha * (evict_reward + gamma * bootstrap - current)
            if updated > Q_MAX:
                updated = Q_MAX
            elif updated < Q_MIN:
                updated = Q_MIN
            evicted_row[evicted.action] = updated
        score = int(round(table[state][action]))
        return action, score

    def _head_bootstrap(self) -> float:
        head = self.cet.head
        if head is None:
            return 0.0
        return self.q_table.max_q(head.state)
