"""Introspection utilities for the RL predictors.

Answers the questions a designer asks of a trained agent: how much of the
state space has it actually visited?  How decided is its policy?  What do
the Q-values look like?  Used by the convergence experiments and by the
test-suite to assert the agents learn *something* rather than drifting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .rl import QTable


@dataclass(frozen=True)
class PolicySnapshot:
    """Aggregate view of one Q-table's learned policy."""

    num_states: int
    touched_states: int
    action_counts: Tuple[int, ...]
    mean_abs_q: float
    mean_margin: float
    decision_entropy_bits: float

    @property
    def coverage(self) -> float:
        """Fraction of states whose Q-values moved off initialisation."""
        if self.num_states == 0:
            return 0.0
        return self.touched_states / self.num_states

    @property
    def dominant_action(self) -> int:
        """Most common greedy action across all states."""
        return max(range(len(self.action_counts)), key=self.action_counts.__getitem__)


def snapshot_policy(table: QTable, initial_value: float = 0.0) -> PolicySnapshot:
    """Summarise a Q-table's policy.

    Args:
        table: The Q-table to inspect.
        initial_value: The value untouched entries still hold; states where
            every action sits exactly at this value count as unvisited.
    """
    action_counts = [0] * table.num_actions
    touched = 0
    abs_sum = 0.0
    margin_sum = 0.0
    for state in range(table.num_states):
        values = [table.q(state, action) for action in range(table.num_actions)]
        if any(value != initial_value for value in values):
            touched += 1
        best = max(values)
        second = sorted(values)[-2] if len(values) > 1 else best
        margin_sum += best - second
        abs_sum += sum(abs(value) for value in values) / len(values)
        action_counts[values.index(best)] += 1
    total = table.num_states
    entropy = 0.0
    for count in action_counts:
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return PolicySnapshot(
        num_states=total,
        touched_states=touched,
        action_counts=tuple(action_counts),
        mean_abs_q=abs_sum / total if total else 0.0,
        mean_margin=margin_sum / total if total else 0.0,
        decision_entropy_bits=entropy,
    )


def q_value_histogram(table: QTable, bins: int = 16) -> Dict[str, List[float]]:
    """Histogram of all Q-values, for quick distribution checks.

    Returns:
        Dict with ``edges`` (bin boundaries, len bins+1) and ``counts``.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    values = [
        table.q(state, action)
        for state in range(table.num_states)
        for action in range(table.num_actions)
    ]
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    counts = [0.0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    edges = [low + span * i / bins for i in range(bins + 1)]
    return {"edges": edges, "counts": counts}


def policy_agreement(table_a: QTable, table_b: QTable) -> float:
    """Fraction of states where two tables pick the same greedy action.

    Useful for convergence studies: agreement between checkpoints taken N
    accesses apart approaches 1.0 once the policy stabilises.
    """
    if table_a.num_states != table_b.num_states:
        raise ValueError("tables must share a state space")
    if table_a.num_states == 0:
        return 1.0
    same = sum(
        1
        for state in range(table_a.num_states)
        if table_a.best_action(state) == table_b.best_action(state)
    )
    return same / table_a.num_states
