"""Locality-Centric Replacement (LCR) policy for the LCR-CTR cache.

Implements the paper's Algorithm 2: within a set, the primary eviction
candidates are lines tagged bad-locality (1-bit flag = 0), evicting the one
with the *highest* bad-locality score first (most confidently bad); only
when every line in the set is tagged good does the policy fall back to
evicting the good line with the *lowest* score.  Good-locality lines with
high scores therefore survive the longest.

The literal pseudo-code is the default and performs best when the CET is
sized so that good tags are precise (our Figure 9 sweep).  Two optional
refinements are kept for mis-calibrated regimes (see EXPERIMENTS.md):
``aging`` decays resident good lines' scores under replacement pressure
and demotes them once the score crosses zero (without it a good tag is
permanent — a hazard when the predictor over-tags), and
``bad_selection="lru"`` picks the oldest rather than the most confidently
bad line among the eviction candidates.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..mem.replacement import CacheLine, ReplacementPolicy

#: Locality-flag values stored in the extra cache-line bit.
FLAG_BAD = 0
FLAG_GOOD = 1


class LcrReplacementPolicy(ReplacementPolicy):
    """Algorithm 2's hierarchical locality-driven victim selection.

    Args:
        aging: Score decay applied to each resident good line every
            ``aging_period`` victim selections in its set (0 = no aging,
            the literal Algorithm 2).  With a typical learned score of ~50
            and ``aging=1, aging_period=8``, a dead good line survives
            ~400 evictions in its set before demotion.
        aging_period: Victim selections per decay step.
        demote_threshold: Good lines whose aged score falls below this are
            re-flagged bad (with a neutral score).
        bad_selection: How to pick among bad-locality candidates.
            ``"score"`` (default) follows Algorithm 2 literally and evicts
            the highest-scoring (most confidently bad) line;
            ``"lru"`` evicts the least-recently-used bad line instead,
            preserving recency within the deprioritised class.
    """

    name = "lcr"

    def __init__(
        self,
        aging: int = 0,
        aging_period: int = 8,
        demote_threshold: int = 0,
        bad_selection: str = "score",
    ) -> None:
        if aging < 0:
            raise ValueError("aging must be >= 0")
        if aging_period < 1:
            raise ValueError("aging_period must be >= 1")
        if bad_selection not in ("lru", "score"):
            raise ValueError("bad_selection must be 'lru' or 'score'")
        self.aging = aging
        self.aging_period = aging_period
        self.demote_threshold = demote_threshold
        self.bad_selection = bad_selection
        self._tick = 0
        self._pressure: dict = {}

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    def on_insert(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        self._touch(line)

    def on_hit(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        self._touch(line)

    def victim(self, set_index: int, lines: Iterable[CacheLine]) -> CacheLine:
        # Age resident good lines under replacement pressure; demote the
        # ones whose confidence has decayed away.
        if self.aging:
            pressure = self._pressure.get(set_index, 0) + 1
            if pressure >= self.aging_period:
                pressure = 0
                for line in lines:
                    if line.locality_flag == FLAG_GOOD:
                        line.locality_score -= self.aging
                        if line.locality_score < self.demote_threshold:
                            line.locality_flag = FLAG_BAD
                            line.locality_score = 0
            self._pressure[set_index] = pressure
        evict_candidate: Optional[CacheLine] = None
        best_bad_key: Optional[int] = None
        min_good_score: Optional[int] = None
        for line in lines:
            if line.locality_flag == FLAG_BAD:
                # Bad-locality lines always dominate good ones; among them
                # pick per bad_selection (oldest, or most confidently bad).
                if self.bad_selection == "lru":
                    key = -line.lru_tick
                else:
                    key = line.locality_score
                if best_bad_key is None or key > best_bad_key:
                    evict_candidate = line
                    best_bad_key = key
            elif best_bad_key is None:
                if min_good_score is None or line.locality_score < min_good_score:
                    evict_candidate = line
                    min_good_score = line.locality_score
        assert evict_candidate is not None, "victim() called on an empty set"
        return evict_candidate
