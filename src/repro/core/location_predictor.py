"""RL-based data location predictor (paper Sec. 4.4, Algorithm 3).

On every L1 miss the predictor hashes the data address into a state and
classifies the block as on-chip (L2/LLC will hit) or off-chip (DRAM).  An
off-chip prediction lets COSMOS start the DRAM fetch and the CTR-cache
access immediately after the L1 miss, removing L2/LLC lookup latency from
the critical path.  The actual hit level — observed by the concurrent cache
walk — supplies the reward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .config import CosmosConfig
from .hashing import hash_block
from .rl import Q_MAX, Q_MIN, EpsilonGreedy, QTable

#: Action indices.
ON_CHIP = 0
OFF_CHIP = 1


@dataclass(slots=True)
class LocationPredictorStats:
    """Outcome accounting matching the paper's Figure 12 categories."""

    correct_on_chip: int = 0
    correct_off_chip: int = 0
    wrong_on_chip: int = 0  # predicted on-chip, data was off-chip (R_D_mi)
    wrong_off_chip: int = 0  # predicted off-chip, data was on-chip (R_D_ho)

    @property
    def predictions(self) -> int:
        """Total graded predictions."""
        return (
            self.correct_on_chip
            + self.correct_off_chip
            + self.wrong_on_chip
            + self.wrong_off_chip
        )

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that matched the actual location."""
        total = self.predictions
        if total == 0:
            return 0.0
        return (self.correct_on_chip + self.correct_off_chip) / total

    @property
    def off_chip_predictions(self) -> int:
        """Total off-chip classifications (right or wrong)."""
        return self.correct_off_chip + self.wrong_off_chip

    @property
    def off_chip_misprediction_rate(self) -> float:
        """Of the off-chip predictions, the fraction that were on-chip.

        The paper reports ~12% and notes these still usefully warm the CTR
        cache (Sec. 6.1.2).
        """
        total = self.off_chip_predictions
        if total == 0:
            return 0.0
        return self.wrong_off_chip / total

    def distribution(self) -> dict:
        """Fractional breakdown of the four outcomes (Fig. 12)."""
        total = self.predictions
        if total == 0:
            return {
                "correct_on_chip": 0.0,
                "correct_off_chip": 0.0,
                "wrong_on_chip": 0.0,
                "wrong_off_chip": 0.0,
            }
        return {
            "correct_on_chip": self.correct_on_chip / total,
            "correct_off_chip": self.correct_off_chip / total,
            "wrong_on_chip": self.wrong_on_chip / total,
            "wrong_off_chip": self.wrong_off_chip / total,
        }


class DataLocationPredictor:
    """Predicts whether a block is on-chip or off-chip after an L1 miss."""

    def __init__(self, config: Optional[CosmosConfig] = None) -> None:
        self.config = config if config is not None else CosmosConfig()
        hyper = self.config.hyper
        self.q_table = QTable(self.config.num_states, num_actions=2)
        self._selector = EpsilonGreedy(
            hyper.epsilon_d, num_actions=2, seed=self.config.seed * 2
        )
        self._alpha = hyper.alpha_d
        self._gamma = hyper.gamma_d
        self._rewards = self.config.data_rewards
        self._num_states = self.config.num_states
        self.stats = LocationPredictorStats()

    def state_of(self, block_address: int) -> int:
        """Hashed RL state for a data block address."""
        return hash_block(block_address, self._num_states)

    def predict(self, block_address: int) -> Tuple[int, int]:
        """Classify a block after an L1 miss.

        Returns:
            Tuple ``(action, state)``; the state is handed back to
            :meth:`train` once the actual location is known.
        """
        state = hash_block(block_address, self._num_states)
        action = self._selector.select(self.q_table, state)
        return action, state

    def predict_and_train(
        self,
        block_address: int,
        actually_on_chip: bool,
        state: Optional[int] = None,
    ) -> int:
        """One fused decision+grading step (Algorithm 3, lines 5-20).

        The trace-driven simulator learns the true location from the
        concurrent cache walk before the predictor is consulted, so the
        hot path fuses :meth:`predict` and :meth:`train` — selection,
        grading and the Q-update are inlined here with the exact same
        operations, RNG order and counters as the two-call form (which
        remains the reference implementation).  This runs once per L1
        miss and is the single hottest COSMOS frame.

        ``state`` may carry a precomputed ``hash_block`` value for
        ``block_address`` (the batched kernel hashes a whole epoch's miss
        tail at once); it must equal the scalar hash, which is a pure
        function of the address, so passing it changes nothing but cost.

        Returns:
            The selected action (:data:`ON_CHIP` or :data:`OFF_CHIP`).
        """
        if state is None:
            state = hash_block(block_address, self._num_states)
        row = self.q_table._table[state]
        selector = self._selector
        if selector._random() < selector.epsilon:
            selector.explorations += 1
            action = selector._randrange(2)
        else:
            selector.exploitations += 1
            action = 1 if row[1] > row[0] else 0
        stats = self.stats
        rewards = self._rewards
        if actually_on_chip:
            actual_action = ON_CHIP
            if action == ON_CHIP:
                reward = rewards.r_hi
                stats.correct_on_chip += 1
            else:
                reward = rewards.r_ho
                stats.wrong_off_chip += 1
        else:
            actual_action = OFF_CHIP
            if action == OFF_CHIP:
                reward = rewards.r_mo
                stats.correct_off_chip += 1
            else:
                reward = rewards.r_mi
                stats.wrong_on_chip += 1
        current = row[action]
        updated = current + self._alpha * (
            reward + self._gamma * row[actual_action] - current
        )
        if updated > Q_MAX:
            updated = Q_MAX
        elif updated < Q_MIN:
            updated = Q_MIN
        row[action] = updated
        return action

    def train(self, state: int, action: int, actually_on_chip: bool) -> float:
        """Grade a prediction against the observed location (lines 8-20).

        The bootstrap term follows Algorithm 3 line 19-20: the successor
        action ``a`` is the *actual* location, and the update discounts
        ``Q(S, a)``.

        Returns:
            The reward that was applied.
        """
        rewards = self._rewards
        if actually_on_chip:
            actual_action = ON_CHIP
            if action == ON_CHIP:
                reward = rewards.r_hi
                self.stats.correct_on_chip += 1
            else:
                reward = rewards.r_ho
                self.stats.wrong_off_chip += 1
        else:
            actual_action = OFF_CHIP
            if action == OFF_CHIP:
                reward = rewards.r_mo
                self.stats.correct_off_chip += 1
            else:
                reward = rewards.r_mi
                self.stats.wrong_on_chip += 1
        bootstrap = self.q_table.q(state, actual_action)
        self.q_table.update(state, action, reward, self._alpha, self._gamma, bootstrap)
        return reward
