"""COSMOS controller: wires the two RL predictors together (paper Fig. 6).

The controller owns the data-location predictor, the CTR locality predictor
and their configuration, and exposes the three hooks the secure-memory
designs call:

* :meth:`on_l1_miss` — classify a missing block as on-/off-chip;
* :meth:`train_location` — grade that classification once the concurrent
  cache walk reveals the truth;
* :meth:`classify_ctr` — tag a CTR access with a locality flag + score for
  the LCR-CTR cache.

Either predictor can be disabled to build the paper's COSMOS-DP (data
predictor only) and COSMOS-CP (CTR predictor only) ablations (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .config import CosmosConfig
from .lcr_cache import FLAG_GOOD
from .locality_predictor import GOOD_LOCALITY, CtrLocalityPredictor
from .location_predictor import OFF_CHIP, DataLocationPredictor


@dataclass(frozen=True)
class CosmosVariant:
    """Which COSMOS components are active (paper Table 4)."""

    data_predictor: bool = True
    ctr_predictor: bool = True
    name: str = "cosmos"

    @classmethod
    def full(cls) -> "CosmosVariant":
        """Full RL implementation (both predictors + LCR-CTR cache)."""
        return cls(True, True, "cosmos")

    @classmethod
    def dp_only(cls) -> "CosmosVariant":
        """COSMOS-DP: data-location predictor only."""
        return cls(True, False, "cosmos-dp")

    @classmethod
    def cp_only(cls) -> "CosmosVariant":
        """COSMOS-CP: CTR locality predictor + LCR-CTR cache only."""
        return cls(False, True, "cosmos-cp")


class CosmosController:
    """Both RL predictors behind the interface the designs consume."""

    def __init__(
        self,
        config: Optional[CosmosConfig] = None,
        variant: Optional[CosmosVariant] = None,
    ) -> None:
        self.config = config if config is not None else CosmosConfig()
        self.variant = variant if variant is not None else CosmosVariant.full()
        self.location = DataLocationPredictor(self.config) if self.variant.data_predictor else None
        self.locality = CtrLocalityPredictor(self.config) if self.variant.ctr_predictor else None

    # ------------------------------------------------------------------
    # Data-location side
    # ------------------------------------------------------------------
    def on_l1_miss(self, block_address: int) -> Tuple[bool, Optional[int], Optional[int]]:
        """Classify an L1-missing block.

        Returns:
            ``(predicted_off_chip, action, state)``; action/state are None
            when the data predictor is disabled (prediction falls back to
            on-chip, i.e. the baseline sequential walk).
        """
        if self.location is None:
            return False, None, None
        action, state = self.location.predict(block_address)
        return action == OFF_CHIP, action, state

    def train_location(self, state: Optional[int], action: Optional[int], on_chip: bool) -> None:
        """Grade a pending location prediction against the truth."""
        if self.location is None or state is None or action is None:
            return
        self.location.train(state, action, on_chip)

    # ------------------------------------------------------------------
    # CTR locality side
    # ------------------------------------------------------------------
    def classify_ctr(self, ctr_block: int) -> Tuple[Optional[int], Optional[int]]:
        """Tag a CTR access with (flag, score) for the LCR-CTR cache.

        Returns ``(None, None)`` when the CTR predictor is disabled so the
        CTR cache skips tagging entirely.
        """
        if self.locality is None:
            return None, None
        action, score = self.locality.predict(ctr_block)
        flag = FLAG_GOOD if action == GOOD_LOCALITY else 0
        return flag, score

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def obs_counters(self) -> Dict[str, int]:
        """Cumulative RL counters for windowed time-series sampling.

        Read only at sample time (every N accesses) by
        :class:`~repro.obs.timeseries.SimSampler`; never on the hot path.
        """
        counters: Dict[str, int] = {}
        explorations = selections = 0
        if self.location is not None:
            stats = self.location.stats
            counters["loc_correct"] = stats.correct_on_chip + stats.correct_off_chip
            counters["loc_graded"] = stats.predictions
            selector = self.location._selector
            explorations += selector.explorations
            selections += selector.explorations + selector.exploitations
        if self.locality is not None:
            stats = self.locality.stats
            counters["ctrpred_good"] = stats.good_predictions
            counters["ctrpred_total"] = stats.predictions
            counters["cet_evictions"] = stats.cet_evictions
            selector = self.locality._selector
            explorations += selector.explorations
            selections += selector.explorations + selector.exploitations
        counters["rl_explorations"] = explorations
        counters["rl_selections"] = selections
        return counters

    def obs_probes(self) -> Dict[str, Callable[[], float]]:
        """Per-window gauge probes (sampled, not incremented)."""
        probes: Dict[str, Callable[[], float]] = {}
        if self.location is not None:
            probes["rl_epsilon_d"] = lambda: self.location._selector.epsilon
        if self.locality is not None:
            probes["rl_epsilon_c"] = lambda: self.locality._selector.epsilon
            probes["cet_occupancy"] = lambda: len(self.locality.cet)
        return probes
