"""Hyperparameter and reward tuning for COSMOS (paper Sec. 4.5).

The paper tunes once on a GraphBIG DFS memory footprint captured with
Pintool: 1,000 random hyperparameter combinations are scored by the
LCR-CTR cache hit rate after data-location and CTR-locality prediction
(with rewards fixed at +/-10), then 1,000 reward combinations are scored
under the winning hyperparameters.

We reproduce that flow with our own footprint extraction (DESIGN.md,
substitution 4): one pass through the cache hierarchy records, per access,
the block address, whether L1 missed and whether DRAM was needed; every
candidate configuration then replays that footprint through fresh
predictors and a standalone LCR-CTR cache — no hierarchy re-simulation —
exactly the "fast evaluation" shortcut the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Tuple

from ..mem.access import MemoryAccess
from ..mem.hierarchy import HierarchyConfig, MemoryHierarchy
from .config import (
    CosmosConfig,
    CtrPredictorRewards,
    DataPredictorRewards,
    Hyperparameters,
)
from .cosmos import CosmosController, CosmosVariant
from .lcr_cache import LcrReplacementPolicy
from ..mem.cache import Cache

#: One footprint record: (block_address, l1_missed, needed_dram).
FootprintEvent = Tuple[int, bool, bool]


def extract_footprint(
    trace: Iterable[MemoryAccess],
    hierarchy_config: Optional[HierarchyConfig] = None,
) -> List[FootprintEvent]:
    """Record per-access hierarchy outcomes for tuning replays.

    This is our stand-in for the paper's Pintool capture: one hierarchy
    pass produces a reusable footprint that every tuning candidate replays.
    """
    hierarchy = MemoryHierarchy(hierarchy_config)
    footprint: List[FootprintEvent] = []
    for access in trace:
        result = hierarchy.access(access)
        footprint.append((access.block_address, result.l1_miss, result.needs_memory))
    return footprint


def evaluate_configuration(
    footprint: List[FootprintEvent],
    config: CosmosConfig,
    lcr_cache_bytes: Optional[int] = None,
    blocks_per_ctr: int = 128,
) -> float:
    """Score a COSMOS configuration: LCR-CTR cache hit rate on the footprint.

    Replays the footprint through both predictors and a standalone
    LCR-replacement cache, mirroring the paper's selection metric ("maximum
    LCR-CTR cache hit rate after data location and CTR locality RL
    prediction").
    """
    controller = CosmosController(config, CosmosVariant.full())
    cache_bytes = lcr_cache_bytes if lcr_cache_bytes is not None else config.lcr_cache_bytes
    cache = Cache(cache_bytes, config.lcr_cache_assoc, policy=LcrReplacementPolicy(), name="tune_lcr")
    hits = 0
    accesses = 0
    for block, l1_miss, needs_memory in footprint:
        if not l1_miss:
            continue
        predicted_off, action, state = controller.on_l1_miss(block)
        controller.train_location(state, action, on_chip=not needs_memory)
        if not (predicted_off or needs_memory):
            continue
        ctr_line = block // blocks_per_ctr
        flag, score = controller.classify_ctr(ctr_line)
        accesses += 1
        if cache.access(ctr_line):
            hits += 1
        else:
            cache.fill(ctr_line)
        line = cache.get_line(ctr_line)
        if line is not None and flag is not None:
            line.locality_flag = flag
            if score is not None:
                line.locality_score = score
    if accesses == 0:
        return 0.0
    return hits / accesses


@dataclass
class TuningOutcome:
    """One scored candidate."""

    config: CosmosConfig
    hit_rate: float


@dataclass
class TuningReport:
    """Search results, best first."""

    outcomes: List[TuningOutcome] = field(default_factory=list)

    @property
    def best(self) -> TuningOutcome:
        """Highest-scoring candidate."""
        if not self.outcomes:
            raise ValueError("no tuning outcomes recorded")
        return max(self.outcomes, key=lambda outcome: outcome.hit_rate)


def _random_hyperparameters(rng: random.Random) -> Hyperparameters:
    """Sample from the paper's ranges: alpha/gamma in [1e-3, 1], eps in [0, 1]."""

    def log_uniform() -> float:
        import math

        return 10 ** rng.uniform(-3, 0)

    return Hyperparameters(
        alpha_d=log_uniform(),
        gamma_d=log_uniform(),
        epsilon_d=rng.uniform(0.0, 0.3),
        alpha_c=log_uniform(),
        gamma_c=log_uniform(),
        epsilon_c=rng.uniform(0.0, 0.05),
    )


def _random_rewards(rng: random.Random) -> Tuple[DataPredictorRewards, CtrPredictorRewards]:
    """Sample from the paper's ranges: positives [0,100], negatives [-100,-1]."""
    pos = lambda: rng.uniform(0.0, 100.0)  # noqa: E731 - tiny local sampler
    neg = lambda: rng.uniform(-100.0, -1.0)  # noqa: E731
    data = DataPredictorRewards(r_hi=pos(), r_mo=pos(), r_ho=neg(), r_mi=neg())
    ctr = CtrPredictorRewards(
        r_hg=pos(), r_hb=neg(), r_mg=neg(), r_mb=pos(), r_eg=neg(), r_eb=pos()
    )
    return data, ctr


def tune_hyperparameters(
    footprint: List[FootprintEvent],
    n_combinations: int = 50,
    seed: int = 99,
    base_config: Optional[CosmosConfig] = None,
) -> TuningReport:
    """Stage 1: random-search hyperparameters with fixed +/-10 rewards.

    The paper evaluates 1,000 combinations; ``n_combinations`` defaults
    lower so the bench finishes in minutes — pass 1000 to match exactly.
    """
    base = base_config if base_config is not None else CosmosConfig()
    fixed_data = DataPredictorRewards(r_hi=10, r_mo=10, r_ho=-10, r_mi=-10)
    fixed_ctr = CtrPredictorRewards(
        r_hg=10, r_hb=-10, r_mg=-10, r_mb=10, r_eg=-10, r_eb=10
    )
    rng = random.Random(seed)
    report = TuningReport()
    for index in range(n_combinations):
        hyper = _random_hyperparameters(rng)
        candidate = replace(
            base, hyper=hyper, data_rewards=fixed_data, ctr_rewards=fixed_ctr, seed=seed + index
        )
        hit_rate = evaluate_configuration(footprint, candidate)
        report.outcomes.append(TuningOutcome(candidate, hit_rate))
    return report


def tune_rewards(
    footprint: List[FootprintEvent],
    hyper: Hyperparameters,
    n_combinations: int = 50,
    seed: int = 100,
    base_config: Optional[CosmosConfig] = None,
) -> TuningReport:
    """Stage 2: random-search rewards under the winning hyperparameters."""
    base = base_config if base_config is not None else CosmosConfig()
    rng = random.Random(seed)
    report = TuningReport()
    for index in range(n_combinations):
        data_rewards, ctr_rewards = _random_rewards(rng)
        candidate = replace(
            base,
            hyper=hyper,
            data_rewards=data_rewards,
            ctr_rewards=ctr_rewards,
            seed=seed + index,
        )
        hit_rate = evaluate_configuration(footprint, candidate)
        report.outcomes.append(TuningOutcome(candidate, hit_rate))
    return report


def paper_configuration() -> CosmosConfig:
    """The published Table 1 values (the defaults of :class:`CosmosConfig`)."""
    return CosmosConfig()
