"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``reproduce [EXPERIMENT ...]`` — run the named figure/table
  reproductions (``fig2`` ... ``fig17``, ``tab1``, ``tab2``, ``tab4``,
  ablations), or all of them when none are named.
* ``simulate -w WORKLOAD -d DESIGN [...]`` — one ad-hoc simulation.
* ``obs summarize|dump|plot`` — inspect observability artifacts collected
  by runs with ``REPRO_OBS=1`` (or the ``--obs`` flag).
* ``serve`` / ``submit`` — run the experiment service over the result
  cache, and submit design×workload×seed matrices to it (``docs/serving.md``).
* ``list`` — show available experiments, designs and workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .bench import experiments
from .bench.report import format_table
from .mem.calibrate import available_profiles
from .workloads.graph_algos import GRAPH_WORKLOADS
from .workloads.hammer import HAMMER_WORKLOADS
from .workloads.ml import ML_WORKLOADS
from .workloads.spec import SPEC_WORKLOADS

EXPERIMENTS: Dict[str, Callable] = {
    "fig2": experiments.figure2,
    "fig3": experiments.figure3,
    "fig4": experiments.figure4,
    "fig5": experiments.figure5,
    "fig8": experiments.figure8,
    "fig9": experiments.figure9,
    "fig10": experiments.figure10,
    "fig11": experiments.figure11,
    "fig12": experiments.figure12,
    "fig13": experiments.figure13,
    "fig14": experiments.figure14,
    "fig15": experiments.figure15,
    "fig16": experiments.figure16,
    "fig17": experiments.figure17,
    "tab1": experiments.table1,
    "tab2": experiments.table2,
    "tab4": experiments.table4,
    "ablation-counters": experiments.ablation_counter_schemes,
    "ablation-mtcache": experiments.ablation_mt_cache,
    "ablation-exploration": experiments.ablation_exploration,
    "ablation-hybrid": experiments.ablation_hybrid,
    "ablation-cpu-model": experiments.ablation_cpu_model,
    "ablation-paging": experiments.ablation_paging,
    "generality-db": experiments.generality_db,
    "ablation-synergy": experiments.ablation_synergy,
    "ablation-lcr": experiments.ablation_lcr_policy,
}

DESIGNS = [
    "np", "morphctr", "early", "emcc", "rmcc",
    "cosmos-dp", "cosmos-cp", "cosmos", "cosmos-early",
    "synergy", "cosmos-synergy",
]


def _apply_execution_flags(args: argparse.Namespace) -> None:
    """Propagate --jobs/--no-cache/--serve/--obs into process-wide options."""
    import os

    from .exec import auto_jobs, set_options

    if getattr(args, "jobs", None) is not None:
        set_options(jobs=args.jobs, jobs_source="flag")
    elif "REPRO_JOBS" not in os.environ:
        # No flag, no env: the CLI defaults to every available core
        # (capped; see auto_jobs).  Library callers keep the serial
        # default — only the command line opts into auto-parallelism.
        set_options(jobs=auto_jobs(), jobs_source="auto")
    if getattr(args, "no_cache", False):
        set_options(use_cache=False)
    if getattr(args, "serve", None):
        set_options(serve=args.serve)
    if getattr(args, "sim_path", None):
        set_options(sim_path=args.sim_path)
    if getattr(args, "obs", False):
        from . import obs

        obs.set_enabled(True)


def _cmd_reproduce(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    names = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        rows = EXPERIMENTS[name]()
        if args.export:
            from .bench.export import export_experiment

            paths = export_experiment(rows, args.export, name)
            for path in paths:
                print(f"  wrote {path}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    _apply_execution_flags(args)
    from .bench.runner import run_design_matrix

    matrix = run_design_matrix(
        [args.design], [args.workload], max_accesses=args.accesses
    )
    result = matrix[args.workload][args.design]
    print(format_table([result.summary()]))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.summary import generate_report

    path = generate_report(output=args.output, include=args.include or None)
    print(f"wrote {path}")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("experiments:", ", ".join(EXPERIMENTS))
    print("designs:    ", ", ".join(DESIGNS))
    print(
        "workloads:  ",
        ", ".join(
            list(GRAPH_WORKLOADS) + list(SPEC_WORKLOADS) + list(ML_WORKLOADS)
            + ["mlp"] + list(HAMMER_WORKLOADS)
        ),
    )
    print(
        "            trace:<path>  (external Ramulator/gem5 request trace, "
        ".gz ok)"
    )
    print("dram profiles:", ", ".join(available_profiles()) or "<none>")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="COSMOS reproduction: experiments and ad-hoc simulations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reproduce = sub.add_parser("reproduce", help="reproduce paper figures/tables")
    reproduce.add_argument("experiments", nargs="*", help="e.g. fig10 tab2 (default: all)")
    reproduce.add_argument(
        "--export", metavar="DIR", default=None,
        help="also write each experiment's rows to DIR as CSV + JSON",
    )
    reproduce.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation cells (default: REPRO_JOBS or 1)",
    )
    reproduce.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk simulation-result cache",
    )
    reproduce.add_argument(
        "--obs", action="store_true",
        help="enable observability (spans, time-series, events; like REPRO_OBS=1)",
    )
    reproduce.add_argument(
        "--serve", metavar="HOST[:PORT]", default=None,
        help="run simulation cells through a repro serve instance "
             "instead of a local worker pool (like REPRO_SERVE)",
    )
    reproduce.add_argument(
        "--sim-path", choices=("auto", "arrays", "objects", "batched"),
        default=None,
        help="simulator dispatch path for every cell (like REPRO_SIM_PATH; "
             "metric-identical by contract, recorded in run manifests)",
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    simulate = sub.add_parser("simulate", help="run one design on one workload")
    simulate.add_argument("-d", "--design", choices=DESIGNS, default="cosmos")
    simulate.add_argument("-w", "--workload", default="dfs")
    simulate.add_argument("-n", "--accesses", type=int, default=None)
    simulate.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation cells (default: REPRO_JOBS or 1)",
    )
    simulate.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk simulation-result cache",
    )
    simulate.add_argument(
        "--obs", action="store_true",
        help="enable observability (spans, time-series, events; like REPRO_OBS=1)",
    )
    simulate.add_argument(
        "--serve", metavar="HOST[:PORT]", default=None,
        help="run simulation cells through a repro serve instance "
             "instead of a local worker pool (like REPRO_SERVE)",
    )
    simulate.add_argument(
        "--sim-path", choices=("auto", "arrays", "objects", "batched"),
        default=None,
        help="simulator dispatch path (like REPRO_SIM_PATH; "
             "metric-identical by contract, recorded in run manifests)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    report = sub.add_parser("report", help="run experiments and write REPORT.md")
    report.add_argument("-o", "--output", default="REPORT.md")
    report.add_argument("include", nargs="*",
                        help="substrings selecting sections (default: all)")
    report.set_defaults(func=_cmd_report)

    lister = sub.add_parser("list", help="list experiments, designs, workloads")
    lister.set_defaults(func=_cmd_list)

    from .obs.cli import add_obs_parser

    add_obs_parser(sub)

    from .verify.cli import add_verify_parser

    add_verify_parser(sub)

    from .serve.cli import add_serve_parser

    add_serve_parser(sub)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    from .obs.log import setup_logging

    setup_logging()
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
