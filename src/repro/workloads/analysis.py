"""Trace analysis: the measurements behind the paper's Section 3 claims.

The motivation section rests on properties of the access streams — high
reuse distances, low spatial locality, skewed block popularity.  This
module computes those properties directly from a trace, so the workload
generators can be validated against the regimes they are supposed to model
(and so users can characterise their own traces before simulating them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mem.access import MemoryAccess


@dataclass
class ReuseProfile:
    """Reuse-distance statistics of a block-address stream.

    The reuse distance of an access is the number of *distinct* blocks
    touched since the previous access to the same block (the stack
    distance); an LRU cache of capacity C hits exactly the accesses with
    distance < C.
    """

    distances: List[int] = field(default_factory=list)
    cold_misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses profiled."""
        return len(self.distances) + self.cold_misses

    def hit_rate_at(self, capacity_blocks: int) -> float:
        """LRU hit rate of a cache holding ``capacity_blocks`` lines."""
        if self.accesses == 0:
            return 0.0
        hits = sum(1 for distance in self.distances if distance < capacity_blocks)
        return hits / self.accesses

    def miss_ratio_curve(self, capacities: Sequence[int]) -> List[Tuple[int, float]]:
        """(capacity, miss rate) points — the classic MRC."""
        return [(capacity, 1.0 - self.hit_rate_at(capacity)) for capacity in capacities]

    def median_distance(self) -> Optional[int]:
        """Median finite reuse distance (None when nothing re-referenced)."""
        if not self.distances:
            return None
        ordered = sorted(self.distances)
        return ordered[len(ordered) // 2]


def reuse_profile(
    accesses: Iterable[MemoryAccess],
    granularity_shift: int = 0,
    max_tracked: int = 1 << 20,
) -> ReuseProfile:
    """Compute the stack-distance profile of a trace.

    Args:
        accesses: The trace (any iterable of :class:`MemoryAccess`).
        granularity_shift: Extra right-shift applied to block addresses —
            pass 7 to profile at MorphCtr counter-line granularity
            (128 blocks), 0 for plain 64B lines.
        max_tracked: Safety cap on tracked distinct blocks.

    Uses the O(N log N) tree-over-timestamps algorithm (a Fenwick tree over
    last-access times).
    """
    materialised = list(accesses)
    profile = ReuseProfile()
    last_seen: Dict[int, int] = {}
    # Fenwick tree over access timestamps: a 1 at time i means the block
    # last touched at time i has not been touched since.  Sized up front —
    # Fenwick trees cannot be grown in place.
    size = max(len(materialised), 1)
    tree: List[int] = [0] * (size + 1)

    def _add(index: int, delta: int) -> None:
        index += 1
        while index <= size:
            tree[index] += delta
            index += index & (-index)

    def _prefix(index: int) -> int:
        """Sum of tree[0..index] inclusive."""
        index += 1
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total

    for time, access in enumerate(materialised):
        block = access.block_address >> granularity_shift
        previous = last_seen.get(block)
        if previous is None:
            profile.cold_misses += 1
            if len(last_seen) >= max_tracked:
                last_seen.pop(next(iter(last_seen)))
        else:
            # Active stamps strictly between previous and now = distinct
            # other blocks touched since the previous access.
            distance = _prefix(time - 1) - _prefix(previous)
            profile.distances.append(distance)
            _add(previous, -1)
        _add(time, 1)
        last_seen[block] = time
    return profile


@dataclass(frozen=True)
class TraceCharacterization:
    """Summary statistics the paper's Section 3 reasons about."""

    accesses: int
    distinct_blocks: int
    write_fraction: float
    sequential_fraction: float
    top1pct_block_share: float
    entropy_bits: float

    @property
    def is_irregular(self) -> bool:
        """Heuristic irregularity check used by workload tests.

        A stream counts as irregular when spatial sequentiality is low and
        its block popularity is not totally flat (some skew) — the regime
        the paper's graph workloads live in.
        """
        return self.sequential_fraction < 0.5 and self.distinct_blocks > 64


def characterize(accesses: Sequence[MemoryAccess]) -> TraceCharacterization:
    """Compute the summary characterisation of a trace."""
    counts: Dict[int, int] = {}
    writes = 0
    sequential = 0
    previous_block: Optional[int] = None
    for access in accesses:
        block = access.block_address
        counts[block] = counts.get(block, 0) + 1
        if access.is_write:
            writes += 1
        if previous_block is not None and abs(block - previous_block) <= 1:
            sequential += 1
        previous_block = block
    total = len(accesses)
    if total == 0:
        return TraceCharacterization(0, 0, 0.0, 0.0, 0.0, 0.0)
    popularity = sorted(counts.values(), reverse=True)
    top = max(1, len(popularity) // 100)
    top_share = sum(popularity[:top]) / total
    entropy = 0.0
    for count in popularity:
        p = count / total
        entropy -= p * math.log2(p)
    return TraceCharacterization(
        accesses=total,
        distinct_blocks=len(counts),
        write_fraction=writes / total,
        sequential_fraction=sequential / max(total - 1, 1),
        top1pct_block_share=top_share,
        entropy_bits=entropy,
    )


def working_set_curve(
    accesses: Sequence[MemoryAccess], window: int = 10_000
) -> List[Tuple[int, int]]:
    """Distinct blocks per window of the trace: (window end, distinct)."""
    curve: List[Tuple[int, int]] = []
    seen: set = set()
    for index, access in enumerate(accesses, start=1):
        seen.add(access.block_address)
        if index % window == 0:
            curve.append((index, len(seen)))
            seen = set()
    if seen:
        curve.append((len(accesses), len(seen)))
    return curve


def ctr_line_popularity(
    accesses: Sequence[MemoryAccess], blocks_per_ctr: int = 128
) -> Dict[int, int]:
    """Access count per counter line — the heat map COSMOS's locality
    predictor implicitly learns."""
    counts: Dict[int, int] = {}
    for access in accesses:
        line = access.block_address // blocks_per_ctr
        counts[line] = counts.get(line, 0) + 1
    return counts
