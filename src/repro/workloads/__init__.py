"""Workload generators: graph kernels, SPEC-like, ML inference traces."""

from .graph import (
    CsrGraph,
    GraphMemoryLayout,
    degree_skew,
    github_like_graph,
    preferential_attachment_graph,
)
from .db import DB_WORKLOADS, generate_db_trace
from .analysis import (
    TraceCharacterization,
    characterize,
    ctr_line_popularity,
    reuse_profile,
    working_set_curve,
)
from .graph_algos import GRAPH_WORKLOADS, available_kernels, generate_graph_trace
from .hammer import HAMMER_WORKLOADS, generate_hammer_trace
from .ml import ML_WORKLOADS, Layer, generate_ml_trace, model_layers
from .micro import (
    phased_trace,
    pointer_chase_trace,
    stream_trace,
    strided_trace,
    uniform_random_trace,
    zipf_trace,
)
from .serialization import load_trace, save_trace
from .spec import SPEC_WORKLOADS, generate_spec_trace
from .ingest import TraceFormatError, detect_format, load_external_trace
from .trace import Allocator, Trace, TraceArrays, interleave, multiprogram

__all__ = [
    "Allocator",
    "TraceFormatError",
    "detect_format",
    "load_external_trace",
    "TraceCharacterization",
    "characterize",
    "ctr_line_popularity",
    "load_trace",
    "multiprogram",
    "phased_trace",
    "pointer_chase_trace",
    "reuse_profile",
    "save_trace",
    "stream_trace",
    "strided_trace",
    "uniform_random_trace",
    "working_set_curve",
    "zipf_trace",
    "CsrGraph",
    "DB_WORKLOADS",
    "GRAPH_WORKLOADS",
    "HAMMER_WORKLOADS",
    "GraphMemoryLayout",
    "Layer",
    "ML_WORKLOADS",
    "SPEC_WORKLOADS",
    "Trace",
    "TraceArrays",
    "available_kernels",
    "degree_skew",
    "generate_db_trace",
    "generate_graph_trace",
    "generate_hammer_trace",
    "generate_ml_trace",
    "generate_spec_trace",
    "github_like_graph",
    "interleave",
    "model_layers",
    "preferential_attachment_graph",
]
