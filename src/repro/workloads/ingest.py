"""Ingest external simulator request traces as workloads.

Lets the calibrated DRAM model (and the full secure-memory designs) be
driven by *real* request streams recorded by the reference simulators
instead of this repo's synthetic generators.  Two line formats cover the
common exports:

* **Ramulator** load-store traces (``fmt="ramulator"``): one request per
  line, an address token and an op token in either order —
  ``0x400140 R``, ``LD 4195648``, ``ST 0x400180 1`` (optional trailing
  core id).  Ops: ``R/RD/LD/READ`` read, ``W/WR/ST/P/WRITE`` write.
* **gem5** packet-trace CSV (``fmt="gem5"``): ``tick,cmd,addr[,size]``
  rows, e.g. ``1000,ReadReq,4195648`` — any ``cmd`` containing ``read``
  or ``r`` maps to a read, ``write``/``w`` to a write.  Ticks are
  ignored (the simulator re-times requests); rows are kept in file
  order.

``#`` / ``//`` comments and blank lines are skipped in both formats;
``.gz`` paths are decompressed transparently; ``fmt="auto"`` picks gem5
when the first data line contains a comma.  Addresses are byte
addresses, parsed hex (``0x`` prefix) or decimal, and land directly in
the packed :class:`~repro.workloads.trace.TraceArrays` layout — no
per-access objects are materialised.

Registered as the ``trace:<path>`` workload prefix in
:mod:`repro.bench.runner`, so any figure or bench entry point accepts
``trace:/path/to/stream.trace`` wherever a workload name is expected.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..mem.access import AccessType
from .trace import ADDRESS_DTYPE, CORE_DTYPE, TYPE_DTYPE, Trace, TraceArrays

PathLike = Union[str, Path]

#: Op tokens accepted by the Ramulator line format (upper-cased).
_READ_OPS = frozenset({"R", "RD", "LD", "READ", "L", "LOAD"})
_WRITE_OPS = frozenset({"W", "WR", "ST", "WRITE", "S", "STORE", "P", "PIM"})


class TraceFormatError(ValueError):
    """A trace file line could not be parsed under the declared format."""


def _open_text(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return path.open("r", encoding="utf-8", errors="replace")


def _data_lines(handle: IO[str]) -> Iterator[Tuple[int, str]]:
    """Yield (1-based line number, stripped text) for non-comment lines."""
    for number, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        yield number, line


def _parse_int(token: str) -> Optional[int]:
    try:
        return int(token, 16) if token.lower().startswith("0x") else int(token)
    except ValueError:
        return None


def _parse_ramulator(
    path: Path, number: int, line: str
) -> Tuple[int, int, int]:
    """One Ramulator line -> (address, type, core)."""
    tokens = line.split()
    address: Optional[int] = None
    access_type: Optional[int] = None
    core = 0
    extras: List[int] = []
    for token in tokens:
        upper = token.upper()
        if upper in _READ_OPS:
            access_type = int(AccessType.READ)
        elif upper in _WRITE_OPS:
            access_type = int(AccessType.WRITE)
        else:
            value = _parse_int(token)
            if value is None:
                raise TraceFormatError(
                    f"{path}:{number}: unrecognised token {token!r} in "
                    f"ramulator trace line {line!r}"
                )
            if address is None:
                address = value
            else:
                extras.append(value)
    if address is None:
        raise TraceFormatError(
            f"{path}:{number}: no address in ramulator trace line {line!r}"
        )
    if access_type is None:
        access_type = int(AccessType.READ)
    if extras:
        core = extras[0]
    return address, access_type, core


def _parse_gem5(path: Path, number: int, line: str) -> Tuple[int, int, int]:
    """One gem5 CSV row (tick,cmd,addr[,size]) -> (address, type, core)."""
    cells = [cell.strip() for cell in line.split(",")]
    if len(cells) < 3:
        raise TraceFormatError(
            f"{path}:{number}: expected tick,cmd,addr[,size], got {line!r}"
        )
    command = cells[1].lower()
    if "read" in command or command == "r":
        access_type = int(AccessType.READ)
    elif "write" in command or command == "w":
        access_type = int(AccessType.WRITE)
    else:
        raise TraceFormatError(
            f"{path}:{number}: unrecognised gem5 command {cells[1]!r}"
        )
    address = _parse_int(cells[2])
    if address is None:
        raise TraceFormatError(
            f"{path}:{number}: bad gem5 address {cells[2]!r}"
        )
    return address, access_type, 0


def detect_format(path: PathLike) -> str:
    """``"gem5"`` if the first data line contains a comma, else ``"ramulator"``."""
    path = Path(path)
    with _open_text(path) as handle:
        for _, line in _data_lines(handle):
            return "gem5" if "," in line else "ramulator"
    return "ramulator"


def load_external_trace(
    path: PathLike,
    fmt: str = "auto",
    name: Optional[str] = None,
    max_accesses: Optional[int] = None,
) -> Trace:
    """Parse an external request trace into an array-backed :class:`Trace`.

    ``fmt`` is ``"ramulator"``, ``"gem5"`` or ``"auto"`` (sniff the first
    data line).  ``max_accesses`` stops parsing early — useful for
    multi-GB traces.  Raises :class:`TraceFormatError` (with file and
    line number) on the first malformed line, and ``ValueError`` if the
    file holds no requests at all.
    """
    path = Path(path)
    if fmt == "auto":
        fmt = detect_format(path)
    if fmt not in ("ramulator", "gem5"):
        raise ValueError(
            f"unknown trace format {fmt!r}; expected ramulator, gem5 or auto"
        )
    parse = _parse_ramulator if fmt == "ramulator" else _parse_gem5
    addresses: List[int] = []
    types: List[int] = []
    cores: List[int] = []
    with _open_text(path) as handle:
        for number, line in _data_lines(handle):
            address, access_type, core = parse(path, number, line)
            addresses.append(address)
            types.append(access_type)
            cores.append(core)
            if max_accesses is not None and len(addresses) >= max_accesses:
                break
    if not addresses:
        raise ValueError(f"{path}: no requests found ({fmt} format)")
    arrays = TraceArrays(
        np.asarray(addresses, dtype=ADDRESS_DTYPE),
        np.asarray(types, dtype=TYPE_DTYPE),
        np.asarray(cores, dtype=CORE_DTYPE),
    )
    trace_name = name if name is not None else f"trace:{path.name}"
    return Trace.from_arrays(
        trace_name,
        arrays,
        metadata={
            "source": str(path),
            "format": fmt,
            "requests": len(arrays),
        },
    )
