"""RowHammer aggressor workload generators.

Synthetic access patterns that hammer DRAM rows *through the memory
system*: all the generator emits is ordinary reads and writes, and the
disturbance pressure arises from how those accesses map onto banks and
rows.  In an open-page memory a row is only re-activated when its bank's
row buffer holds a different row, so every pattern here alternates
between distinct rows of the *same* bank — the defining structure of a
hammer kernel, and the reason a naive "loop over one address" does
nothing.

Four patterns (:data:`HAMMER_WORKLOADS`):

* ``hammer-single`` — one aggressor row adjacent to the victim,
  alternated with a far "dummy" row in the same bank to defeat the row
  buffer (classic single-sided hammer).
* ``hammer-double`` — the two rows sandwiching the victim, alternated
  (double-sided: maximum pressure per activation pair).
* ``hammer-many`` — four aggressor rows around the victim (many-sided,
  TRR-evasion style: pressure spreads over several victims).
* ``hammer-mixed`` — a double-sided aggressor interleaved 3:1 with a
  benign Zipf tenant in a disjoint address range, modelling a co-located
  attacker in a multi-tenant machine.

Traces are TraceArrays-native (one vectorised tile of a per-pattern
cycle) and deterministic in ``(workload, seed, geometry)``.  A seeded
prologue writes the victim row's blocks and the aggressor blocks so the
victim carries real tenant data for the verification harness to corrupt
(:mod:`repro.verify.hammer` plans flips from the same geometry).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import numpy as np

from ..mem.access import AccessType
from ..mem.dram import DramModel, DramTimings
from .micro import zipf_trace
from .trace import (
    ADDRESS_DTYPE,
    CORE_DTYPE,
    HEAP_BASE,
    TYPE_DTYPE,
    Trace,
    TraceArrays,
)

#: Registered aggressor patterns.
HAMMER_WORKLOADS = ("hammer-single", "hammer-double", "hammer-many", "hammer-mixed")

_READ = int(AccessType.READ)
_WRITE = int(AccessType.WRITE)

#: Benign-tenant footprint (blocks) and block offset for ``hammer-mixed``:
#: disjoint from the aggressor rows so the tenant never adds pressure.
_TENANT_BLOCKS = 2048
_TENANT_OFFSET = 2048


def _aggressor_rows(workload: str, victim_row: int) -> List[int]:
    if workload == "hammer-single":
        # Lone adjacent aggressor + same-bank dummy far enough (>= 4 rows)
        # that the dummy's own neighbours never include the victim.
        return [victim_row + 1, victim_row + 5]
    if workload in ("hammer-double", "hammer-mixed"):
        return [victim_row - 1, victim_row + 1]
    if workload == "hammer-many":
        return [victim_row - 3, victim_row - 1, victim_row + 1, victim_row + 3]
    raise ValueError(f"unknown hammer workload {workload!r}")


def generate_hammer_trace(
    workload: str,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
    seed: int = 0,
    start: int = HEAP_BASE,
    victim_row: int = 8,
    row_blocks: int = 4,
    num_banks: int = 2,
    num_channels: int = 1,
) -> Trace:
    """Generate one aggressor trace.

    Args:
        workload: One of :data:`HAMMER_WORKLOADS`.
        num_cores: Core-id space; the aggressor issues from core 1 (or 0
            when single-core), the benign tenant of ``hammer-mixed``
            from core 0.
        max_accesses: Total trace length (default 3072).
        seed: Perturbs the victim row within the data region and seeds
            the benign tenant; same seed ⇒ byte-identical trace.
        start: Base byte address of the trace (use 0 to align with the
            hammer model geometry of :mod:`repro.verify.hammer`).
        victim_row / row_blocks / num_banks / num_channels: Geometry of
            the targeted DRAM — must match the model the defender
            (planner) assumes for the pressure accounting to line up.
    """
    if workload not in HAMMER_WORKLOADS:
        raise ValueError(
            f"unknown hammer workload {workload!r}; expected one of {HAMMER_WORKLOADS}"
        )
    rng = random.Random(f"cosmos-hammer-workload:{workload}:{seed}")
    geometry = DramModel(
        timings=DramTimings(refresh_interval=0),
        num_banks=num_banks,
        num_channels=num_channels,
        row_size_bytes=row_blocks * 64,
    )
    # Seeded jitter keeps rows >= 4 so every pattern's lowest aggressor
    # (victim - 3) stays in range and a below-victim dummy would too.
    victim = victim_row + 4 * rng.randrange(4)
    total = 3072 if max_accesses is None else max_accesses
    hammer_core = 1 if num_cores > 1 else 0

    rows = _aggressor_rows(workload, victim)
    row_addr = {
        row: start + geometry.encode(0, 0, row, 0) * 64 for row in rows
    }

    # Prologue: the benign victim's data (every block of the victim row)
    # plus one block per aggressor row, all written once.
    prologue_addrs: List[int] = [
        start + geometry.encode(0, 0, victim, column) * 64
        for column in range(row_blocks)
    ] + [row_addr[row] for row in rows]
    prologue_n = len(prologue_addrs)
    body_n = max(total - prologue_n, 0)

    if workload == "hammer-mixed":
        addresses = np.empty(total, dtype=ADDRESS_DTYPE)
        types = np.empty(total, dtype=TYPE_DTYPE)
        cores = np.empty(total, dtype=CORE_DTYPE)
        addresses[:prologue_n] = prologue_addrs
        types[:prologue_n] = _WRITE
        cores[:prologue_n] = hammer_core

        slots = np.arange(body_n)
        benign_mask = slots % 4 == 3
        benign_n = int(benign_mask.sum())
        hammer_n = body_n - benign_n
        cycle = np.array([row_addr[rows[0]], row_addr[rows[1]]], dtype=ADDRESS_DTYPE)
        hammer_addrs = np.tile(cycle, -(-hammer_n // 2) or 1)[:hammer_n]

        tenant = zipf_trace(
            n=max(benign_n, 1),
            footprint_blocks=_TENANT_BLOCKS,
            start=start + _TENANT_OFFSET * 64,
            seed=rng.randrange(1 << 30),
        ).arrays()

        body_addresses = np.empty(body_n, dtype=ADDRESS_DTYPE)
        body_types = np.full(body_n, _READ, dtype=TYPE_DTYPE)
        body_cores = np.full(body_n, hammer_core, dtype=CORE_DTYPE)
        body_addresses[~benign_mask] = hammer_addrs
        body_addresses[benign_mask] = tenant.addresses[:benign_n]
        body_types[benign_mask] = tenant.types[:benign_n]
        body_cores[benign_mask] = 0
        addresses[prologue_n:] = body_addresses
        types[prologue_n:] = body_types
        cores[prologue_n:] = body_cores
    else:
        cycle = np.array([row_addr[row] for row in rows], dtype=ADDRESS_DTYPE)
        body = np.tile(cycle, -(-body_n // len(cycle)) or 1)[:body_n]
        addresses = np.concatenate(
            [np.array(prologue_addrs, dtype=ADDRESS_DTYPE), body]
        )
        types = np.concatenate(
            [
                np.full(prologue_n, _WRITE, dtype=TYPE_DTYPE),
                np.full(body_n, _READ, dtype=TYPE_DTYPE),
            ]
        )
        cores = np.full(total, hammer_core, dtype=CORE_DTYPE)

    arrays = TraceArrays(addresses, types, cores)
    metadata: Dict[str, object] = {
        "kind": workload,
        "victim_row": victim,
        "aggressor_rows": rows,
        "row_blocks": row_blocks,
        "num_banks": num_banks,
        "num_channels": num_channels,
        "seed": seed,
    }
    return Trace.from_arrays(workload, arrays, metadata=metadata)
