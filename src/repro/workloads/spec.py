"""Synthetic SPEC-like irregular workloads: mcf, canneal, omnetpp.

The paper adds three SPEC benchmarks "known for their low locality and
irregular memory access patterns" (Sec. 5).  Real SPEC inputs are not
redistributable, so we synthesise traces that exercise the same behaviour
(DESIGN.md, substitution 3):

* **mcf** (network simplex): pointer chasing through a large arc/node
  graph with data-dependent jumps;
* **canneal** (simulated annealing placement): random element pair swaps
  across a large netlist array — reads, then writes, to far-apart elements;
* **omnetpp** (discrete event simulation): a hot event-queue heap plus
  cold per-message payloads scattered over a large pool.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Iterator, List, Tuple

from ..mem.access import AccessType, MemoryAccess
from .trace import Allocator, Trace, interleave

AddressEvent = Tuple[int, bool]

#: SPEC workload names in paper order.
SPEC_WORKLOADS = ("mcf", "canneal", "omnetpp")


def _mcf_events(
    allocator: Allocator, rng: random.Random, nodes: int, core: int
) -> Iterator[AddressEvent]:
    node_bytes = 64  # one node record per cache line, as in mcf's arcs
    base = allocator.alloc(f"mcf:nodes[{core}]", nodes * node_bytes)
    potential_base = allocator.alloc(f"mcf:potential[{core}]", nodes * 8)
    # Build a random successor permutation: classic pointer chasing.
    successors = list(range(nodes))
    rng.shuffle(successors)
    current = rng.randrange(nodes)
    while True:
        yield base + current * node_bytes, False  # load node record
        yield potential_base + current * 8, False  # read node potential
        if rng.random() < 0.15:
            yield potential_base + current * 8, True  # price update
        current = successors[current]
        if rng.random() < 0.02:
            current = rng.randrange(nodes)  # pivot to a new subtree


def _canneal_events(
    allocator: Allocator, rng: random.Random, elements: int, core: int
) -> Iterator[AddressEvent]:
    element_bytes = 32
    base = allocator.alloc(f"canneal:netlist[{core}]", elements * element_bytes)
    cost_base = allocator.alloc(f"canneal:cost[{core}]", 4096 * 8)
    step = 0
    while True:
        a = rng.randrange(elements)
        b = rng.randrange(elements)
        # Evaluate swap cost: read both elements and their neighbors.
        for element in (a, b):
            yield base + element * element_bytes, False
            neighbor = (element + rng.randrange(1, 16)) % elements
            yield base + neighbor * element_bytes, False
        yield cost_base + (step % 4096) * 8, True  # record delta cost
        if rng.random() < 0.5:  # accept swap: write both elements
            yield base + a * element_bytes, True
            yield base + b * element_bytes, True
        step += 1


def _omnetpp_events(
    allocator: Allocator, rng: random.Random, messages: int, core: int
) -> Iterator[AddressEvent]:
    message_bytes = 128
    pool_base = allocator.alloc(f"omnetpp:pool[{core}]", messages * message_bytes)
    heap_base = allocator.alloc(f"omnetpp:heap[{core}]", 16384 * 16)
    event_queue: List[Tuple[float, int]] = []
    clock = 0.0
    next_message = 0
    for _ in range(64):  # seed the queue
        heapq.heappush(event_queue, (rng.random(), next_message % messages))
        next_message += 1
    while True:
        clock, message = heapq.heappop(event_queue)
        # Heap pop touches the top of the heap array (hot).
        for slot in range(min(4, len(event_queue) + 1)):
            yield heap_base + slot * 16, False
        yield heap_base + 0, True
        # Message handling touches its (cold) payload.
        for offset in range(0, message_bytes, 64):
            yield pool_base + message * message_bytes + offset, False
        yield pool_base + message * message_bytes, True
        # Schedule 1-2 follow-up events at random future times.
        for _ in range(rng.randrange(1, 3)):
            target = rng.randrange(messages)
            heapq.heappush(event_queue, (clock + rng.random(), target))
            depth = max(1, len(event_queue).bit_length())
            for level in range(depth):
                yield heap_base + ((len(event_queue) >> level) % 16384) * 16, True


_GENERATORS = {
    "mcf": (_mcf_events, 400_000),  # (generator, default structure size)
    "canneal": (_canneal_events, 600_000),
    "omnetpp": (_omnetpp_events, 150_000),
}


def generate_spec_trace(
    benchmark: str,
    num_cores: int = 4,
    max_accesses: int = 200_000,
    seed: int = 11,
    working_set_elements: int = None,
) -> Trace:
    """Synthesise a SPEC-like irregular trace.

    Args:
        benchmark: ``mcf``, ``canneal`` or ``omnetpp``.
        num_cores: Thread count (per-thread working sets, as the paper runs
            4-thread rate-style copies).
        max_accesses: Total trace length.
        seed: RNG seed.
        working_set_elements: Override the per-core structure size.
    """
    try:
        generator, default_elements = _GENERATORS[benchmark]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise ValueError(f"unknown SPEC benchmark {benchmark!r}; expected one of: {known}")
    elements = working_set_elements if working_set_elements is not None else default_elements
    allocator = Allocator()
    per_core = max(1, max_accesses // num_cores)
    streams: List[List[MemoryAccess]] = []
    for core in range(num_cores):
        rng = random.Random(seed * 100 + core)
        events = generator(allocator, rng, elements, core)
        stream = [
            MemoryAccess(address, AccessType.WRITE if is_write else AccessType.READ, core)
            for address, is_write in itertools.islice(events, per_core)
        ]
        streams.append(stream)
    return Trace(
        name=benchmark,
        accesses=interleave(streams),
        metadata={
            "benchmark": benchmark,
            "num_cores": num_cores,
            "elements_per_core": elements,
            "seed": seed,
            "footprint_bytes": allocator.footprint_bytes,
        },
    )
