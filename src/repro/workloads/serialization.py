"""Trace serialisation: compact on-disk storage for generated traces.

Traces are stored as compressed numpy archives (``.npz``) holding three
parallel arrays (addresses, access types, cores) plus a JSON metadata
blob.  A 250k-access trace compresses to a few hundred KB and reloads in
well under a second — which is why the benchmark runner caches every
generated trace this way.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from .trace import Trace, TraceArrays

PathLike = Union[str, Path]

#: Format tag written into every archive (bump on layout changes).
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: PathLike) -> Path:
    """Write ``trace`` to ``path`` as a compressed npz archive.

    The archive is written to a temporary file and moved into place with
    :func:`os.replace`, so concurrent readers (e.g. parallel ``repro.exec``
    workers racing to cache the same trace) never observe a torn file.

    Returns the actual path written (a ``.npz`` suffix is added when
    missing, matching numpy's behaviour).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = Path(str(path) + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    # Object-backed traces are packed once here; array-backed traces are
    # written as-is with no per-access object ever materialised.
    arrays = trace.arrays()
    header = json.dumps(
        {"version": FORMAT_VERSION, "name": trace.name, "metadata": trace.metadata},
        default=str,
    )
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem + ".", suffix=".tmp.npz"
    )
    os.close(handle)
    try:
        np.savez_compressed(
            tmp_name,
            addresses=arrays.addresses,
            types=arrays.types,
            cores=arrays.cores,
            header=np.frombuffer(header.encode(), dtype=np.uint8),
        )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_trace(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace`.

    The returned trace is array-backed: the archive's parallel arrays
    flow straight into the simulator's fast path, and per-access objects
    are only materialised if a caller iterates ``trace.accesses``.

    Raises:
        ValueError: If the archive misses arrays, has a newer format, or
            is corrupt — including *truncated* files (a crash or full disk
            mid-:func:`os.replace` cannot produce one, but a copied or
            manually-edited cache can).  Every corruption mode surfaces as
            ``ValueError`` so callers can treat the file as a cache miss.
    """
    try:
        data = np.load(Path(path))
        for key in ("addresses", "types", "cores"):
            if key not in data:
                raise ValueError(f"trace archive {path} is missing array {key!r}")
        name = "trace"
        metadata = {}
        if "header" in data:
            header = json.loads(bytes(data["header"]).decode())
            if header.get("version", 0) > FORMAT_VERSION:
                raise ValueError(
                    f"trace archive {path} has format {header['version']}, "
                    f"this library reads up to {FORMAT_VERSION}"
                )
            name = header.get("name", name)
            metadata = header.get("metadata", {})
        # Member arrays decompress lazily on access: build the trace inside
        # the try so a truncated member read is caught like any other
        # corruption (zipfile raises BadZipFile/EOFError mid-extraction).
        arrays = TraceArrays(data["addresses"], data["types"], data["cores"])
        return Trace.from_arrays(name, arrays, metadata=metadata)
    except ValueError:
        raise
    except (zipfile.BadZipFile, EOFError, KeyError, OSError) as exc:
        raise ValueError(
            f"trace archive {path} is corrupt or truncated: {exc}"
        ) from exc
