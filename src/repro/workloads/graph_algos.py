"""GraphBIG-style kernels emitting memory address traces.

Each kernel *actually executes* over the CSR graph — BFS really traverses,
PageRank really iterates — while recording the addresses it touches:
``row_ptr``/``col_idx`` reads, per-vertex property reads/writes, and the
kernel's own working structures (stacks, queues).  Multi-threaded runs
partition work across cores and interleave the per-core streams, matching
the paper's 4-thread GraphBIG setup.

Supported kernels (paper Sec. 3.1): DFS, BFS, GC, PR, TC, CC, SP, DC.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Iterator, List, Tuple

from ..mem.access import AccessType, MemoryAccess
from .graph import CsrGraph, GraphMemoryLayout, github_like_graph
from .trace import Trace, interleave

#: Emitted record: (byte address, is_write).
AddressEvent = Tuple[int, bool]


def _edge_events(
    layout: GraphMemoryLayout, vertex: int
) -> Iterator[AddressEvent]:
    """Events for reading a vertex's adjacency metadata (row_ptr pair)."""
    yield layout.row_ptr_address(vertex), False
    yield layout.row_ptr_address(vertex + 1), False


def _neighbor_events(
    layout: GraphMemoryLayout, graph: CsrGraph, vertex: int
) -> Iterator[Tuple[int, AddressEvent]]:
    """Pairs of (neighbor vertex, col_idx read event) for ``vertex``."""
    start = graph.row_ptr[vertex]
    end = graph.row_ptr[vertex + 1]
    for edge_index in range(start, end):
        yield graph.col_idx[edge_index], (layout.col_idx_address(edge_index), False)


# ----------------------------------------------------------------------
# Kernels.  Each takes (graph, layout, vertices, rng, scratch_base) and
# yields AddressEvents indefinitely (drivers slice them to length).
# ----------------------------------------------------------------------
def bfs_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Breadth-first search from per-partition roots."""
    visited = [False] * graph.num_vertices
    pending = list(vertices)
    rng.shuffle(pending)
    queue_pos = 0
    while pending:
        root = pending.pop()
        if visited[root]:
            continue
        frontier = [root]
        visited[root] = True
        while frontier:
            next_frontier: List[int] = []
            for vertex in frontier:
                yield scratch_base + (queue_pos % 4096) * 8, False  # queue pop
                queue_pos += 1
                yield from _edge_events(layout, vertex)
                for neighbor, event in _neighbor_events(layout, graph, vertex):
                    yield event
                    yield layout.property_address("visited", neighbor), False
                    if not visited[neighbor]:
                        visited[neighbor] = True
                        yield layout.property_address("visited", neighbor), True
                        yield scratch_base + (queue_pos % 4096) * 8, True  # push
                        next_frontier.append(neighbor)
            frontier = next_frontier


def dfs_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Depth-first search with an explicit stack."""
    visited = [False] * graph.num_vertices
    roots = list(vertices)
    rng.shuffle(roots)
    for root in roots:
        if visited[root]:
            continue
        stack = [root]
        depth = 0
        while stack:
            vertex = stack.pop()
            yield scratch_base + (len(stack) % 4096) * 8, False  # stack pop
            if visited[vertex]:
                continue
            visited[vertex] = True
            yield layout.property_address("visited", vertex), True
            yield from _edge_events(layout, vertex)
            for neighbor, event in _neighbor_events(layout, graph, vertex):
                yield event
                yield layout.property_address("visited", neighbor), False
                if not visited[neighbor]:
                    stack.append(neighbor)
                    yield scratch_base + (len(stack) % 4096) * 8, True  # push
            depth += 1


def pagerank_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Power-iteration PageRank over the partition's vertices."""
    del scratch_base  # PageRank keeps no per-thread scratch worth modelling
    while True:  # repeat iterations until the driver has enough accesses
        for vertex in vertices:
            yield from _edge_events(layout, vertex)
            for neighbor, event in _neighbor_events(layout, graph, vertex):
                yield event
                yield layout.property_address("rank", neighbor), False
                yield layout.property_address("out_degree", neighbor), False
            yield layout.property_address("rank_next", vertex), True
        for vertex in vertices:
            yield layout.property_address("rank_next", vertex), False
            yield layout.property_address("rank", vertex), True


def coloring_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Greedy graph coloring in random vertex order."""
    order = list(vertices)
    rng.shuffle(order)
    colors: Dict[int, int] = {}
    for vertex in order:
        yield from _edge_events(layout, vertex)
        used = set()
        for neighbor, event in _neighbor_events(layout, graph, vertex):
            yield event
            yield layout.property_address("color", neighbor), False
            if neighbor in colors:
                used.add(colors[neighbor])
        color = 0
        while color in used:
            color += 1
            yield scratch_base + (color % 512) * 8, False  # palette probe
        colors[vertex] = color
        yield layout.property_address("color", vertex), True


def triangle_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Triangle counting via binary search in neighbor lists."""
    for vertex in vertices:
        yield from _edge_events(layout, vertex)
        neighbors: List[int] = []
        for neighbor, event in _neighbor_events(layout, graph, vertex):
            yield event
            neighbors.append(neighbor)
        for neighbor in neighbors:
            if neighbor <= vertex:
                continue
            yield from _edge_events(layout, neighbor)
            start = graph.row_ptr[neighbor]
            end = graph.row_ptr[neighbor + 1]
            sorted_adj = graph.col_idx[start:end]
            for candidate in neighbors:
                if candidate <= neighbor:
                    continue
                # Binary search over neighbor's adjacency: log probes.
                lo, hi = 0, len(sorted_adj)
                while lo < hi:
                    mid = (lo + hi) // 2
                    yield layout.col_idx_address(start + mid), False
                    if sorted_adj[mid] < candidate:
                        lo = mid + 1
                    else:
                        hi = mid
        yield layout.property_address("triangles", vertex), True


def components_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Connected components via label propagation."""
    labels = {vertex: vertex for vertex in vertices}
    while True:
        changed = False
        for vertex in vertices:
            yield layout.property_address("label", vertex), False
            best = labels.get(vertex, vertex)
            yield from _edge_events(layout, vertex)
            for neighbor, event in _neighbor_events(layout, graph, vertex):
                yield event
                yield layout.property_address("label", neighbor), False
                best = min(best, labels.get(neighbor, neighbor))
            if best != labels.get(vertex, vertex):
                labels[vertex] = best
                changed = True
                yield layout.property_address("label", vertex), True
        if not changed:
            # Converged: restart with fresh labels so the stream continues
            # (the driver slices to the requested length).
            labels = {vertex: vertex for vertex in vertices}


def shortest_path_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Single-source shortest path (Bellman-Ford-style relaxations)."""
    infinity = float("inf")
    distances: Dict[int, float] = {}
    roots = list(vertices)
    rng.shuffle(roots)
    for root in roots:
        distances[root] = 0.0
        worklist = [root]
        position = 0
        while worklist:
            vertex = worklist.pop()
            yield scratch_base + (position % 4096) * 8, False
            position += 1
            base_distance = distances.get(vertex, infinity)
            yield layout.property_address("dist", vertex), False
            yield from _edge_events(layout, vertex)
            for neighbor, event in _neighbor_events(layout, graph, vertex):
                yield event
                yield layout.property_address("dist", neighbor), False
                candidate = base_distance + 1.0
                if candidate < distances.get(neighbor, infinity):
                    distances[neighbor] = candidate
                    yield layout.property_address("dist", neighbor), True
                    worklist.append(neighbor)
                    yield scratch_base + (position % 4096) * 8, True


def degree_centrality_kernel(
    graph: CsrGraph,
    layout: GraphMemoryLayout,
    vertices: List[int],
    rng: random.Random,
    scratch_base: int,
) -> Iterator[AddressEvent]:
    """Degree centrality: one row_ptr pair read + one write per vertex."""
    del scratch_base
    while True:
        for vertex in vertices:
            yield from _edge_events(layout, vertex)
            # Touch the adjacency list too (GraphBIG's DC walks edges to
            # count in+out degree).
            for _, event in _neighbor_events(layout, graph, vertex):
                yield event
            yield layout.property_address("centrality", vertex), True


_KERNELS: Dict[str, Callable[..., Iterator[AddressEvent]]] = {
    "bfs": bfs_kernel,
    "dfs": dfs_kernel,
    "pr": pagerank_kernel,
    "gc": coloring_kernel,
    "tc": triangle_kernel,
    "cc": components_kernel,
    "sp": shortest_path_kernel,
    "dc": degree_centrality_kernel,
}

#: Kernel names in the order the paper's figures list them.
GRAPH_WORKLOADS = ("dfs", "bfs", "gc", "pr", "tc", "cc", "sp", "dc")


def available_kernels() -> List[str]:
    """Names accepted by :func:`generate_graph_trace`."""
    return sorted(_KERNELS)


def _endless(
    make_events: Callable[[int], Iterator[AddressEvent]]
) -> Iterator[AddressEvent]:
    """Restart a finite kernel (fresh state, new seed) to fill any length."""
    round_index = 0
    while True:
        yield from make_events(round_index)
        round_index += 1


def generate_graph_trace(
    kernel: str,
    graph: "CsrGraph" = None,
    num_cores: int = 4,
    max_accesses: int = 200_000,
    seed: int = 7,
    graph_scale: float = 0.25,
    property_bytes: int = 64,
) -> Trace:
    """Run ``kernel`` over ``graph`` and return the interleaved trace.

    Args:
        kernel: One of :data:`GRAPH_WORKLOADS`.
        graph: The graph to traverse; a GitHub-like synthetic graph at
            ``graph_scale`` is generated when omitted.
        num_cores: Thread/core count; vertices are partitioned round-robin.
        max_accesses: Total trace length across all cores.
        seed: Seed for per-core RNGs.
        graph_scale: Scale passed to :func:`github_like_graph` when no
            graph is supplied.
        property_bytes: Size of each per-vertex property record.  GraphBIG
            stores fat vertex-property objects, so the default is one cache
            line per vertex per property — this is what gives graph
            workloads their large, irregular footprints.
    """
    try:
        kernel_fn = _KERNELS[kernel]
    except KeyError:
        known = ", ".join(available_kernels())
        raise ValueError(f"unknown graph kernel {kernel!r}; expected one of: {known}")
    if graph is None:
        graph = github_like_graph(scale=graph_scale, seed=seed)
    layout = GraphMemoryLayout(graph, property_bytes=property_bytes)
    # Pre-allocate every property array the kernels use so all cores share
    # the same addresses (threads share the data structures).
    for prop in ("visited", "rank", "rank_next", "out_degree", "color",
                 "triangles", "label", "dist", "centrality"):
        layout.property_array(prop)
    per_core = max(1, max_accesses // num_cores)
    streams: List[List[MemoryAccess]] = []
    for core in range(num_cores):
        vertices = list(range(core, graph.num_vertices, num_cores))
        scratch = layout.allocator.alloc(f"scratch[{core}]", 64 * 1024)

        def make_events(round_index: int, core=core, vertices=vertices, scratch=scratch):
            rng = random.Random(seed * 1000 + core + round_index * 77)
            return kernel_fn(graph, layout, vertices, rng, scratch)

        events = _endless(make_events)
        stream = [
            MemoryAccess(address, AccessType.WRITE if is_write else AccessType.READ, core)
            for address, is_write in itertools.islice(events, per_core)
        ]
        streams.append(stream)
    accesses = interleave(streams)
    return Trace(
        name=kernel,
        accesses=accesses,
        metadata={
            "kernel": kernel,
            "num_cores": num_cores,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "seed": seed,
            "footprint_bytes": layout.footprint_bytes,
        },
    )
