"""Synthetic graphs and their in-memory layout.

The paper evaluates GraphBIG kernels on the GitHub developer social
network (musae-github: ~37.7K vertices, ~289K edges, heavy-tailed degree
distribution).  That dataset is not redistributable here, so we synthesise
scale-free graphs with a seeded preferential-attachment process
(DESIGN.md, substitution 2) — the irregularity the paper exploits comes
from the degree skew, which preferential attachment reproduces.

:class:`GraphMemoryLayout` models how a CSR graph and its per-vertex
property arrays sit in memory, so the kernel implementations in
``graph_algos`` can emit realistic physical address streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from .trace import Allocator


@dataclass
class CsrGraph:
    """Compressed-sparse-row directed graph.

    Attributes:
        row_ptr: ``num_vertices + 1`` offsets into ``col_idx``.
        col_idx: Flattened adjacency lists.
    """

    row_ptr: List[int]
    col_idx: List[int]

    @property
    def num_vertices(self) -> int:
        """Vertex count."""
        return len(self.row_ptr) - 1

    @property
    def num_edges(self) -> int:
        """Directed edge count."""
        return len(self.col_idx)

    def neighbors(self, vertex: int) -> Sequence[int]:
        """Adjacency list of ``vertex``."""
        return self.col_idx[self.row_ptr[vertex] : self.row_ptr[vertex + 1]]

    def degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        return self.row_ptr[vertex + 1] - self.row_ptr[vertex]


def preferential_attachment_graph(
    num_vertices: int,
    edges_per_vertex: int = 8,
    seed: int = 42,
    shuffle_labels: bool = True,
) -> CsrGraph:
    """Seeded scale-free graph via preferential attachment.

    Every new vertex attaches to ``edges_per_vertex`` existing vertices
    chosen proportionally to degree (Barabási-Albert style); edges are
    symmetrised so every kernel sees both directions.  The resulting degree
    distribution is heavy-tailed like the GitHub social network's.

    With ``shuffle_labels`` (the default) vertex ids are randomly permuted
    afterwards.  Preferential attachment otherwise concentrates hubs at low
    ids; real datasets assign ids arbitrarily, so hubs scatter across the
    vertex arrays — which is what makes some counter granules (128
    consecutive vertices) hot and others cold, the locality structure
    COSMOS exploits.
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    rng = random.Random(seed)
    adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
    # Repeated-endpoint pool implements degree-proportional sampling.
    endpoint_pool: List[int] = [0]
    adjacency_sets: List[set] = [set() for _ in range(num_vertices)]
    for vertex in range(1, num_vertices):
        attach = min(edges_per_vertex, vertex)
        targets: set = set()
        while len(targets) < attach:
            candidate = endpoint_pool[rng.randrange(len(endpoint_pool))]
            if candidate != vertex:
                targets.add(candidate)
            elif len(targets) + 1 >= vertex:  # avoid livelock on tiny graphs
                break
        for target in targets:
            if target in adjacency_sets[vertex]:
                continue
            adjacency[vertex].append(target)
            adjacency[target].append(vertex)
            adjacency_sets[vertex].add(target)
            adjacency_sets[target].add(vertex)
            endpoint_pool.append(vertex)
            endpoint_pool.append(target)
    if shuffle_labels:
        relabel = list(range(num_vertices))
        rng.shuffle(relabel)
        shuffled: List[List[int]] = [[] for _ in range(num_vertices)]
        for vertex in range(num_vertices):
            shuffled[relabel[vertex]] = [relabel[neighbor] for neighbor in adjacency[vertex]]
        adjacency = shuffled
    row_ptr = [0]
    col_idx: List[int] = []
    for vertex in range(num_vertices):
        col_idx.extend(adjacency[vertex])
        row_ptr.append(len(col_idx))
    return CsrGraph(row_ptr=row_ptr, col_idx=col_idx)


def github_like_graph(scale: float = 1.0, seed: int = 42) -> CsrGraph:
    """A graph shaped like musae-github, optionally scaled down.

    ``scale=1.0`` gives ~37.7K vertices with ~8 average degree (matching
    the dataset's 289K undirected edges); smaller scales keep the degree
    skew while shrinking the footprint for fast experiments.
    """
    num_vertices = max(64, int(37_700 * scale))
    return preferential_attachment_graph(num_vertices, edges_per_vertex=8, seed=seed)


@dataclass
class GraphMemoryLayout:
    """Physical placement of a graph plus per-vertex property arrays.

    Two adjacency layouts are modelled:

    * ``scatter_edges=False`` — compact CSR: ``col_idx`` is a dense array
      of 4-byte vertex ids, giving edge scans strong spatial locality;
    * ``scatter_edges=True`` (default) — GraphBIG-style edge *objects*:
      each edge is an ``edge_record_bytes`` record placed at a seeded
      random slot in a large edge pool, the way pointer-based adjacency
      containers land on the heap.  This is what gives graph workloads the
      irregular, low-spatial-locality DRAM behaviour the paper reports.

    Vertex properties are fat 64B objects by default (one line per vertex
    per property), matching GraphBIG's property containers.
    """

    graph: CsrGraph
    allocator: Allocator = field(default_factory=Allocator)
    offset_bytes: int = 8
    index_bytes: int = 4
    property_bytes: int = 64
    scatter_edges: bool = True
    edge_record_bytes: int = 32
    seed: int = 1337

    def __post_init__(self) -> None:
        vertices = self.graph.num_vertices
        edges = self.graph.num_edges
        self.row_ptr_base = self.allocator.alloc("row_ptr", (vertices + 1) * self.offset_bytes)
        if self.scatter_edges:
            self.col_idx_base = self.allocator.alloc(
                "edge_pool", max(edges, 1) * self.edge_record_bytes
            )
            rng = random.Random(self.seed)
            self._edge_slot = list(range(max(edges, 1)))
            rng.shuffle(self._edge_slot)
        else:
            self.col_idx_base = self.allocator.alloc("col_idx", max(edges, 1) * self.index_bytes)
            self._edge_slot = None
        self._property_bases: dict = {}

    def property_array(self, name: str) -> int:
        """Base address of a per-vertex property array, allocating lazily."""
        base = self._property_bases.get(name)
        if base is None:
            base = self.allocator.alloc(
                f"prop:{name}", self.graph.num_vertices * self.property_bytes
            )
            self._property_bases[name] = base
        return base

    # ------------------------------------------------------------------
    # Address computation
    # ------------------------------------------------------------------
    def row_ptr_address(self, vertex: int) -> int:
        """Address of ``row_ptr[vertex]``."""
        return self.row_ptr_base + vertex * self.offset_bytes

    def col_idx_address(self, edge_index: int) -> int:
        """Address of the record for edge ``edge_index``.

        Compact CSR places records densely; the scattered layout looks the
        edge up in its randomised pool slot.
        """
        if self._edge_slot is not None:
            return self.col_idx_base + self._edge_slot[edge_index] * self.edge_record_bytes
        return self.col_idx_base + edge_index * self.index_bytes

    def property_address(self, name: str, vertex: int) -> int:
        """Address of ``property[vertex]`` for the named array."""
        return self.property_array(name) + vertex * self.property_bytes

    @property
    def footprint_bytes(self) -> int:
        """Bytes allocated for the graph and its properties so far."""
        return self.allocator.footprint_bytes


def degree_skew(graph: CsrGraph, top_fraction: float = 0.01) -> float:
    """Fraction of edges owned by the top ``top_fraction`` of vertices.

    A quick heavy-tail check used by tests: scale-free graphs concentrate
    a large share of edges on few hubs.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    degrees = sorted(
        (graph.degree(vertex) for vertex in range(graph.num_vertices)), reverse=True
    )
    top_count = max(1, int(len(degrees) * top_fraction))
    top_edges = sum(degrees[:top_count])
    total = sum(degrees)
    if total == 0:
        return 0.0
    return top_edges / total
