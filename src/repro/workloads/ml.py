"""Machine-learning inference workloads with regular access patterns.

The paper uses a 3-layer MLP for the generalisation study (Fig. 8) and six
models — AlexNet, ResNet, VGG, BERT, Transformer, DLRM — for the
regular-pattern evaluation (Fig. 17, Sec. 6.3).  We model inference as a
layer-by-layer streaming trace (DESIGN.md): each layer reads its input
activations and its weight slice sequentially and writes its output
activations; batches repeat over the *same* activation buffers, which is
exactly what makes re-encryption the bottleneck the paper reports (>50% of
accesses hitting counters that are repeatedly incremented).

Model geometries follow the papers' shapes (224x224x3 vision inputs,
sequence length 128 with 768-d embeddings, DLRM with 13 dense features and
categorical embeddings) but are dimensionally scaled so traces stay
runnable; the access *pattern* (streaming + buffer reuse) is what matters.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..mem.access import AccessType, MemoryAccess
from .trace import Allocator, Trace, interleave

AddressEvent = Tuple[int, bool]

#: ML workload names used by Fig. 17 (paper order); Fig. 8 adds ``mlp``.
ML_WORKLOADS = ("alexnet", "resnet", "vgg", "bert", "transformer", "dlrm")


@dataclass(frozen=True)
class Layer:
    """One inference layer: bytes moved per forward pass."""

    name: str
    weight_bytes: int
    input_bytes: int
    output_bytes: int


def _scaled(value: int, scale: float) -> int:
    return max(64, int(value * scale))


def model_layers(model: str, scale: float = 0.02) -> List[Layer]:
    """Layer list for ``model`` at footprint ``scale``.

    The unscaled byte counts approximate the real models (fp32); ``scale``
    shrinks them uniformly so a trace of a few hundred thousand accesses
    covers several batches.
    """
    mb = 1024 * 1024
    kb = 1024
    shapes: Dict[str, List[Tuple[str, int, int, int]]] = {
        "mlp": [
            ("fc1", 4 * mb, 256 * kb, 256 * kb),
            ("fc2", 4 * mb, 256 * kb, 256 * kb),
            ("fc3", 1 * mb, 256 * kb, 64 * kb),
        ],
        "alexnet": [
            ("conv1", 140 * kb, 600 * kb, 1130 * kb),
            ("conv2", 1200 * kb, 280 * kb, 730 * kb),
            ("conv3", 3540 * kb, 180 * kb, 250 * kb),
            ("conv4", 2650 * kb, 250 * kb, 250 * kb),
            ("conv5", 1770 * kb, 250 * kb, 170 * kb),
            ("fc6", 148 * mb, 36 * kb, 16 * kb),
            ("fc7", 64 * mb, 16 * kb, 16 * kb),
            ("fc8", 16 * mb, 16 * kb, 4 * kb),
        ],
        "resnet": [
            ("conv1", 37 * kb, 600 * kb, 3 * mb),
            ("layer1", 850 * kb, 3 * mb, 3 * mb),
            ("layer2", 4 * mb, 3 * mb, 1536 * kb),
            ("layer3", 28 * mb, 1536 * kb, 768 * kb),
            ("layer4", 56 * mb, 768 * kb, 384 * kb),
            ("fc", 8 * mb, 8 * kb, 4 * kb),
        ],
        "vgg": [
            ("block1", 150 * kb, 600 * kb, 12 * mb),
            ("block2", 2200 * kb, 3 * mb, 6 * mb),
            ("block3", 16 * mb, 1536 * kb, 3 * mb),
            ("block4", 32 * mb, 768 * kb, 1536 * kb),
            ("block5", 37 * mb, 384 * kb, 384 * kb),
            ("fc6", 392 * mb, 100 * kb, 16 * kb),
            ("fc7", 64 * mb, 16 * kb, 16 * kb),
            ("fc8", 16 * mb, 16 * kb, 4 * kb),
        ],
        "bert": [
            (f"encoder{index}", 28 * mb, 384 * kb, 384 * kb) for index in range(12)
        ],
        "transformer": [
            (f"layer{index}", 12 * mb, 384 * kb, 384 * kb) for index in range(6)
        ],
        "dlrm": [
            ("bottom_mlp1", 2 * mb, 4 * kb, 64 * kb),
            ("bottom_mlp2", 4 * mb, 64 * kb, 64 * kb),
            ("interaction", 64 * kb, 192 * kb, 64 * kb),
            ("top_mlp1", 16 * mb, 64 * kb, 128 * kb),
            ("top_mlp2", 8 * mb, 128 * kb, 4 * kb),
        ],
    }
    try:
        layer_shapes = shapes[model]
    except KeyError:
        known = ", ".join(sorted(shapes))
        raise ValueError(f"unknown ML model {model!r}; expected one of: {known}")
    return [
        Layer(name, _scaled(w, scale), _scaled(i, scale), _scaled(o, scale))
        for name, w, i, o in layer_shapes
    ]


def _region(allocator: Allocator, name: str, size: int) -> int:
    """Idempotent allocation: threads share one copy of every structure."""
    existing = allocator.regions.get(name)
    if existing is not None:
        return existing[0]
    return allocator.alloc(name, size)


def _stream(base: int, size: int, is_write: bool, start: int, step: int) -> Iterator[AddressEvent]:
    """Streaming access over [base, base+size), 64B stride.

    ``start``/``step`` partition the stream across cores (each core touches
    every ``step``-th line), modelling channel/neuron parallelism.
    """
    for offset in range(start * 64, size, step * 64):
        yield base + offset, is_write


#: Default footprint scale per model, chosen so each model sits in the
#: regime the paper describes for regular workloads (Sec. 6.3): high cache
#: hit rates for most models, with the larger models (VGG) streaming and
#: exposing the re-encryption path.  See EXPERIMENTS.md (Figure 17).
DEFAULT_MODEL_SCALE = {
    "mlp": 0.05,
    "alexnet": 0.002,
    "resnet": 0.002,
    "vgg": 0.002,
    "bert": 0.001,
    "transformer": 0.002,
    "dlrm": 0.005,
}

#: Rows in DLRM's (scaled) categorical embedding tables.
DLRM_EMBEDDING_ROWS = 4096

#: Embedding lookups per DLRM sample (26 categorical features).
DLRM_LOOKUPS = 26


def _inference_events(
    model: str,
    allocator: Allocator,
    rng: random.Random,
    core: int,
    num_cores: int,
    scale: float,
) -> Iterator[AddressEvent]:
    layers = model_layers(model, scale)
    weight_bases = {
        layer.name: _region(allocator, f"{model}:w:{layer.name}", layer.weight_bytes)
        for layer in layers
    }
    # Activations ping-pong between two shared buffers, reused every batch.
    act_bytes = max(
        max(layer.input_bytes for layer in layers),
        max(layer.output_bytes for layer in layers),
    )
    act_a = _region(allocator, f"{model}:act_a", act_bytes)
    act_b = _region(allocator, f"{model}:act_b", act_bytes)
    embed_base = None
    if model == "dlrm":
        embed_base = _region(allocator, f"{model}:embeddings", DLRM_EMBEDDING_ROWS * 256)
    while True:  # one iteration = one inference batch
        source, target = act_a, act_b
        if embed_base is not None:
            for _ in range(DLRM_LOOKUPS):
                row = rng.randrange(DLRM_EMBEDDING_ROWS)
                yield embed_base + row * 256, False
        for layer in layers:
            yield from _stream(source, layer.input_bytes, False, core, num_cores)
            yield from _stream(weight_bases[layer.name], layer.weight_bytes, False, core, num_cores)
            yield from _stream(target, layer.output_bytes, True, core, num_cores)
            source, target = target, source


def generate_ml_trace(
    model: str,
    num_cores: int = 4,
    max_accesses: int = 200_000,
    seed: int = 23,
    scale: Optional[float] = None,
) -> Trace:
    """Synthesise an inference trace for ``model``.

    Args:
        model: ``mlp`` or one of :data:`ML_WORKLOADS`.
        num_cores: Threads parallelising channels/neurons (paper: 4).
        max_accesses: Total trace length.
        seed: RNG seed (affects DLRM's embedding lookups).
        scale: Uniform footprint scale applied to the model's real sizes;
            defaults to the model's entry in :data:`DEFAULT_MODEL_SCALE`.
    """
    if scale is None:
        scale = DEFAULT_MODEL_SCALE.get(model, 0.002)
    allocator = Allocator()
    per_core = max(1, max_accesses // num_cores)
    streams: List[List[MemoryAccess]] = []
    for core in range(num_cores):
        rng = random.Random(seed * 17 + core)
        events = _inference_events(model, allocator, rng, core, num_cores, scale)
        stream = [
            MemoryAccess(address, AccessType.WRITE if is_write else AccessType.READ, core)
            for address, is_write in itertools.islice(events, per_core)
        ]
        streams.append(stream)
    return Trace(
        name=model,
        accesses=interleave(streams),
        metadata={
            "model": model,
            "num_cores": num_cores,
            "scale": scale,
            "seed": seed,
            "footprint_bytes": allocator.footprint_bytes,
        },
    )
