"""Database-style workloads: beyond the paper's three suites.

The paper evaluates graph, SPEC and ML workloads; databases are the other
large class of irregular, secure-memory-relevant applications (cloud
tenants running analytics on confidential data).  Three classic kernels
are modelled, each really executing its algorithm while emitting the
addresses it touches:

* :func:`hash_join_trace` — build a hash table over one relation, probe
  with the other (random bucket probes + sequential scans);
* :func:`btree_lookup_trace` — point lookups descending a B+-tree
  (pointer-chasing with a hot top and cold leaves);
* :func:`ycsb_trace` — a YCSB-like key-value mix: Zipf-popular records,
  configurable get/put ratio.

These drive the ``generality`` experiment: COSMOS was tuned on graph DFS;
does its benefit carry to a domain it never saw?
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Tuple

from ..mem.access import AccessType, MemoryAccess
from .trace import Allocator, Trace, interleave

AddressEvent = Tuple[int, bool]

#: Workload names exposed to the harness.
DB_WORKLOADS = ("hashjoin", "btree", "ycsb")


def _hash_join_events(
    allocator: Allocator, rng: random.Random, rows: int, core: int
) -> Iterator[AddressEvent]:
    """GRACE-style in-memory hash join (build + probe phases)."""
    tuple_bytes = 32
    bucket_bytes = 16
    num_buckets = max(64, rows // 4)
    build_base = allocator.alloc(f"hj:build[{core}]", rows * tuple_bytes)
    probe_base = allocator.alloc(f"hj:probe[{core}]", 2 * rows * tuple_bytes)
    table_base = allocator.alloc(f"hj:table[{core}]", num_buckets * bucket_bytes)
    while True:
        # Build: scan the build relation, insert into random buckets.
        for row in range(rows):
            yield build_base + row * tuple_bytes, False
            bucket = rng.randrange(num_buckets)
            yield table_base + bucket * bucket_bytes, False  # read chain head
            yield table_base + bucket * bucket_bytes, True  # link the tuple
        # Probe: scan the probe relation, chase the matching bucket.
        for row in range(2 * rows):
            yield probe_base + row * tuple_bytes, False
            bucket = rng.randrange(num_buckets)
            yield table_base + bucket * bucket_bytes, False
            # Matching tuples are revisited in the build relation.
            if rng.random() < 0.5:
                match = rng.randrange(rows)
                yield build_base + match * tuple_bytes, False


def _btree_events(
    allocator: Allocator, rng: random.Random, keys: int, core: int
) -> Iterator[AddressEvent]:
    """Point lookups over a B+-tree of 256-byte nodes (fanout 16)."""
    node_bytes = 256
    fanout = 16
    # Level sizes from the leaves up.
    levels: List[int] = []
    count = max(1, keys // fanout)
    while count > 1:
        levels.append(count)
        count = max(1, count // fanout)
    levels.append(1)
    levels.reverse()  # root first
    bases = [
        allocator.alloc(f"bt:level{depth}[{core}]", size * node_bytes)
        for depth, size in enumerate(levels)
    ]
    value_base = allocator.alloc(f"bt:values[{core}]", keys * 64)
    update_ratio = 0.1
    while True:
        key = rng.randrange(keys)
        # Descend: the node index narrows by fanout each level.
        for depth, size in enumerate(levels):
            node = key * size // keys
            base = bases[depth]
            yield base + node * node_bytes, False
            yield base + node * node_bytes + 64, False  # second cache line
        write = rng.random() < update_ratio
        yield value_base + key * 64, write


def _ycsb_events(
    allocator: Allocator, rng: random.Random, records: int, core: int
) -> Iterator[AddressEvent]:
    """YCSB-B-like key-value mix: Zipf keys, 95% reads / 5% updates."""
    record_bytes = 128
    index_bytes = 16
    store_base = allocator.alloc(f"kv:store[{core}]", records * record_bytes)
    index_base = allocator.alloc(f"kv:index[{core}]", records * index_bytes)
    # Zipf-ish sampling via two-level pick: hot set + uniform tail.
    hot = max(16, records // 100)
    while True:
        if rng.random() < 0.8:
            key = rng.randrange(hot)  # 80% of ops on the hot 1%
        else:
            key = rng.randrange(records)
        yield index_base + key * index_bytes, False
        write = rng.random() < 0.05
        for offset in range(0, record_bytes, 64):
            yield store_base + key * record_bytes + offset, write


_GENERATORS = {
    "hashjoin": (_hash_join_events, 40_000),
    "btree": (_btree_events, 200_000),
    "ycsb": (_ycsb_events, 150_000),
}


def generate_db_trace(
    workload: str,
    num_cores: int = 4,
    max_accesses: int = 200_000,
    seed: int = 31,
    working_set: int = None,
) -> Trace:
    """Synthesise a database-kernel trace.

    Args:
        workload: ``hashjoin``, ``btree`` or ``ycsb``.
        num_cores: Worker threads, each with a private partition.
        max_accesses: Total trace length.
        seed: RNG seed.
        working_set: Rows / keys / records per core (defaults per kernel).
    """
    try:
        generator, default_elements = _GENERATORS[workload]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise ValueError(f"unknown DB workload {workload!r}; expected one of: {known}")
    elements = working_set if working_set is not None else default_elements
    allocator = Allocator()
    per_core = max(1, max_accesses // num_cores)
    streams: List[List[MemoryAccess]] = []
    for core in range(num_cores):
        rng = random.Random(seed * 13 + core)
        events = generator(allocator, rng, elements, core)
        streams.append(
            [
                MemoryAccess(address, AccessType.WRITE if w else AccessType.READ, core)
                for address, w in itertools.islice(events, per_core)
            ]
        )
    return Trace(
        name=workload,
        accesses=interleave(streams),
        metadata={
            "workload": workload,
            "num_cores": num_cores,
            "elements_per_core": elements,
            "seed": seed,
            "footprint_bytes": allocator.footprint_bytes,
        },
    )
