"""Synthetic micro-workloads with controlled access statistics.

Where the graph/SPEC/ML generators model real applications, these produce
streams with *one* tunable property each — the controlled inputs used to
unit-test predictors, replacement policies and the secure-memory engine:

* :func:`stream_trace` — pure sequential streaming (best case for
  prefetchers, worst case for caches beyond one pass);
* :func:`strided_trace` — constant-stride accesses;
* :func:`uniform_random_trace` — no locality at all;
* :func:`zipf_trace` — skewed popularity (a knob over "how hot are the
  hubs"), the distribution scale-free graph accesses approximate;
* :func:`pointer_chase_trace` — dependent random chains (mcf-like);
* :func:`phased_trace` — concatenated phases with different behaviours,
  the stress test for online-learning adaptivity (paper Sec. 3.4).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from ..mem.access import AccessType, MemoryAccess
from .trace import HEAP_BASE, Trace


def _accesses(addresses, write_fraction: float, rng: random.Random, core: int = 0):
    result = []
    for address in addresses:
        kind = AccessType.WRITE if rng.random() < write_fraction else AccessType.READ
        result.append(MemoryAccess(address, kind, core))
    return result


def stream_trace(
    n: int = 10_000,
    start: int = HEAP_BASE,
    write_fraction: float = 0.0,
    seed: int = 0,
) -> Trace:
    """Sequential 64B-stride stream of ``n`` accesses."""
    rng = random.Random(seed)
    addresses = (start + 64 * index for index in range(n))
    return Trace("stream", _accesses(addresses, write_fraction, rng),
                 metadata={"kind": "stream", "n": n})


def strided_trace(
    n: int = 10_000,
    stride_bytes: int = 256,
    start: int = HEAP_BASE,
    write_fraction: float = 0.0,
    seed: int = 0,
) -> Trace:
    """Constant-stride stream (``stride_bytes`` apart)."""
    if stride_bytes == 0:
        raise ValueError("stride_bytes must be nonzero")
    rng = random.Random(seed)
    addresses = (start + stride_bytes * index for index in range(n))
    return Trace("strided", _accesses(addresses, write_fraction, rng),
                 metadata={"kind": "strided", "stride": stride_bytes})


def uniform_random_trace(
    n: int = 10_000,
    footprint_blocks: int = 1 << 16,
    start: int = HEAP_BASE,
    write_fraction: float = 0.3,
    seed: int = 0,
) -> Trace:
    """Uniformly random block accesses over a fixed footprint."""
    if footprint_blocks <= 0:
        raise ValueError("footprint_blocks must be positive")
    rng = random.Random(seed)
    addresses = (start + 64 * rng.randrange(footprint_blocks) for _ in range(n))
    return Trace("uniform", _accesses(addresses, write_fraction, rng),
                 metadata={"kind": "uniform", "footprint_blocks": footprint_blocks})


def zipf_trace(
    n: int = 10_000,
    footprint_blocks: int = 1 << 16,
    alpha: float = 1.0,
    start: int = HEAP_BASE,
    write_fraction: float = 0.3,
    seed: int = 0,
    shuffle_ranks: bool = True,
) -> Trace:
    """Zipf-distributed block popularity with exponent ``alpha``.

    ``alpha=0`` degenerates to uniform; larger values concentrate accesses
    on fewer blocks.  Ranks are scattered over the footprint by default so
    popularity does not correlate with address (as in shuffled graphs).
    """
    if footprint_blocks <= 0:
        raise ValueError("footprint_blocks must be positive")
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    rng = random.Random(seed)
    # Inverse-CDF sampling over a truncated harmonic distribution.
    weights = [1.0 / ((rank + 1) ** alpha) for rank in range(min(footprint_blocks, 4096))]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running / total)
    rank_to_block: Dict[int, int] = {}
    block_pool = list(range(footprint_blocks))
    if shuffle_ranks:
        rng.shuffle(block_pool)

    def sample_block() -> int:
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        rank = lo
        block = rank_to_block.get(rank)
        if block is None:
            block = block_pool[rank % footprint_blocks]
            rank_to_block[rank] = block
        return block

    addresses = (start + 64 * sample_block() for _ in range(n))
    return Trace("zipf", _accesses(addresses, write_fraction, rng),
                 metadata={"kind": "zipf", "alpha": alpha})


def pointer_chase_trace(
    n: int = 10_000,
    chain_blocks: int = 1 << 14,
    start: int = HEAP_BASE,
    seed: int = 0,
) -> Trace:
    """Dependent loads along a random permutation cycle (mcf-like)."""
    if chain_blocks <= 1:
        raise ValueError("chain_blocks must be > 1")
    rng = random.Random(seed)
    successors = list(range(chain_blocks))
    rng.shuffle(successors)
    addresses: List[int] = []
    current = 0
    for _ in range(n):
        addresses.append(start + 64 * current)
        current = successors[current]
    return Trace("pointer_chase", _accesses(addresses, 0.0, rng),
                 metadata={"kind": "pointer_chase", "chain_blocks": chain_blocks})


def phased_trace(
    phases: Optional[Sequence[Callable[..., Trace]]] = None,
    accesses_per_phase: int = 5_000,
    seed: int = 0,
) -> Trace:
    """Concatenate heterogeneous phases into one trace.

    The default alternates streaming -> uniform-random -> zipf, the kind
    of phase change the paper argues RL adapts to and static heuristics do
    not (Sec. 3.4).
    """
    if phases is None:
        phases = (stream_trace, uniform_random_trace, zipf_trace)
    accesses: List[MemoryAccess] = []
    names: List[str] = []
    for index, factory in enumerate(phases):
        phase = factory(n=accesses_per_phase, seed=seed + index)
        accesses.extend(phase.accesses)
        names.append(phase.name)
    return Trace("phased", accesses, metadata={"kind": "phased", "phases": names})
