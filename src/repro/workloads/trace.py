"""Trace container and helpers shared by every workload generator.

A trace is a sequence of :class:`~repro.mem.access.MemoryAccess` records.
Workloads build per-core streams; :func:`interleave` merges them round-robin
to model the paper's 4-thread execution feeding one shared LLC and memory
controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence

from ..mem.access import AccessType, MemoryAccess

#: Base of the workload heap; structures are laid out above this address.
HEAP_BASE = 0x1000_0000

#: Alignment for each allocated structure (a 4KB page).
ALLOC_ALIGN = 4096


class Allocator:
    """Bump allocator assigning page-aligned base addresses to structures."""

    def __init__(self, base: int = HEAP_BASE) -> None:
        self._next = base
        self.regions: Dict[str, tuple] = {}

    def alloc(self, name: str, size_bytes: int) -> int:
        """Reserve ``size_bytes`` for structure ``name``; returns its base."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        base = self._next
        rounded = (size_bytes + ALLOC_ALIGN - 1) // ALLOC_ALIGN * ALLOC_ALIGN
        self._next += rounded
        self.regions[name] = (base, size_bytes)
        return base

    @property
    def footprint_bytes(self) -> int:
        """Total bytes reserved so far."""
        return self._next - HEAP_BASE


@dataclass
class Trace:
    """A named, materialised access trace.

    Attributes:
        name: Workload label carried through to result tables.
        accesses: The access records in program order.
        metadata: Generator parameters for reproducibility reports.
    """

    name: str
    accesses: List[MemoryAccess] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        if not self.accesses:
            return 0.0
        writes = sum(1 for access in self.accesses if access.is_write)
        return writes / len(self.accesses)

    def footprint_blocks(self) -> int:
        """Number of distinct 64B blocks touched."""
        return len({access.block_address for access in self.accesses})

    def truncated(self, max_accesses: int) -> "Trace":
        """A copy limited to the first ``max_accesses`` records."""
        return Trace(self.name, self.accesses[:max_accesses], dict(self.metadata))

    def core_counts(self) -> Dict[int, int]:
        """Accesses per core id."""
        counts: Dict[int, int] = {}
        for access in self.accesses:
            counts[access.core] = counts.get(access.core, 0) + 1
        return counts


def interleave(streams: Sequence[Sequence[MemoryAccess]]) -> List[MemoryAccess]:
    """Round-robin merge of per-core access streams.

    Streams may have different lengths; exhausted streams simply drop out,
    mirroring threads that finish their partition early.
    """
    merged: List[MemoryAccess] = []
    iterators = [iter(stream) for stream in streams]
    active = list(range(len(iterators)))
    while active:
        still_active: List[int] = []
        for index in active:
            try:
                merged.append(next(iterators[index]))
            except StopIteration:
                continue
            still_active.append(index)
        active = still_active
    return merged


def reads_and_writes(
    addresses: Iterable[tuple],
    core: int = 0,
) -> List[MemoryAccess]:
    """Build accesses from ``(address, is_write)`` tuples for one core."""
    return [
        MemoryAccess(address, AccessType.WRITE if is_write else AccessType.READ, core)
        for address, is_write in addresses
    ]


def multiprogram(traces: Sequence[Trace], address_stride: int = 1 << 30) -> Trace:
    """Build a multi-programmed mix: one workload per core.

    Each input trace is pinned to its own core and relocated into a
    private address-space slice (``address_stride`` apart) so the
    programs share only the LLC and the memory controller — the classic
    rate-mode setup.  Streams interleave round-robin.  The simulated
    memory must span ``len(traces) * address_stride`` bytes plus the
    largest program footprint.
    """
    if not traces:
        raise ValueError("multiprogram needs at least one trace")
    streams: List[List[MemoryAccess]] = []
    for core, trace in enumerate(traces):
        base = core * address_stride
        streams.append(
            [
                MemoryAccess(base + access.address, access.type, core)
                for access in trace.accesses
            ]
        )
    name = "+".join(trace.name for trace in traces)
    return Trace(
        name=name,
        accesses=interleave(streams),
        metadata={
            "kind": "multiprogram",
            "programs": [trace.name for trace in traces],
            "address_stride": address_stride,
        },
    )
