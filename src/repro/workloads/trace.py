"""Trace containers and helpers shared by every workload generator.

A trace is a sequence of :class:`~repro.mem.access.MemoryAccess` records.
Two representations coexist:

* **object traces** — a Python list of ``MemoryAccess`` records, the
  representation generators build and tests manipulate directly;
* **array traces** — :class:`TraceArrays`, three parallel NumPy arrays
  (addresses/types/cores) with pre-shifted block addresses, the packed
  form the ``.npz`` trace cache stores and the simulator's fast path
  consumes without constructing one object per access.

:class:`Trace` can be backed by either form and converts lazily in both
directions, so existing ``Iterable[MemoryAccess]`` callers keep working
while the hot loop goes array-native.  Workloads build per-core streams;
:func:`interleave` merges them round-robin to model the paper's 4-thread
execution feeding one shared LLC and memory controller.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..mem.access import BLOCK_SHIFT, AccessType, MemoryAccess

#: Base of the workload heap; structures are laid out above this address.
HEAP_BASE = 0x1000_0000

#: Alignment for each allocated structure (a 4KB page).
ALLOC_ALIGN = 4096

#: Canonical dtypes of the three parallel trace arrays (and the ``.npz``
#: on-disk layout): 64-bit byte addresses, 8-bit access types, 16-bit cores.
ADDRESS_DTYPE = np.int64
TYPE_DTYPE = np.int8
CORE_DTYPE = np.int16

_WRITE = int(AccessType.WRITE)


class Allocator:
    """Bump allocator assigning page-aligned base addresses to structures."""

    def __init__(self, base: int = HEAP_BASE) -> None:
        self._next = base
        self.regions: Dict[str, tuple] = {}

    def alloc(self, name: str, size_bytes: int) -> int:
        """Reserve ``size_bytes`` for structure ``name``; returns its base."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        base = self._next
        rounded = (size_bytes + ALLOC_ALIGN - 1) // ALLOC_ALIGN * ALLOC_ALIGN
        self._next += rounded
        self.regions[name] = (base, size_bytes)
        return base

    @property
    def footprint_bytes(self) -> int:
        """Total bytes reserved so far."""
        return self._next - HEAP_BASE


class TraceArrays:
    """Packed trace: parallel NumPy arrays of address, type and core.

    This is the array-native representation the simulator's fast path
    consumes: no per-access Python object is ever constructed, and block
    addresses are derived once, vectorised, instead of per cache level.

    Attributes:
        addresses: Byte addresses (``int64``).
        types: :class:`~repro.mem.access.AccessType` values (``int8``).
        cores: Issuing core indices (``int16``).
    """

    __slots__ = ("addresses", "types", "cores", "_block_addresses")

    def __init__(self, addresses, types, cores) -> None:
        self.addresses = np.ascontiguousarray(addresses, dtype=ADDRESS_DTYPE)
        self.types = np.ascontiguousarray(types, dtype=TYPE_DTYPE)
        self.cores = np.ascontiguousarray(cores, dtype=CORE_DTYPE)
        if not (len(self.addresses) == len(self.types) == len(self.cores)):
            raise ValueError(
                "addresses, types and cores must have equal lengths "
                f"({len(self.addresses)}/{len(self.types)}/{len(self.cores)})"
            )
        self._block_addresses: Optional[np.ndarray] = None

    @property
    def block_addresses(self) -> np.ndarray:
        """Pre-shifted cache-block addresses (``addresses >> BLOCK_SHIFT``)."""
        if self._block_addresses is None:
            self._block_addresses = self.addresses >> BLOCK_SHIFT
        return self._block_addresses

    @property
    def is_write(self) -> np.ndarray:
        """Boolean store mask (derived, not cached — rarely on the hot path)."""
        return self.types == _WRITE

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        """Adapter: yield one ``MemoryAccess`` per record (slow path)."""
        return iter(self.to_accesses())

    def head(self, max_accesses: int) -> "TraceArrays":
        """A view limited to the first ``max_accesses`` records."""
        return TraceArrays(
            self.addresses[:max_accesses],
            self.types[:max_accesses],
            self.cores[:max_accesses],
        )

    @classmethod
    def from_accesses(cls, accesses: Sequence[MemoryAccess]) -> "TraceArrays":
        """Pack a sequence of access records into parallel arrays."""
        count = len(accesses)
        addresses = np.fromiter(
            (access.address for access in accesses), dtype=ADDRESS_DTYPE, count=count
        )
        types = np.fromiter(
            (int(access.type) for access in accesses), dtype=TYPE_DTYPE, count=count
        )
        cores = np.fromiter(
            (access.core for access in accesses), dtype=CORE_DTYPE, count=count
        )
        return cls(addresses, types, cores)

    @classmethod
    def from_iter(
        cls, accesses: Iterable[MemoryAccess], chunk: int = 65536
    ) -> "TraceArrays":
        """Pack any iterable of access records, streaming in bounded chunks.

        Unlike :meth:`from_accesses` this never materialises the whole
        iterable as a Python list: generators are consumed ``chunk``
        records at a time straight into typed arrays, so peak overhead is
        one chunk of objects rather than the full trace.  Sequences take
        the single-pass :meth:`from_accesses` shortcut.
        """
        if isinstance(accesses, Sequence):
            return cls.from_accesses(accesses)
        address_parts: List[np.ndarray] = []
        type_parts: List[np.ndarray] = []
        core_parts: List[np.ndarray] = []
        iterator = iter(accesses)
        while True:
            part = list(itertools.islice(iterator, chunk))
            if not part:
                break
            count = len(part)
            address_parts.append(
                np.fromiter(
                    (access.address for access in part),
                    dtype=ADDRESS_DTYPE,
                    count=count,
                )
            )
            type_parts.append(
                np.fromiter(
                    (int(access.type) for access in part),
                    dtype=TYPE_DTYPE,
                    count=count,
                )
            )
            core_parts.append(
                np.fromiter(
                    (access.core for access in part), dtype=CORE_DTYPE, count=count
                )
            )
        if not address_parts:
            return cls(
                np.empty(0, dtype=ADDRESS_DTYPE),
                np.empty(0, dtype=TYPE_DTYPE),
                np.empty(0, dtype=CORE_DTYPE),
            )
        return cls(
            np.concatenate(address_parts),
            np.concatenate(type_parts),
            np.concatenate(core_parts),
        )

    def to_accesses(self) -> List[MemoryAccess]:
        """Materialise the equivalent list of ``MemoryAccess`` objects."""
        return [
            MemoryAccess(address, AccessType(kind), core)
            for address, kind, core in zip(
                self.addresses.tolist(), self.types.tolist(), self.cores.tolist()
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceArrays(n={len(self)})"


class Trace:
    """A named, materialised access trace.

    Backed by an object list, a :class:`TraceArrays`, or both: whichever
    representation is asked for first is converted lazily and cached, so
    generators keep building object lists while the ``.npz`` cache and
    the simulator fast path stay array-native end to end.

    Attributes:
        name: Workload label carried through to result tables.
        metadata: Generator parameters for reproducibility reports.
    """

    def __init__(
        self,
        name: str,
        accesses: Optional[List[MemoryAccess]] = None,
        metadata: Optional[Dict[str, object]] = None,
        arrays: Optional[TraceArrays] = None,
    ) -> None:
        self.name = name
        self.metadata: Dict[str, object] = metadata if metadata is not None else {}
        self._accesses = accesses
        self._arrays = arrays
        if self._accesses is None and self._arrays is None:
            self._accesses = []

    @classmethod
    def from_arrays(
        cls,
        name: str,
        arrays: TraceArrays,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "Trace":
        """Build an array-backed trace (no per-access objects created)."""
        return cls(name, metadata=metadata, arrays=arrays)

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> List[MemoryAccess]:
        """The access records in program order (materialised on demand)."""
        if self._accesses is None:
            self._accesses = self._arrays.to_accesses()
        return self._accesses

    def arrays(self) -> TraceArrays:
        """The packed array representation (converted once, then cached)."""
        if self._arrays is None:
            self._arrays = TraceArrays.from_accesses(self._accesses)
        return self._arrays

    def __len__(self) -> int:
        if self._accesses is not None:
            return len(self._accesses)
        return len(self._arrays)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "objects" if self._accesses is not None else "arrays"
        return f"Trace(name={self.name!r}, n={len(self)}, backing={backing})"

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        if len(self) == 0:
            return 0.0
        if self._accesses is None:
            return int(np.count_nonzero(self._arrays.types == _WRITE)) / len(self)
        writes = sum(1 for access in self._accesses if access.is_write)
        return writes / len(self._accesses)

    def footprint_blocks(self) -> int:
        """Number of distinct 64B blocks touched."""
        if self._accesses is None:
            return int(np.unique(self._arrays.block_addresses).size)
        return len({access.block_address for access in self._accesses})

    def truncated(self, max_accesses: int) -> "Trace":
        """A copy limited to the first ``max_accesses`` records."""
        if self._accesses is None:
            return Trace.from_arrays(
                self.name, self._arrays.head(max_accesses), dict(self.metadata)
            )
        return Trace(self.name, self._accesses[:max_accesses], dict(self.metadata))

    def core_counts(self) -> Dict[int, int]:
        """Accesses per core id."""
        if self._accesses is None:
            cores, counts = np.unique(self._arrays.cores, return_counts=True)
            return dict(zip(cores.tolist(), counts.tolist()))
        counts: Dict[int, int] = {}
        for access in self._accesses:
            counts[access.core] = counts.get(access.core, 0) + 1
        return counts


def interleave(streams: Sequence[Sequence[MemoryAccess]]) -> List[MemoryAccess]:
    """Round-robin merge of per-core access streams.

    Streams may have different lengths; exhausted streams simply drop out,
    mirroring threads that finish their partition early.
    """
    merged: List[MemoryAccess] = []
    iterators = [iter(stream) for stream in streams]
    active = list(range(len(iterators)))
    while active:
        still_active: List[int] = []
        for index in active:
            try:
                merged.append(next(iterators[index]))
            except StopIteration:
                continue
            still_active.append(index)
        active = still_active
    return merged


def reads_and_writes(
    addresses: Iterable[tuple],
    core: int = 0,
) -> List[MemoryAccess]:
    """Build accesses from ``(address, is_write)`` tuples for one core."""
    return [
        MemoryAccess(address, AccessType.WRITE if is_write else AccessType.READ, core)
        for address, is_write in addresses
    ]


def multiprogram(traces: Sequence[Trace], address_stride: int = 1 << 30) -> Trace:
    """Build a multi-programmed mix: one workload per core.

    Each input trace is pinned to its own core and relocated into a
    private address-space slice (``address_stride`` apart) so the
    programs share only the LLC and the memory controller — the classic
    rate-mode setup.  Streams interleave round-robin.  The simulated
    memory must span ``len(traces) * address_stride`` bytes plus the
    largest program footprint.
    """
    if not traces:
        raise ValueError("multiprogram needs at least one trace")
    streams: List[List[MemoryAccess]] = []
    for core, trace in enumerate(traces):
        base = core * address_stride
        streams.append(
            [
                MemoryAccess(base + access.address, access.type, core)
                for access in trace.accesses
            ]
        )
    name = "+".join(trace.name for trace in traces)
    return Trace(
        name=name,
        accesses=interleave(streams),
        metadata={
            "kind": "multiprogram",
            "programs": [trace.name for trace in traces],
            "address_stride": address_stride,
        },
    )
