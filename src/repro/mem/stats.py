"""Lightweight statistics counters used by caches, DRAM and the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one cache.

    The ``prefetch_*`` counters track prefetcher effectiveness: a prefetched
    line counts as *useful* the first time a demand access hits it before it
    is evicted.  Slotted: the counters are incremented on every cache
    operation in the simulator's innermost loop.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    prefetch_evicted_unused: int = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate in [0, 1]; 0.0 when no accesses were made."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Demand hit rate in [0, 1]; 0.0 when no accesses were made."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches that were hit before eviction."""
        if self.prefetch_issued == 0:
            return 0.0
        return self.prefetch_useful / self.prefetch_issued

    def reset(self) -> None:
        """Zero every counter in place."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.prefetch_issued = 0
        self.prefetch_useful = 0
        self.prefetch_evicted_unused = 0


@dataclass(slots=True)
class TrafficStats:
    """DRAM traffic broken down by cause, in 64B-request units.

    Mirrors the categories in the paper's Figure 2: plain data reads and
    writes, Merkle-tree (MT) node reads, counter (CTR) reads/writes, MAC
    accesses and re-encryption traffic.
    """

    data_reads: int = 0
    data_writes: int = 0
    ctr_reads: int = 0
    ctr_writes: int = 0
    mt_reads: int = 0
    mac_accesses: int = 0
    reencryption_requests: int = 0

    @property
    def total(self) -> int:
        """Total DRAM requests across all categories."""
        return (
            self.data_reads
            + self.data_writes
            + self.ctr_reads
            + self.ctr_writes
            + self.mt_reads
            + self.mac_accesses
            + self.reencryption_requests
        )

    @property
    def security_overhead(self) -> int:
        """Requests caused purely by the secure-memory machinery."""
        return self.total - self.data_reads - self.data_writes

    def as_dict(self) -> Dict[str, int]:
        """Return the breakdown as a plain dictionary (for reports)."""
        return {
            "data_reads": self.data_reads,
            "data_writes": self.data_writes,
            "ctr_reads": self.ctr_reads,
            "ctr_writes": self.ctr_writes,
            "mt_reads": self.mt_reads,
            "mac_accesses": self.mac_accesses,
            "reencryption_requests": self.reencryption_requests,
            "total": self.total,
        }

    def reset(self) -> None:
        """Zero every counter in place."""
        self.data_reads = 0
        self.data_writes = 0
        self.ctr_reads = 0
        self.ctr_writes = 0
        self.mt_reads = 0
        self.mac_accesses = 0
        self.reencryption_requests = 0


@dataclass
class LatencyStats:
    """Accumulates per-access latency to expose averages."""

    total_cycles: int = 0
    count: int = 0
    histogram: Dict[str, int] = field(default_factory=dict)

    def record(self, cycles: int, category: str = "demand") -> None:
        """Add one completed access of ``cycles`` latency."""
        self.total_cycles += cycles
        self.count += 1
        self.histogram[category] = self.histogram.get(category, 0) + 1

    @property
    def average(self) -> float:
        """Mean latency per access; 0.0 when nothing was recorded."""
        if self.count == 0:
            return 0.0
        return self.total_cycles / self.count
