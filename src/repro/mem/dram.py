"""DDR4 DRAM bank-state timing model.

Models the latency-relevant behaviour of a DDR4_2400_16x4 channel (paper
Table 3) as a bank-state machine rather than a per-request formula:

* **Per-bank row buffers and readiness.**  Every (channel, bank) pair keeps
  its open row and the cycle at which it can accept the next command, so
  requests to *independent* banks overlap while requests to a busy bank
  queue behind it.
* **Distinct read and write timing.**  Reads pay CAS latency, writes pay
  the (shorter) write CAS latency plus a write-recovery window (tWR)
  before the bank can activate again; switching direction on a channel
  costs a bus turnaround.
* **Channel data-bus serialisation.**  Each request's data burst occupies
  its channel's bus for ``burst`` cycles; bursts cannot overlap, which is
  what makes metadata traffic (MT nodes, counter fetches) expensive.
* **Utilisation-derived queueing.**  The queue penalty is proportional to
  the measured bus utilisation of the channel's previous scheduling
  window — an idle channel charges nothing, a saturated one charges the
  full ``queue_penalty``.
* **Periodic refresh.**  Every ``refresh_interval`` cycles a channel
  performs a refresh taking ``refresh_cycles`` (tREFI/tRFC); a request
  arriving past a due boundary stalls for it.  Set
  ``refresh_interval=0`` to disable.

Requests carry a ``now`` cycle — the issue time on the shared clock the
designs maintain — and the returned latency is ``finish - now``, i.e. it
includes any queueing behind earlier requests still occupying the bank or
bus.  Callers that never advance ``now`` (unit tests, ad-hoc probes) get a
fully serialised channel, which is the conservative worst case.

Latencies are expressed in CPU cycles at 3 GHz to match the rest of the
cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .access import BLOCK_SHIFT

#: Scheduling-window length (cycles) over which bus utilisation is
#: measured for the queue penalty; power of two so the penalty scaling
#: stays integer (see :meth:`DramModel.request`).
UTILISATION_WINDOW = 1024


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


@dataclass
class DramTimings:
    """Timing parameters in CPU cycles (3 GHz core, DDR4-2400).

    Read defaults approximate tCL/tRCD/tRP of 13.75ns each at 3 GHz (~41
    cycles) plus data burst transfer.  Writes use the write CAS latency
    (tCWL ~ 10ns) and pay tWR (~15ns) of write recovery inside the bank
    before the next activate.  Refresh follows tREFI = 7.8us / tRFC =
    350ns.
    """

    cas: int = 41
    rcd: int = 41
    rp: int = 41
    burst: int = 8
    #: Write CAS latency (tCWL); writes stream data sooner than reads.
    cwl: int = 30
    #: Write recovery (tWR): bank-busy cycles after a write burst.
    wr: int = 45
    #: Bus turnaround cost when a channel switches read<->write direction.
    turnaround: int = 8
    #: *Maximum* queueing delay, charged in proportion to the measured bus
    #: utilisation of the previous scheduling window (0 when idle).
    queue_penalty: int = 6
    #: Cycles between refreshes per channel (tREFI at 3 GHz); 0 disables.
    refresh_interval: int = 23_400
    #: Cycles one refresh blocks the channel (tRFC at 3 GHz).
    refresh_cycles: int = 1_050

    @property
    def row_hit_latency(self) -> int:
        """Cycles for a read that hits the open row."""
        return self.cas + self.burst

    @property
    def row_miss_latency(self) -> int:
        """Cycles for a read that must precharge and activate first."""
        return self.rp + self.rcd + self.cas + self.burst

    @property
    def write_hit_latency(self) -> int:
        """Cycles for a write that hits the open row."""
        return self.cwl + self.burst

    @property
    def write_miss_latency(self) -> int:
        """Cycles for a write that must precharge and activate first."""
        return self.rp + self.rcd + self.cwl + self.burst


@dataclass
class DramStats:
    """Request, row-buffer and occupancy accounting for a DRAM subsystem."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    #: Latency sums split by request class so averages are honest per class.
    read_cycles: int = 0
    write_cycles: int = 0
    #: Cycles requests spent waiting (bank busy, bus busy, turnaround,
    #: utilisation penalty, refresh) beyond their raw service time.
    queue_cycles: int = 0
    #: Refresh stalls charged to requests (one tRFC each).
    refresh_stalls: int = 0
    #: Channel read<->write direction switches that actually delayed a
    #: data burst (charged in bus-grant order; switches fully absorbed by
    #: bank queueing cost nothing and are not counted).
    turnarounds: int = 0
    #: Background 64B requests charged as bus occupancy only (page
    #: re-encryption): they never touch row buffers or latency sums.
    background_requests: int = 0
    #: Activation-ledger resets: refresh windows that ended with at least
    #: one recorded activation (tREFI-aligned; see ``activation_counts``).
    act_window_resets: int = 0
    #: Highest per-(channel, bank, row) activation count observed within
    #: any single refresh window — the RowHammer pressure ceiling.
    max_row_activations: int = 0
    #: Demand requests per channel.
    per_channel: Dict[int, int] = field(default_factory=dict)
    #: Data-bus occupancy cycles per channel (demand bursts + background).
    per_channel_busy: Dict[int, int] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Total demand requests serviced."""
        return self.reads + self.writes

    @property
    def activations(self) -> int:
        """Row activations (ACT commands) — one per row-buffer miss."""
        return self.row_misses

    @property
    def busy_cycles(self) -> int:
        """Total latency cycles across both request classes."""
        return self.read_cycles + self.write_cycles

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests hitting an open row."""
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    @property
    def max_channel_busy(self) -> int:
        """Bus occupancy of the busiest channel — the serialisation floor."""
        if not self.per_channel_busy:
            return 0
        return max(self.per_channel_busy.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot for obs artifacts and reports."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_hit_rate": self.row_hit_rate,
            "read_cycles": self.read_cycles,
            "write_cycles": self.write_cycles,
            "busy_cycles": self.busy_cycles,
            "queue_cycles": self.queue_cycles,
            "refresh_stalls": self.refresh_stalls,
            "turnarounds": self.turnarounds,
            "background_requests": self.background_requests,
            "activations": self.activations,
            "act_window_resets": self.act_window_resets,
            "max_row_activations": self.max_row_activations,
            "per_channel": {str(k): v for k, v in sorted(self.per_channel.items())},
            "per_channel_busy": {
                str(k): v for k, v in sorted(self.per_channel_busy.items())
            },
        }


@dataclass
class DramModel:
    """Open-page DDR4 memory with per-bank row buffers and bank timing.

    Address mapping row:bank:channel:column — column (within-row) bits
    lowest, then channel bits (so rows interleave across channels), then
    bank bits, row bits on top.  Streaming accesses fill a whole row
    before moving on.  All three geometry knobs must be powers of two so
    the bit-field decode is a bijection (checked in ``__post_init__``;
    :meth:`decode`/:meth:`encode` round-trip exactly).
    """

    timings: DramTimings = field(default_factory=DramTimings)
    num_banks: int = 16
    num_channels: int = 1
    row_size_bytes: int = 2048
    stats: DramStats = field(default_factory=DramStats)

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_channels):
            raise ValueError(
                f"num_channels must be a power of two >= 1, got {self.num_channels}: "
                "the channel bits are a bit-field of the block address"
            )
        if not _is_power_of_two(self.num_banks):
            raise ValueError(
                f"num_banks must be a power of two >= 1, got {self.num_banks}: "
                "the bank bits are a bit-field of the block address"
            )
        block_bytes = 1 << BLOCK_SHIFT
        if self.row_size_bytes < block_bytes or not _is_power_of_two(self.row_size_bytes):
            raise ValueError(
                f"row_size_bytes must be a power of two >= {block_bytes}, "
                f"got {self.row_size_bytes}: a row holds whole 64B blocks"
            )
        blocks_per_row = self.row_size_bytes >> BLOCK_SHIFT
        self._column_bits = blocks_per_row.bit_length() - 1
        self._channel_bits = self.num_channels.bit_length() - 1
        self._bank_bits = self.num_banks.bit_length() - 1
        self._column_mask = blocks_per_row - 1
        self._channel_mask = self.num_channels - 1
        self._bank_mask = self.num_banks - 1
        self._channel_shift = self._column_bits
        self._bank_shift = self._column_bits + self._channel_bits
        self._row_shift = self._bank_shift + self._bank_bits
        self._reset_state()

    def _reset_state(self) -> None:
        """(Re)initialise all bank/bus/refresh/utilisation state."""
        banks = self.num_channels * self.num_banks
        #: Open row per (channel, bank), indexed channel*num_banks + bank.
        self._open_rows: List[Optional[int]] = [None] * banks
        #: Cycle at which each bank can accept its next command.
        self._bank_ready: List[int] = [0] * banks
        #: Cycle at which each channel's data bus is free.
        self._bus_ready: List[int] = [0] * self.num_channels
        #: Last transfer direction per channel (for turnaround charging).
        self._last_write: List[bool] = [False] * self.num_channels
        interval = self.timings.refresh_interval
        self._next_refresh: List[int] = [interval] * self.num_channels
        #: Utilisation window per channel: start cycle, busy cycles in the
        #: window, and the previous window's utilisation in 1/1024 units.
        self._win_start: List[int] = [0] * self.num_channels
        self._win_busy: List[int] = [0] * self.num_channels
        self._util: List[int] = [0] * self.num_channels
        #: Round-robin cursor for background-occupancy distribution.
        self._background_cursor = 0
        #: RowHammer activation ledger: per channel, the tREFI window the
        #: ledger currently covers and a ``(bank, row) -> activations``
        #: map for that window.  Reset whenever a request lands in a later
        #: window (with ``refresh_interval=0`` there is a single window
        #: that never resets).
        self._act_window: List[int] = [0] * self.num_channels
        self._act_counts: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(self.num_channels)
        ]

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def decode(self, block_address: int) -> Tuple[int, int, int, int]:
        """Split a block address into ``(channel, bank, row, column)``."""
        return (
            (block_address >> self._channel_shift) & self._channel_mask,
            (block_address >> self._bank_shift) & self._bank_mask,
            block_address >> self._row_shift,
            block_address & self._column_mask,
        )

    def encode(self, channel: int, bank: int, row: int, column: int = 0) -> int:
        """Inverse of :meth:`decode`; ``encode(*decode(a))`` == ``a``."""
        return (
            (row << self._row_shift)
            | (bank << self._bank_shift)
            | (channel << self._channel_shift)
            | column
        )

    def decode_batch(self, block_addresses):
        """Vectorised :meth:`decode` over an array of block addresses.

        Returns ``(channels, banks, rows, columns)`` as parallel int64
        arrays — the same bit-field split as the scalar form, element for
        element.  The batched simulation kernel uses this to pre-split a
        whole epoch's miss tail in one shot (the bank *state machine*
        stays scalar: each request's latency depends on the previous
        one's side effects).
        """
        blocks = np.asarray(block_addresses, dtype=np.int64)
        return (
            (blocks >> self._channel_shift) & self._channel_mask,
            (blocks >> self._bank_shift) & self._bank_mask,
            blocks >> self._row_shift,
            blocks & self._column_mask,
        )

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def request(self, block_address: int, is_write: bool = False, now: int = 0) -> int:
        """Service one 64B request issued at cycle ``now``.

        Returns the latency in cycles from ``now`` to the end of the data
        burst, including any wait for refresh, the bank, the channel bus,
        direction turnaround and the utilisation-derived queue penalty.
        """
        timings = self.timings
        channel = (block_address >> self._channel_shift) & self._channel_mask
        bank = (block_address >> self._bank_shift) & self._bank_mask
        row = block_address >> self._row_shift
        stats = self.stats
        per_channel = stats.per_channel
        per_channel[channel] = per_channel.get(channel, 0) + 1

        start = now
        # Periodic refresh: a request arriving past a due tREFI boundary
        # pays one tRFC.  Boundaries crossed while nothing was requested
        # are absorbed silently (refreshing an idle channel stalls nobody).
        interval = timings.refresh_interval
        if interval > 0:
            if now >= self._next_refresh[channel]:
                start += timings.refresh_cycles
                stats.refresh_stalls += 1
                self._next_refresh[channel] = (now // interval + 1) * interval
            # Activation ledger windows are tREFI-aligned: refresh rewrites
            # every row, so disturbance pressure cannot carry across a
            # boundary.  Counts never mix windows — the ledger is cleared
            # the moment a request observes a different window.
            window = now // interval
            if window != self._act_window[channel]:
                self._act_window[channel] = window
                if self._act_counts[channel]:
                    self._act_counts[channel].clear()
                    stats.act_window_resets += 1

        # Utilisation-derived queueing: the previous window's measured bus
        # utilisation (in 1/1024 units) scales the maximum penalty.
        elapsed = now - self._win_start[channel]
        if elapsed >= UTILISATION_WINDOW:
            self._util[channel] = min(
                1024, (self._win_busy[channel] << 10) // elapsed
            )
            self._win_start[channel] = now
            self._win_busy[channel] = 0
        start += (timings.queue_penalty * self._util[channel]) >> 10

        # Bank readiness: queue behind the bank's previous command (and,
        # after writes, its write-recovery window).
        bank_index = channel * self.num_banks + bank
        ready = self._bank_ready[bank_index]
        if ready > start:
            start = ready

        # Row-buffer state machine with per-class column latency.
        if self._open_rows[bank_index] == row:
            stats.row_hits += 1
            service = (timings.cwl if is_write else timings.cas) + timings.burst
        else:
            stats.row_misses += 1
            self._open_rows[bank_index] = row
            ledger = self._act_counts[channel]
            key = (bank, row)
            count = ledger.get(key, 0) + 1
            ledger[key] = count
            if count > stats.max_row_activations:
                stats.max_row_activations = count
            service = (
                timings.rp
                + timings.rcd
                + (timings.cwl if is_write else timings.cas)
                + timings.burst
            )

        # Channel data-bus serialisation: bursts cannot overlap, and a
        # direction switch costs ``turnaround`` idle bus cycles *between*
        # the previous burst and this one.  Both are resolved here, in
        # bus-grant order: a switch whose gap is fully absorbed by bank
        # queueing (the burst could not have started earlier anyway)
        # delays nothing and is not charged or counted.
        burst_start = start + service - timings.burst
        gate = self._bus_ready[channel]
        if is_write != self._last_write[channel]:
            self._last_write[channel] = is_write
            gate += timings.turnaround
            if burst_start < gate:
                stats.turnarounds += 1
        if burst_start < gate:
            finish = gate + timings.burst
        else:
            finish = burst_start + timings.burst
        self._bus_ready[channel] = finish
        busy = stats.per_channel_busy
        busy[channel] = busy.get(channel, 0) + timings.burst
        self._win_busy[channel] += timings.burst

        # The bank is busy until the burst completes (+ tWR for writes).
        self._bank_ready[bank_index] = finish + (timings.wr if is_write else 0)

        latency = finish - now
        if is_write:
            stats.writes += 1
            stats.write_cycles += latency
        else:
            stats.reads += 1
            stats.read_cycles += latency
        stats.queue_cycles += latency - service
        return latency

    def add_background_occupancy(self, num_requests: int) -> None:
        """Charge ``num_requests`` background 64B transfers as occupancy.

        Used for page re-encryption traffic: the memory controller streams
        it behind demand requests, so it consumes channel bandwidth (one
        burst each, round-robin across channels) without contributing a
        row-buffer access or a latency sample.
        """
        if num_requests <= 0:
            return
        stats = self.stats
        stats.background_requests += num_requests
        busy = stats.per_channel_busy
        burst = self.timings.burst
        channels = self.num_channels
        base, extra = divmod(num_requests, channels)
        cursor = self._background_cursor
        for offset in range(channels):
            channel = (cursor + offset) % channels
            share = base + (1 if offset < extra else 0)
            if share:
                busy[channel] = busy.get(channel, 0) + share * burst
                # Background bursts occupy the measured utilisation window
                # too: a channel saturated by re-encryption must raise the
                # utilisation-derived queue penalty for the demand requests
                # that share it, not just the occupancy ledger.
                self._win_busy[channel] += share * burst
        self._background_cursor = (cursor + extra) % channels

    # ------------------------------------------------------------------
    # Activation ledger (RowHammer accounting)
    # ------------------------------------------------------------------
    def activation_counts(self, channel: Optional[int] = None) -> Dict[Tuple[int, int, int], int]:
        """Current-refresh-window activation counts.

        Returns ``{(channel, bank, row): activations}`` for the window the
        most recent request on each channel fell into.  A pure function of
        the request stream: replaying the same ``(block_address, is_write,
        now)`` sequence yields byte-identical ledgers, which is what makes
        the RowHammer planner path-invariant across the ``arrays`` /
        ``objects`` / ``batched`` simulation kernels.
        """
        channels = range(self.num_channels) if channel is None else (channel,)
        counts: Dict[Tuple[int, int, int], int] = {}
        for ch in channels:
            for (bank, row), count in self._act_counts[ch].items():
                counts[(ch, bank, row)] = count
        return counts

    def row_activations(self, channel: int, bank: int, row: int) -> int:
        """Activations of one row in its channel's current window."""
        return self._act_counts[channel].get((bank, row), 0)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def average_latency(self) -> float:
        """Mean latency per request.

        Idle fallback is *class-consistent*: with no requests observed
        there is no workload mix, so it averages the two per-class
        fallbacks (read row miss and write row miss) instead of silently
        reporting the read one.
        """
        if self.stats.requests == 0:
            return (
                self.timings.row_miss_latency + self.timings.write_miss_latency
            ) / 2.0
        return self.stats.busy_cycles / self.stats.requests

    def average_read_latency(self) -> float:
        """Mean latency per read; falls back to the *read* miss when idle."""
        if self.stats.reads == 0:
            return float(self.timings.row_miss_latency)
        return self.stats.read_cycles / self.stats.reads

    def average_write_latency(self) -> float:
        """Mean latency per write; falls back to the write miss when idle."""
        if self.stats.writes == 0:
            return float(self.timings.write_miss_latency)
        return self.stats.write_cycles / self.stats.writes

    def reset(self) -> None:
        """Clear row buffers, bank/bus/refresh state and statistics."""
        self._reset_state()
        self.stats = DramStats()

    def reset_stats(self) -> None:
        """Zero statistics but keep all timing state (for warmup).

        Open rows, bank readiness, refresh schedule and the utilisation
        window survive so the measurement window starts against a warm
        memory system rather than a freshly power-cycled one.
        """
        self.stats = DramStats()
