"""DDR4 DRAM timing model.

Models the latency-relevant behaviour of a DDR4_2400_16x4 channel (paper
Table 3): banks with open-row buffers, where a row hit costs column access
only and a row miss pays precharge + activate + column access.  A light
contention model adds queueing delay proportional to recent utilisation.

Latencies are expressed in CPU cycles at 3 GHz to match the rest of the
cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .access import BLOCK_SHIFT


@dataclass
class DramTimings:
    """Timing parameters in CPU cycles (3 GHz core, DDR4-2400).

    Defaults approximate tCL/tRCD/tRP of 13.75ns each at 3 GHz (~41 cycles)
    plus data burst transfer.
    """

    cas: int = 41
    rcd: int = 41
    rp: int = 41
    burst: int = 8
    queue_penalty: int = 6

    @property
    def row_hit_latency(self) -> int:
        """Cycles for a read that hits the open row."""
        return self.cas + self.burst

    @property
    def row_miss_latency(self) -> int:
        """Cycles for a read that must precharge and activate first."""
        return self.rp + self.rcd + self.cas + self.burst


@dataclass
class DramStats:
    """Request and row-buffer accounting for a DRAM subsystem."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    busy_cycles: int = 0
    per_channel: Dict[int, int] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Total requests serviced."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests hitting an open row."""
        if self.requests == 0:
            return 0.0
        return self.row_hits / self.requests

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot for obs artifacts and reports."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_hit_rate": self.row_hit_rate,
            "busy_cycles": self.busy_cycles,
        }


@dataclass
class DramModel:
    """Open-page DDR4 memory with per-bank row buffers.

    Address mapping row:bank:channel:column — column (within-row) bits
    lowest, then channel bits (so rows interleave across channels), then
    bank bits, row bits on top.  Streaming accesses fill a whole row
    before moving on.
    """

    timings: DramTimings = field(default_factory=DramTimings)
    num_banks: int = 16
    num_channels: int = 1
    row_size_bytes: int = 2048
    stats: DramStats = field(default_factory=DramStats)

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ValueError("num_channels must be >= 1")
        self._open_rows: Dict[tuple, int] = {}
        self._column_shift = (self.row_size_bytes // (1 << BLOCK_SHIFT)).bit_length() - 1
        self._channel_shift = self._column_shift + (self.num_channels.bit_length() - 1)
        self._bank_shift = self._channel_shift + (self.num_banks.bit_length() - 1)

    def _decode(self, block_address: int) -> tuple:
        channel = (block_address >> self._column_shift) % self.num_channels
        bank = (block_address >> self._channel_shift) % self.num_banks
        row = block_address >> self._bank_shift
        return channel, bank, row

    def request(self, block_address: int, is_write: bool = False) -> int:
        """Service one 64B request; returns its latency in cycles."""
        channel, bank, row = self._decode(block_address)
        self.stats.per_channel[channel] = self.stats.per_channel.get(channel, 0) + 1
        bank = (channel, bank)
        open_row = self._open_rows.get(bank)
        if open_row == row:
            latency = self.timings.row_hit_latency
            self.stats.row_hits += 1
        else:
            latency = self.timings.row_miss_latency
            self.stats.row_misses += 1
            self._open_rows[bank] = row
        latency += self.timings.queue_penalty
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.stats.busy_cycles += latency
        return latency

    def average_latency(self) -> float:
        """Mean latency per request; falls back to row-miss when idle."""
        if self.stats.requests == 0:
            return float(self.timings.row_miss_latency + self.timings.queue_penalty)
        return self.stats.busy_cycles / self.stats.requests

    def reset(self) -> None:
        """Clear open rows and statistics."""
        self._open_rows.clear()
        self.stats = DramStats()

    def reset_stats(self) -> None:
        """Zero statistics but keep row-buffer state (for warmup)."""
        self.stats = DramStats()
