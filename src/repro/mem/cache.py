"""Set-associative cache model.

This is the building block for every cache in the system: the per-core L1s
and L2s, the shared LLC, the CTR cache in the memory controller, the
Merkle-tree node cache, and (via a custom policy) COSMOS's LCR-CTR cache.

The model is functional + statistical: it tracks residency, dirtiness and
policy metadata per line and reports hits/misses/evictions, but does not
model ports or MSHRs — consistent with the trace-driven methodology in
DESIGN.md.

:meth:`Cache.access` and :meth:`Cache.fill` are the innermost frames of the
whole simulator (every trace access walks one to four caches), so both are
written allocation-free: the set mask is precomputed, victim selection runs
over the live dict view instead of a copied list, and policy callbacks are
invoked positionally.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from operator import attrgetter

from .access import BLOCK_SHIFT, BLOCK_SIZE
from .replacement import CacheLine, LRUPolicy, ReplacementPolicy
from .stats import CacheStats

_BY_LRU_TICK = attrgetter("lru_tick")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class Cache:
    """A set-associative cache addressed by block address.

    Args:
        size_bytes: Total capacity in bytes.
        assoc: Number of ways per set.
        block_size: Line size in bytes (default 64, matching the system).
        policy: Replacement policy instance; defaults to a fresh LRU.
        name: Label used in reports.
        writeback_sink: Optional callable invoked with the victim's block
            address whenever a dirty line is evicted.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        block_size: int = BLOCK_SIZE,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
        writeback_sink: Optional[Callable[[int], None]] = None,
    ) -> None:
        if block_size != (1 << BLOCK_SHIFT) and not _is_power_of_two(block_size):
            raise ValueError("block_size must be a power of two")
        if size_bytes % (assoc * block_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by assoc*block "
                f"({assoc}*{block_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_size = block_size
        self.num_sets = size_bytes // (assoc * block_size)
        if not _is_power_of_two(self.num_sets):
            raise ValueError(f"{name}: number of sets ({self.num_sets}) must be a power of two")
        self.policy = policy if policy is not None else LRUPolicy()
        self.stats = CacheStats()
        self.writeback_sink = writeback_sink
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1

    # ------------------------------------------------------------------
    # Replacement policy
    # ------------------------------------------------------------------
    @property
    def policy(self) -> ReplacementPolicy:
        """The replacement policy; assignable (experiments swap it)."""
        return self._policy

    @policy.setter
    def policy(self, policy: ReplacementPolicy) -> None:
        self._policy = policy
        # LRU fast path: the default policy's callbacks reduce to a tick
        # store, so access()/fill() inline them instead of dispatching.
        # Exact-type check — subclasses may override any hook.
        self._lru = policy if type(policy) is LRUPolicy else None

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def set_index(self, block_address: int) -> int:
        """Set index for ``block_address`` (a block, not byte, address)."""
        return block_address & self._set_mask

    def tag(self, block_address: int) -> int:
        """Tag bits for ``block_address``."""
        return block_address >> self.num_sets.bit_length() - 1 if self.num_sets > 1 else block_address

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(self, block_address: int) -> bool:
        """Return True if the block is resident, without touching state."""
        return block_address in self._sets[block_address & self._set_mask]

    def access(self, block_address: int, is_write: bool = False) -> bool:
        """Perform a demand access; returns True on hit.

        On a miss the block is *not* inserted automatically — callers decide
        whether/when to fill (e.g. after modelling the fill latency) via
        :meth:`fill`.
        """
        index = block_address & self._set_mask
        line = self._sets[index].get(block_address)
        if line is not None:
            stats = self.stats
            stats.hits += 1
            if line.prefetched and not line.referenced:
                stats.prefetch_useful += 1
            line.referenced = True
            if is_write:
                line.dirty = True
            lru = self._lru
            if lru is not None:
                lru._tick = tick = lru._tick + 1
                line.lru_tick = tick
            else:
                self._policy.on_hit(index, line, block_address << BLOCK_SHIFT)
            return True
        self.stats.misses += 1
        return False

    def access_and_fill(self, block_address: int, is_write: bool = False) -> bool:
        """Demand access that fills the block on a miss; returns True on hit."""
        if self.access(block_address, is_write):
            return True
        self.fill(block_address, dirty=is_write)
        return False

    def fill(self, block_address: int, dirty: bool = False, prefetched: bool = False) -> Optional[int]:
        """Insert a block, evicting a victim if the set is full.

        Returns:
            The evicted block address, or None when no eviction occurred.
        """
        index = block_address & self._set_mask
        target_set = self._sets[index]
        line = target_set.get(block_address)
        if line is not None:
            if dirty:
                line.dirty = True
            return None
        lru = self._lru
        evicted_address: Optional[int] = None
        if len(target_set) >= self.assoc:
            # The live dict view is handed to the policy directly; policies
            # may iterate it repeatedly but must not mutate residency.
            # The eviction is inlined (see _evict_line) — this is the
            # second-hottest frame in the simulator.
            if lru is not None:
                victim = min(target_set.values(), key=_BY_LRU_TICK)
            else:
                victim = self._policy.victim(index, target_set.values())
            evicted_address = victim.tag
            del target_set[evicted_address]
            stats = self.stats
            stats.evictions += 1
            if victim.prefetched and not victim.referenced:
                stats.prefetch_evicted_unused += 1
            if victim.dirty:
                stats.writebacks += 1
                if self.writeback_sink is not None:
                    self.writeback_sink(evicted_address)
            if lru is None:
                self._policy.on_evict(index, victim)
        line = CacheLine(block_address)
        line.dirty = dirty
        line.prefetched = prefetched
        target_set[block_address] = line
        if lru is not None:
            lru._tick = tick = lru._tick + 1
            line.lru_tick = tick
        else:
            self._policy.on_insert(index, line, block_address << BLOCK_SHIFT)
        return evicted_address

    def _evict_line(self, index: int, line: CacheLine) -> None:
        # Kept for flush(); fill() inlines this sequence on its hot path.
        del self._sets[index][line.tag]
        self.stats.evictions += 1
        if line.prefetched and not line.referenced:
            self.stats.prefetch_evicted_unused += 1
        if line.dirty:
            self.stats.writebacks += 1
            if self.writeback_sink is not None:
                self.writeback_sink(line.tag)
        self._policy.on_evict(index, line)

    def invalidate(self, block_address: int) -> bool:
        """Drop a block if resident (no writeback); returns True if dropped.

        The replacement policy observes the drop through ``on_evict`` so
        per-line learning state (SHiP outcomes, LRU bookkeeping, LCR tags)
        does not leak for invalidated lines.
        """
        index = block_address & self._set_mask
        line = self._sets[index].pop(block_address, None)
        if line is None:
            return False
        self._policy.on_evict(index, line)
        return True

    def get_line(self, block_address: int) -> Optional[CacheLine]:
        """Return the resident line's metadata, or None."""
        return self._sets[block_address & self._set_mask].get(block_address)

    def flush(self) -> int:
        """Evict every resident line (issuing writebacks); returns count."""
        flushed = 0
        for index, target_set in enumerate(self._sets):
            for line in list(target_set.values()):
                self._evict_line(index, line)
                flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(target_set) for target_set in self._sets)

    @property
    def capacity_lines(self) -> int:
        """Maximum number of resident lines."""
        return self.num_sets * self.assoc

    def resident_blocks(self) -> List[int]:
        """All resident block addresses (order unspecified)."""
        blocks: List[int] = []
        for target_set in self._sets:
            blocks.extend(target_set.keys())
        return blocks

    def set_contents(self, index: int) -> Tuple[CacheLine, ...]:
        """Lines currently resident in set ``index``."""
        return tuple(self._sets[index].values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache(name={self.name!r}, size={self.size_bytes}, assoc={self.assoc}, "
            f"sets={self.num_sets}, policy={self.policy.name})"
        )
