"""Set-associative cache model.

This is the building block for every cache in the system: the per-core L1s
and L2s, the shared LLC, the CTR cache in the memory controller, the
Merkle-tree node cache, and (via a custom policy) COSMOS's LCR-CTR cache.

The model is functional + statistical: it tracks residency, dirtiness and
policy metadata per line and reports hits/misses/evictions, but does not
model ports or MSHRs — consistent with the trace-driven methodology in
DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .access import BLOCK_SHIFT, BLOCK_SIZE
from .replacement import CacheLine, LRUPolicy, ReplacementPolicy
from .stats import CacheStats


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class Cache:
    """A set-associative cache addressed by block address.

    Args:
        size_bytes: Total capacity in bytes.
        assoc: Number of ways per set.
        block_size: Line size in bytes (default 64, matching the system).
        policy: Replacement policy instance; defaults to a fresh LRU.
        name: Label used in reports.
        writeback_sink: Optional callable invoked with the victim's block
            address whenever a dirty line is evicted.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        block_size: int = BLOCK_SIZE,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
        writeback_sink: Optional[Callable[[int], None]] = None,
    ) -> None:
        if block_size != (1 << BLOCK_SHIFT) and not _is_power_of_two(block_size):
            raise ValueError("block_size must be a power of two")
        if size_bytes % (assoc * block_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by assoc*block "
                f"({assoc}*{block_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_size = block_size
        self.num_sets = size_bytes // (assoc * block_size)
        if not _is_power_of_two(self.num_sets):
            raise ValueError(f"{name}: number of sets ({self.num_sets}) must be a power of two")
        self.policy = policy if policy is not None else LRUPolicy()
        self.stats = CacheStats()
        self.writeback_sink = writeback_sink
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def set_index(self, block_address: int) -> int:
        """Set index for ``block_address`` (a block, not byte, address)."""
        return block_address & (self.num_sets - 1)

    def tag(self, block_address: int) -> int:
        """Tag bits for ``block_address``."""
        return block_address >> self.num_sets.bit_length() - 1 if self.num_sets > 1 else block_address

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(self, block_address: int) -> bool:
        """Return True if the block is resident, without touching state."""
        index = self.set_index(block_address)
        return block_address in self._sets[index]

    def access(self, block_address: int, is_write: bool = False) -> bool:
        """Perform a demand access; returns True on hit.

        On a miss the block is *not* inserted automatically — callers decide
        whether/when to fill (e.g. after modelling the fill latency) via
        :meth:`fill`.
        """
        index = self.set_index(block_address)
        line = self._sets[index].get(block_address)
        if line is not None:
            self.stats.hits += 1
            if line.prefetched and not line.referenced:
                self.stats.prefetch_useful += 1
            line.referenced = True
            if is_write:
                line.dirty = True
            self.policy.on_hit(index, line, context=block_address << BLOCK_SHIFT)
            return True
        self.stats.misses += 1
        return False

    def access_and_fill(self, block_address: int, is_write: bool = False) -> bool:
        """Demand access that fills the block on a miss; returns True on hit."""
        if self.access(block_address, is_write):
            return True
        self.fill(block_address, dirty=is_write)
        return False

    def fill(self, block_address: int, dirty: bool = False, prefetched: bool = False) -> Optional[int]:
        """Insert a block, evicting a victim if the set is full.

        Returns:
            The evicted block address, or None when no eviction occurred.
        """
        index = self.set_index(block_address)
        target_set = self._sets[index]
        if block_address in target_set:
            line = target_set[block_address]
            if dirty:
                line.dirty = True
            return None
        evicted_address: Optional[int] = None
        if len(target_set) >= self.assoc:
            victim = self.policy.victim(index, list(target_set.values()))
            evicted_address = victim.tag
            self._evict_line(index, victim)
        line = CacheLine(block_address)
        line.dirty = dirty
        line.prefetched = prefetched
        target_set[block_address] = line
        self.policy.on_insert(index, line, context=block_address << BLOCK_SHIFT)
        return evicted_address

    def _evict_line(self, index: int, line: CacheLine) -> None:
        del self._sets[index][line.tag]
        self.stats.evictions += 1
        if line.prefetched and not line.referenced:
            self.stats.prefetch_evicted_unused += 1
        if line.dirty:
            self.stats.writebacks += 1
            if self.writeback_sink is not None:
                self.writeback_sink(line.tag)
        self.policy.on_evict(index, line)

    def invalidate(self, block_address: int) -> bool:
        """Drop a block if resident (no writeback); returns True if dropped."""
        index = self.set_index(block_address)
        line = self._sets[index].pop(block_address, None)
        return line is not None

    def get_line(self, block_address: int) -> Optional[CacheLine]:
        """Return the resident line's metadata, or None."""
        index = self.set_index(block_address)
        return self._sets[index].get(block_address)

    def flush(self) -> int:
        """Evict every resident line (issuing writebacks); returns count."""
        flushed = 0
        for index, target_set in enumerate(self._sets):
            for line in list(target_set.values()):
                self._evict_line(index, line)
                flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(target_set) for target_set in self._sets)

    @property
    def capacity_lines(self) -> int:
        """Maximum number of resident lines."""
        return self.num_sets * self.assoc

    def resident_blocks(self) -> List[int]:
        """All resident block addresses (order unspecified)."""
        blocks: List[int] = []
        for target_set in self._sets:
            blocks.extend(target_set.keys())
        return blocks

    def set_contents(self, index: int) -> Tuple[CacheLine, ...]:
        """Lines currently resident in set ``index``."""
        return tuple(self._sets[index].values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache(name={self.name!r}, size={self.size_bytes}, assoc={self.assoc}, "
            f"sets={self.num_sets}, policy={self.policy.name})"
        )
