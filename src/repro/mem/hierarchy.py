"""Multi-core cache hierarchy: per-core L1/L2 plus a shared LLC.

Geometry and latencies follow the paper's Table 3: per-core 32KB 2-way L1
(2 cycles) and 1MB 8-way L2 (20 cycles), and an 8MB 16-way shared LLC (128
cycles).  Dirty evictions out of the LLC are surfaced through a writeback
sink so the secure-memory engine can charge CTR-increment/MAC/re-encryption
work for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .access import MemoryAccess
from .cache import Cache
from .prefetchers import make_prefetcher


@dataclass
class LevelConfig:
    """Geometry + access latency for one cache level."""

    size_bytes: int
    assoc: int
    latency: int


@dataclass
class HierarchyConfig:
    """Per-core and shared cache level configuration (paper Table 3).

    ``l2_prefetcher`` names a per-core hardware prefetcher fed by the L1
    miss stream ("none"/"stride"/"next_line"/"berti").  A stride prefetcher
    is on by default, matching the Gem5 baseline the paper simulates:
    without one, a trace-driven model overstates how much a streaming
    workload suffers from sequential cache lookups — and therefore how
    much COSMOS's bypass helps it.
    """

    num_cores: int = 4
    l1: LevelConfig = field(default_factory=lambda: LevelConfig(32 * 1024, 2, 2))
    l2: LevelConfig = field(default_factory=lambda: LevelConfig(1024 * 1024, 8, 20))
    llc: LevelConfig = field(default_factory=lambda: LevelConfig(8 * 1024 * 1024, 16, 128))
    l2_prefetcher: str = "stride"

    def scaled_llc_for_cores(self) -> "HierarchyConfig":
        """Return a copy with the LLC scaled 2MB-per-core (paper Fig. 15).

        The paper's 8-core experiment uses a 16MB shared LLC; this helper
        applies the same 2MB/core scaling rule for any core count.
        """
        scaled = LevelConfig(2 * 1024 * 1024 * self.num_cores, self.llc.assoc, self.llc.latency)
        return HierarchyConfig(
            num_cores=self.num_cores,
            l1=self.l1,
            l2=self.l2,
            llc=scaled,
            l2_prefetcher=self.l2_prefetcher,
        )


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of walking the hierarchy for one access.

    For a fixed configuration only four outcomes exist, so the hierarchy
    hands back one of four pre-built frozen instances — the per-access
    walk allocates nothing.

    Attributes:
        hit_level: ``"L1"``, ``"L2"``, ``"LLC"`` or ``"MEM"``.
        lookup_latency: Cycles spent probing caches up to (and including)
            the level that hit, or through the LLC on a full miss.
        l1_miss: True when the access missed the (core-private) L1.
        needs_memory: True when the block must come from DRAM.
    """

    hit_level: str
    lookup_latency: int
    l1_miss: bool
    needs_memory: bool


class MemoryHierarchy:
    """Three-level multi-core hierarchy with inclusive fills.

    Args:
        config: Level geometry and latencies.
        memory_write_sink: Called with the block address of every dirty line
            evicted from the LLC (i.e. every DRAM write the hierarchy
            generates).
    """

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        memory_write_sink: Optional[Callable[[int], None]] = None,
        prefetch_fill_sink: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.config = config if config is not None else HierarchyConfig()
        cores = self.config.num_cores
        if cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.prefetch_fill_sink = prefetch_fill_sink
        self._prefetchers = None
        if self.config.l2_prefetcher and self.config.l2_prefetcher != "none":
            self._prefetchers = [
                make_prefetcher(self.config.l2_prefetcher) for _ in range(cores)
            ]
        self.memory_write_sink = memory_write_sink
        self.l1: List[Cache] = []
        self.l2: List[Cache] = []
        self.llc = Cache(
            self.config.llc.size_bytes,
            self.config.llc.assoc,
            name="LLC",
            writeback_sink=self._llc_writeback,
        )
        # Dirty evictions cascade down: L1 -> L2 -> LLC -> memory, so a
        # store eventually reaches the secure-memory write path no matter
        # which level it is evicted from.
        for core in range(cores):
            l2 = Cache(
                self.config.l2.size_bytes,
                self.config.l2.assoc,
                name=f"L2[{core}]",
                writeback_sink=lambda block: self.llc.fill(block, dirty=True),
            )
            l1 = Cache(
                self.config.l1.size_bytes,
                self.config.l1.assoc,
                name=f"L1[{core}]",
                writeback_sink=(lambda l2cache: lambda block: l2cache.fill(block, dirty=True))(l2),
            )
            self.l1.append(l1)
            self.l2.append(l2)
        l1_latency = self.config.l1.latency
        l2_latency = l1_latency + self.config.l2.latency
        llc_latency = l2_latency + self.config.llc.latency
        self._result_l1 = HierarchyResult("L1", l1_latency, False, False)
        self._result_l2 = HierarchyResult("L2", l2_latency, True, False)
        self._result_llc = HierarchyResult("LLC", llc_latency, True, False)
        self._result_mem = HierarchyResult("MEM", llc_latency, True, True)
        self._num_cores = cores

    def _llc_writeback(self, block_address: int) -> None:
        if self.memory_write_sink is not None:
            self.memory_write_sink(block_address)

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def access(self, access: MemoryAccess) -> HierarchyResult:
        """Walk the hierarchy for one access record (object-API adapter)."""
        return self.access_block(access.block_address, access.is_write, access.core)

    def access_block(self, block: int, is_write: bool, core: int) -> HierarchyResult:
        """Walk the hierarchy for one access, filling caches on the way back.

        This is the scalar fast path: block address, write flag and core
        arrive as plain scalars and the returned :class:`HierarchyResult`
        is one of four shared frozen instances, so the common L1-hit case
        touches no heap allocation.

        The walk is sequential (L1 -> L2 -> LLC) as in the baseline secure
        memory design; early/parallel CTR access is modelled by the secure
        designs on top of the returned :class:`HierarchyResult`.
        """
        if core >= self._num_cores:
            raise ValueError(
                f"access from core {core} but hierarchy has {self._num_cores} cores"
            )
        l1 = self.l1[core]
        if l1.access(block, is_write):
            return self._result_l1
        l2 = self.l2[core]
        llc = self.llc
        # Feed the per-core L2 prefetcher with the L1-miss stream (inlined:
        # this runs on every L1 miss).  Prefetched blocks fill L2 (and LLC
        # when they come from memory); fills from memory are reported
        # through ``prefetch_fill_sink`` so the owning design can charge
        # DRAM traffic — and, for protected designs, the counter fetch the
        # decryption needs.
        prefetchers = self._prefetchers
        if prefetchers is not None:
            for candidate in prefetchers[core].observe(block):
                if candidate < 0 or l2.lookup(candidate):
                    continue
                if not llc.lookup(candidate):
                    if self.prefetch_fill_sink is not None:
                        self.prefetch_fill_sink(candidate)
                    llc.fill(candidate, prefetched=True)
                l2.fill(candidate, prefetched=True)
        if l2.access(block, is_write):
            l1.fill(block, dirty=is_write)
            return self._result_l2
        if llc.access(block, is_write):
            l2.fill(block)
            l1.fill(block, dirty=is_write)
            return self._result_llc
        self.fill_from_memory(block, core, dirty=is_write)
        return self._result_mem

    def probe_on_chip(self, block_address: int, core: int) -> bool:
        """Non-destructive residency check across L1/L2/LLC for ``core``.

        Used as ground truth by the data-location predictor's training
        process (the "observable" in the paper's Sec. 4.1.2).
        """
        return (
            self.l1[core].lookup(block_address)
            or self.l2[core].lookup(block_address)
            or self.llc.lookup(block_address)
        )

    def fill_from_memory(self, block_address: int, core: int, dirty: bool = False) -> None:
        """Install a block fetched from DRAM into LLC, L2 and L1."""
        self.llc.fill(block_address)
        self.l2[core].fill(block_address)
        self.l1[core].fill(block_address, dirty=dirty)

    def flush(self) -> None:
        """Flush every level (dirty LLC lines reach the writeback sink)."""
        for cache in self.l1:
            cache.flush()
        for cache in self.l2:
            cache.flush()
        self.llc.flush()

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def l1_miss_rate(self) -> float:
        """Demand miss rate aggregated over all core-private L1s."""
        hits = sum(cache.stats.hits for cache in self.l1)
        misses = sum(cache.stats.misses for cache in self.l1)
        total = hits + misses
        return misses / total if total else 0.0

    def l2_miss_rate(self) -> float:
        """Demand miss rate aggregated over all core-private L2s."""
        hits = sum(cache.stats.hits for cache in self.l2)
        misses = sum(cache.stats.misses for cache in self.l2)
        total = hits + misses
        return misses / total if total else 0.0

    def llc_miss_rate(self) -> float:
        """Demand miss rate of the shared LLC."""
        return self.llc.stats.miss_rate
