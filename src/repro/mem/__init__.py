"""Memory-hierarchy substrate: caches, replacement, prefetchers, DRAM."""

from .access import BLOCK_SHIFT, BLOCK_SIZE, AccessType, MemoryAccess, block_base, block_of
from .cache import Cache
from .dram import DramModel, DramStats, DramTimings
from .hierarchy import HierarchyConfig, HierarchyResult, LevelConfig, MemoryHierarchy
from .paging import (
    PAGE_SHIFT,
    PAGE_SIZE,
    FirstTouchPageMapper,
    IdentityPageMapper,
    PageMapper,
    RandomizedPageMapper,
    remap_accesses,
)
from .prefetchers import (
    BertiPrefetcher,
    NextLinePrefetcher,
    NoPrefetcher,
    Prefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from .replacement import (
    CacheLine,
    LRUPolicy,
    MockingjayPolicy,
    RandomPolicy,
    ReplacementPolicy,
    RRIPPolicy,
    SHiPPolicy,
    make_policy,
)
from .stats import CacheStats, LatencyStats, TrafficStats

__all__ = [
    "AccessType",
    "BLOCK_SHIFT",
    "BLOCK_SIZE",
    "BertiPrefetcher",
    "Cache",
    "CacheLine",
    "CacheStats",
    "DramModel",
    "DramStats",
    "DramTimings",
    "FirstTouchPageMapper",
    "HierarchyConfig",
    "HierarchyResult",
    "IdentityPageMapper",
    "LRUPolicy",
    "LatencyStats",
    "LevelConfig",
    "MemoryAccess",
    "MemoryHierarchy",
    "MockingjayPolicy",
    "NextLinePrefetcher",
    "NoPrefetcher",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageMapper",
    "Prefetcher",
    "RRIPPolicy",
    "RandomPolicy",
    "RandomizedPageMapper",
    "ReplacementPolicy",
    "SHiPPolicy",
    "StridePrefetcher",
    "TrafficStats",
    "block_base",
    "block_of",
    "make_policy",
    "make_prefetcher",
    "remap_accesses",
]
