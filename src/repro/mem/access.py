"""Core memory-access data types shared across the simulator.

Every workload generator emits a stream of :class:`MemoryAccess` records and
every component of the memory hierarchy consumes them.  Addresses are byte
addresses; the cache-line granularity used throughout the project is 64 bytes
(:data:`BLOCK_SIZE`), matching the paper's configuration (Table 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Cache-line size in bytes used by the whole system (paper: 64B lines).
BLOCK_SIZE = 64

#: log2 of :data:`BLOCK_SIZE`; used to convert byte to block addresses.
BLOCK_SHIFT = 6


class AccessType(enum.IntEnum):
    """Kind of memory operation carried by a trace record."""

    READ = 0
    WRITE = 1


@dataclass(frozen=True)
class MemoryAccess:
    """One memory operation in a trace.

    Attributes:
        address: Byte address touched by the operation.
        type: Whether the operation reads or writes.
        core: Index of the core issuing the access (0-based).
    """

    address: int
    type: AccessType = AccessType.READ
    core: int = 0

    @property
    def block_address(self) -> int:
        """Cache-block (line) address of the access."""
        return self.address >> BLOCK_SHIFT

    @property
    def is_write(self) -> bool:
        """True when the access is a store."""
        return self.type == AccessType.WRITE


def block_of(address: int) -> int:
    """Return the cache-block address containing ``address``."""
    return address >> BLOCK_SHIFT


def block_base(address: int) -> int:
    """Return the byte address of the first byte of the enclosing block."""
    return (address >> BLOCK_SHIFT) << BLOCK_SHIFT
