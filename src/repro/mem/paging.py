"""Virtual-to-physical page mapping models.

The workload generators emit *virtual* addresses with contiguous
structures.  Real systems place those pages in physical memory according
to OS policy — and since counters cover 8KB of *physical* address space
(128 x 64B under MorphCtr), page placement directly shapes the spatial CTR
locality COSMOS exploits.  Three mappers model the interesting policies:

* :class:`IdentityPageMapper` — physical == virtual (the default used by
  the experiments; models a large-page / contiguous allocation).
* :class:`FirstTouchPageMapper` — pages get densely packed physical frames
  in first-touch order (a fresh-boot buddy allocator).
* :class:`RandomizedPageMapper` — pages land on pseudo-random frames (a
  fragmented machine, or deliberate randomisation for side-channel
  defence); this splits every 8KB counter granule across unrelated pages.

The ``ablation-paging`` experiment measures how much of COSMOS's benefit
survives each regime.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

from .access import MemoryAccess

#: Page size used by the mappers (4KB, the x86 base page).
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


class PageMapper:
    """Interface: translate byte addresses at page granularity."""

    name = "identity"

    def translate(self, address: int) -> int:
        """Physical address for virtual ``address``."""
        return address


class IdentityPageMapper(PageMapper):
    """Physical memory mirrors the virtual layout (contiguous)."""


class FirstTouchPageMapper(PageMapper):
    """Densely pack pages into frames in first-touch order.

    The first page touched gets frame 0, the second frame 1, and so on —
    different virtual structures interleave physically in access order.
    """

    name = "first_touch"

    def __init__(self, base_frame: int = 0) -> None:
        self._frames: Dict[int, int] = {}
        self._next = base_frame

    def translate(self, address: int) -> int:
        vpn = address >> PAGE_SHIFT
        frame = self._frames.get(vpn)
        if frame is None:
            frame = self._next
            self._next += 1
            self._frames[vpn] = frame
        return (frame << PAGE_SHIFT) | (address & (PAGE_SIZE - 1))

    @property
    def mapped_pages(self) -> int:
        """Number of pages allocated so far."""
        return len(self._frames)


class RandomizedPageMapper(PageMapper):
    """Assign pseudo-random, collision-free frames on first touch."""

    name = "randomized"

    def __init__(self, seed: int = 0, frame_space: int = 1 << 20) -> None:
        if frame_space <= 0:
            raise ValueError("frame_space must be positive")
        self._rng = random.Random(seed)
        self._frames: Dict[int, int] = {}
        self._used: set = set()
        self.frame_space = frame_space

    def translate(self, address: int) -> int:
        vpn = address >> PAGE_SHIFT
        frame = self._frames.get(vpn)
        if frame is None:
            if len(self._used) >= self.frame_space:
                raise RuntimeError("randomized mapper ran out of frames")
            while True:
                frame = self._rng.randrange(self.frame_space)
                if frame not in self._used:
                    break
            self._used.add(frame)
            self._frames[vpn] = frame
        return (frame << PAGE_SHIFT) | (address & (PAGE_SIZE - 1))

    @property
    def mapped_pages(self) -> int:
        """Number of pages allocated so far."""
        return len(self._frames)


def remap_accesses(
    accesses: Iterable[MemoryAccess], mapper: PageMapper
) -> List[MemoryAccess]:
    """Translate every access of a trace through ``mapper``.

    The mapping is deterministic per mapper instance, so two designs fed
    the remapped trace see identical physical streams.
    """
    return [
        MemoryAccess(mapper.translate(access.address), access.type, access.core)
        for access in accesses
    ]
