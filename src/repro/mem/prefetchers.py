"""Prefetchers evaluated against the CTR cache in the paper's Figure 5.

Three prefetchers are modelled: Next-Line, Stride and Berti (a local-delta
prefetcher).  Each observes the demand block-address stream of a cache and
suggests block addresses to prefetch.  Because our traces carry no program
counters, the stride and Berti tables are indexed by address region (page),
which is the standard PC-less adaptation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List


class Prefetcher:
    """Interface: observe a demand access, return blocks to prefetch."""

    name = "none"

    def observe(self, block_address: int) -> List[int]:
        """Consume one demand access; return prefetch candidates."""
        return []


class NoPrefetcher(Prefetcher):
    """Placeholder that never prefetches (the baseline)."""

    name = "none"


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential blocks after each access."""

    name = "next_line"

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree

    def observe(self, block_address: int) -> List[int]:
        return [block_address + offset for offset in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Classic stride prefetcher with a region-indexed reference table.

    For each region (64-block page) the table tracks the last block address
    and last stride; two consecutive accesses with the same stride move the
    entry to the *steady* state and trigger prefetches along that stride.
    """

    name = "stride"

    _INIT, _TRANSIENT, _STEADY = 0, 1, 2

    def __init__(self, table_entries: int = 256, degree: int = 2, region_shift: int = 6) -> None:
        self.table_entries = table_entries
        self.degree = degree
        self.region_shift = region_shift
        self._table: Dict[int, List[int]] = {}

    def _region(self, block_address: int) -> int:
        return (block_address >> self.region_shift) % self.table_entries

    _EMPTY: List[int] = []

    def observe(self, block_address: int) -> List[int]:
        # Runs on every L1 miss of every core: the region computation is
        # inlined, the table entry is mutated in place, and the no-prefetch
        # paths return a shared empty list (callers only iterate it).
        region = (block_address >> self.region_shift) % self.table_entries
        entry = self._table.get(region)
        if entry is None:
            self._table[region] = [block_address, 0, self._INIT]
            return self._EMPTY
        last_address, last_stride, state = entry
        stride = block_address - last_address
        if stride == 0:
            return self._EMPTY
        prefetches = self._EMPTY
        if stride == last_stride:
            if state == self._STEADY:
                prefetches = [
                    block_address + stride * step for step in range(1, self.degree + 1)
                ]
            new_state = self._STEADY
        else:
            new_state = self._TRANSIENT
        entry[0] = block_address
        entry[1] = stride
        entry[2] = new_state
        return prefetches


class BertiPrefetcher(Prefetcher):
    """Simplified Berti: learn the best-performing local delta per page.

    Berti tracks recent accesses per page and scores candidate deltas by how
    often a previous access plus the delta equals the current access (i.e.
    the delta would have produced a timely, accurate prefetch).  The delta
    with the highest confidence above a threshold is used for prefetching.
    """

    name = "berti"

    def __init__(
        self,
        history_per_page: int = 16,
        max_pages: int = 64,
        confidence_threshold: float = 0.35,
        degree: int = 1,
        page_shift: int = 6,
    ) -> None:
        self.history_per_page = history_per_page
        self.max_pages = max_pages
        self.confidence_threshold = confidence_threshold
        self.degree = degree
        self.page_shift = page_shift
        self._history: Dict[int, Deque[int]] = {}
        self._delta_hits: Dict[int, Dict[int, int]] = {}
        self._delta_tries: Dict[int, int] = {}

    def _page(self, block_address: int) -> int:
        return block_address >> self.page_shift

    def best_delta(self, page: int) -> int:
        """Highest-confidence learned delta for ``page`` (0 when none)."""
        hits = self._delta_hits.get(page)
        tries = self._delta_tries.get(page, 0)
        if not hits or tries == 0:
            return 0
        delta, count = max(hits.items(), key=lambda item: item[1])
        if count / tries >= self.confidence_threshold:
            return delta
        return 0

    def observe(self, block_address: int) -> List[int]:
        page = self._page(block_address)
        history = self._history.get(page)
        if history is None:
            if len(self._history) >= self.max_pages:
                oldest = next(iter(self._history))
                self._history.pop(oldest)
                self._delta_hits.pop(oldest, None)
                self._delta_tries.pop(oldest, None)
            history = deque(maxlen=self.history_per_page)
            self._history[page] = history
            self._delta_hits[page] = {}
            self._delta_tries[page] = 0
        # Score deltas: which previous access would have predicted this one?
        hits = self._delta_hits[page]
        self._delta_tries[page] = self._delta_tries.get(page, 0) + 1
        for previous in history:
            delta = block_address - previous
            if delta != 0 and abs(delta) <= (1 << self.page_shift):
                hits[delta] = hits.get(delta, 0) + 1
        history.append(block_address)
        delta = self.best_delta(page)
        if delta == 0:
            return []
        return [block_address + delta * step for step in range(1, self.degree + 1)]


_PREFETCHER_FACTORIES = {
    "none": NoPrefetcher,
    "next_line": NextLinePrefetcher,
    "stride": StridePrefetcher,
    "berti": BertiPrefetcher,
}


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Instantiate a prefetcher by name (``none``/``next_line``/``stride``/``berti``)."""
    try:
        factory = _PREFETCHER_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_PREFETCHER_FACTORIES))
        raise ValueError(f"unknown prefetcher {name!r}; expected one of: {known}")
    return factory(**kwargs)
