"""Cache replacement policies.

Implements the policies the paper evaluates in Figure 5 — LRU (the CTR-cache
baseline), RRIP, SHiP and Mockingjay — plus Random for testing.  Every policy
implements the small :class:`ReplacementPolicy` interface so caches stay
policy-agnostic; COSMOS's LCR policy (Algorithm 2) lives in
``repro.core.lcr_cache`` and plugs into the same interface.
"""

from __future__ import annotations

import random
from operator import attrgetter
from typing import Dict, Iterable, Optional


class CacheLine:
    """Metadata for one resident cache line.

    A single class is shared by all policies; each policy uses only the
    fields it needs.  ``locality_flag``/``locality_score`` are the extra 9
    bits per line that COSMOS's LCR-CTR cache adds (paper Table 2).
    """

    __slots__ = (
        "tag",
        "dirty",
        "prefetched",
        "referenced",
        "lru_tick",
        "rrpv",
        "signature",
        "outcome",
        "eta",
        "locality_flag",
        "locality_score",
    )

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.dirty = False
        self.prefetched = False
        self.referenced = False
        self.lru_tick = 0
        self.rrpv = 0
        self.signature = 0
        self.outcome = False
        self.eta = 0
        self.locality_flag = 1
        self.locality_score = 0


class ReplacementPolicy:
    """Interface every replacement policy implements.

    The cache calls :meth:`on_insert` when a line is filled, :meth:`on_hit`
    on every demand hit, :meth:`victim` to pick the line to evict from a full
    set, and :meth:`on_evict` when the chosen line leaves the cache.
    """

    name = "base"

    def on_insert(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        """Initialise policy state for a newly inserted line."""

    def on_hit(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        """Update policy state after a demand hit on ``line``."""

    def victim(self, set_index: int, lines: Iterable[CacheLine]) -> CacheLine:
        """Choose which of ``lines`` (a full set) to evict.

        ``lines`` is the cache's *live* set view (re-iterable, in insertion
        order) — policies may scan it as often as needed but must not
        add or remove residency; the eviction itself is the cache's job.
        """
        raise NotImplementedError

    def on_evict(self, set_index: int, line: CacheLine) -> None:
        """Observe the eviction of ``line`` (used for learning policies)."""


_BY_LRU_TICK = attrgetter("lru_tick")
_BY_ETA = attrgetter("eta")


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used via a global monotonic tick."""

    name = "lru"

    def __init__(self) -> None:
        self._tick = 0

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    def on_insert(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    def on_hit(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    def victim(self, set_index: int, lines: Iterable[CacheLine]) -> CacheLine:
        return min(lines, key=_BY_LRU_TICK)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random eviction; useful as a control in tests."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def victim(self, set_index: int, lines: Iterable[CacheLine]) -> CacheLine:
        return self._rng.choice(list(lines))


class RRIPPolicy(ReplacementPolicy):
    """Static RRIP (re-reference interval prediction).

    Paper configuration (Sec. 3.3): insertion RRPV 2, maximum RRPV 3, hits
    promote to RRPV 0, and the victim is any line at the maximum RRPV (aging
    every line when none is found).
    """

    name = "rrip"

    def __init__(self, max_rrpv: int = 3, insert_rrpv: int = 2) -> None:
        if insert_rrpv > max_rrpv:
            raise ValueError("insert_rrpv must not exceed max_rrpv")
        self.max_rrpv = max_rrpv
        self.insert_rrpv = insert_rrpv

    def on_insert(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        line.rrpv = self.insert_rrpv

    def on_hit(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        line.rrpv = 0

    def victim(self, set_index: int, lines: Iterable[CacheLine]) -> CacheLine:
        while True:
            for line in lines:
                if line.rrpv >= self.max_rrpv:
                    return line
            for line in lines:
                line.rrpv += 1


class SHiPPolicy(ReplacementPolicy):
    """Signature-based Hit Predictor (SHiP-mem variant).

    Signatures are derived from the memory region of the inserted block (our
    traces carry no PCs).  A table of saturating counters (SHCT) learns, per
    signature, whether lines are re-referenced; zero-counter signatures are
    inserted at distant RRPV.  Paper configuration: 16,384-entry SHCT and a
    maximum RRPV of 7.
    """

    name = "ship"

    def __init__(self, shct_entries: int = 16384, max_rrpv: int = 7, counter_max: int = 3) -> None:
        self.shct_entries = shct_entries
        self.max_rrpv = max_rrpv
        self.counter_max = counter_max
        self._shct: Dict[int, int] = {}

    def _signature(self, context: Optional[int]) -> int:
        if context is None:
            return 0
        return (context >> 10) % self.shct_entries

    def shct_value(self, signature: int) -> int:
        """Current saturating-counter value for ``signature``."""
        return self._shct.get(signature, self.counter_max // 2)

    def on_insert(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        signature = self._signature(context)
        line.signature = signature
        line.outcome = False
        if self.shct_value(signature) == 0:
            line.rrpv = self.max_rrpv
        else:
            line.rrpv = self.max_rrpv - 1

    def on_hit(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        line.rrpv = 0
        if not line.outcome:
            line.outcome = True
            value = self.shct_value(line.signature)
            self._shct[line.signature] = min(self.counter_max, value + 1)

    def victim(self, set_index: int, lines: Iterable[CacheLine]) -> CacheLine:
        while True:
            for line in lines:
                if line.rrpv >= self.max_rrpv:
                    return line
            for line in lines:
                line.rrpv += 1

    def on_evict(self, set_index: int, line: CacheLine) -> None:
        if not line.outcome:
            value = self.shct_value(line.signature)
            self._shct[line.signature] = max(0, value - 1)


class MockingjayPolicy(ReplacementPolicy):
    """Simplified Mockingjay: reuse-distance learning with ETA eviction.

    A sampled structure records the last access time per sampled block and
    learns an exponential moving average of observed reuse distances per
    address region.  Each resident line carries an estimated time of arrival
    (ETA); the victim is the line with the largest ETA.  This matches the
    modelling level the paper itself uses (Sec. 3.3: a 4,096-entry sampled
    cache that updates ETA values and evicts the highest-ETA block).
    """

    name = "mockingjay"

    def __init__(self, sampler_entries: int = 4096, default_reuse: int = 1 << 16) -> None:
        self.sampler_entries = sampler_entries
        self.default_reuse = default_reuse
        self._clock = 0
        self._last_seen: Dict[int, int] = {}
        self._predicted_reuse: Dict[int, int] = {}

    def _region(self, context: Optional[int]) -> int:
        if context is None:
            return 0
        return (context >> 12) % self.sampler_entries

    def _observe(self, context: Optional[int]) -> int:
        """Record an access and return the predicted reuse distance."""
        self._clock += 1
        region = self._region(context)
        if context is not None:
            previous = self._last_seen.get(context)
            if previous is not None:
                distance = self._clock - previous
                old = self._predicted_reuse.get(region, self.default_reuse)
                self._predicted_reuse[region] = (old * 3 + distance) // 4
            if len(self._last_seen) >= self.sampler_entries:
                self._last_seen.pop(next(iter(self._last_seen)))
            self._last_seen[context] = self._clock
        return self._predicted_reuse.get(region, self.default_reuse)

    def on_insert(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        line.eta = self._clock + self._observe(context)

    def on_hit(self, set_index: int, line: CacheLine, context: Optional[int] = None) -> None:
        line.eta = self._clock + self._observe(context)

    def victim(self, set_index: int, lines: Iterable[CacheLine]) -> CacheLine:
        return max(lines, key=_BY_ETA)


_POLICY_FACTORIES = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "rrip": RRIPPolicy,
    "ship": SHiPPolicy,
    "mockingjay": MockingjayPolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Args:
        name: One of ``lru``, ``random``, ``rrip``, ``ship``, ``mockingjay``.
        **kwargs: Forwarded to the policy constructor.

    Raises:
        ValueError: If ``name`` is not a known policy.
    """
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICY_FACTORIES))
        raise ValueError(f"unknown replacement policy {name!r}; expected one of: {known}")
    return factory(**kwargs)
