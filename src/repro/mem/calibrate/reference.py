"""Reference-shape comparison with per-point tolerance bands.

The checked-in profile JSONs carry, next to the timing knobs, the curves
the model produced at pin time.  :func:`compare_curve` re-measures and
checks every point against its band — ``|measured - reference| <=
max(tol_abs, tol_rel * |reference|)`` — and :func:`run_calibration`
assembles the per-curve comparisons into a JSON-able
:class:`CalibrationReport` (the artifact CI uploads).

Shape, not absolute nanoseconds, is the contract (the Ramulator 2.0
re-evaluation papers' method): the bands are tight enough to catch a
broken accounting term — the issue-order turnaround bug shifts the
turnaround sweep far outside its band — while absorbing the harmless
integer-cycle wobble of refitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from .patterns import Curve, run_microbenchmarks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .profiles import CalibrationProfile

#: Default tolerance band applied when a reference point carries none.
DEFAULT_TOL_REL = 0.08
DEFAULT_TOL_ABS = 2.0


@dataclass
class ReferenceCurve:
    """A pinned curve plus its tolerance band."""

    name: str
    xs: List[float]
    ys: List[float]
    tol_rel: float = DEFAULT_TOL_REL
    tol_abs: float = DEFAULT_TOL_ABS

    def band(self, reference: float) -> float:
        """Allowed absolute deviation around one reference value."""
        return max(self.tol_abs, self.tol_rel * abs(reference))

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "xs": list(self.xs),
            "ys": list(self.ys),
            "tol_rel": self.tol_rel,
            "tol_abs": self.tol_abs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReferenceCurve":
        return cls(
            name=str(data["name"]),
            xs=[float(x) for x in data["xs"]],
            ys=[float(y) for y in data["ys"]],
            tol_rel=float(data.get("tol_rel", DEFAULT_TOL_REL)),
            tol_abs=float(data.get("tol_abs", DEFAULT_TOL_ABS)),
        )

    @classmethod
    def from_curve(
        cls,
        curve: Curve,
        tol_rel: float = DEFAULT_TOL_REL,
        tol_abs: float = DEFAULT_TOL_ABS,
    ) -> "ReferenceCurve":
        return cls(
            name=curve.name,
            xs=list(curve.xs),
            ys=list(curve.ys),
            tol_rel=tol_rel,
            tol_abs=tol_abs,
        )


@dataclass
class PointCheck:
    """One curve point against its band."""

    x: float
    measured: float
    reference: float
    band: float
    ok: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "x": self.x,
            "measured": self.measured,
            "reference": self.reference,
            "band": self.band,
            "ok": self.ok,
        }


@dataclass
class CurveComparison:
    """All points of one measured curve against its reference."""

    name: str
    points: List[PointCheck] = field(default_factory=list)
    #: Largest |measured - reference| / max(|reference|, 1) over the curve.
    max_rel_err: float = 0.0

    @property
    def ok(self) -> bool:
        return all(point.ok for point in self.points)

    @property
    def failed_points(self) -> List[PointCheck]:
        return [point for point in self.points if not point.ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "max_rel_err": self.max_rel_err,
            "points": [point.to_dict() for point in self.points],
        }


def compare_curve(measured: Curve, reference: ReferenceCurve) -> CurveComparison:
    """Check every measured point against the reference band.

    The x grids must match exactly — a changed sweep is a changed
    microbenchmark, not a tolerable deviation.
    """
    if [float(x) for x in measured.xs] != [float(x) for x in reference.xs]:
        raise ValueError(
            f"curve {measured.name!r}: measured x grid {measured.xs} does not "
            f"match reference grid {reference.xs}"
        )
    comparison = CurveComparison(name=measured.name)
    for x, got, want in zip(measured.xs, measured.ys, reference.ys):
        band = reference.band(want)
        ok = abs(got - want) <= band
        comparison.points.append(
            PointCheck(x=x, measured=got, reference=want, band=band, ok=ok)
        )
        rel = abs(got - want) / max(abs(want), 1.0)
        comparison.max_rel_err = max(comparison.max_rel_err, rel)
    return comparison


@dataclass
class CalibrationReport:
    """Outcome of one calibration run: measured curves vs pinned reference."""

    profile: str
    comparisons: List[CurveComparison] = field(default_factory=list)
    curves: List[Curve] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.comparisons) and all(c.ok for c in self.comparisons)

    def to_dict(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "ok": self.ok,
            "comparisons": [c.to_dict() for c in self.comparisons],
            "curves": [curve.to_dict() for curve in self.curves],
        }


def run_calibration(
    profile: "CalibrationProfile",
    references: Optional[Sequence[ReferenceCurve]] = None,
    requests: int = 2048,
) -> CalibrationReport:
    """Replay the microbenchmark suite for ``profile`` and compare.

    ``references`` defaults to the curves pinned in the profile's JSON;
    only curves present in the reference set are compared (so a profile
    may pin a subset).
    """
    if references is None:
        from .profiles import load_reference

        references = load_reference(profile.name)
    by_name = {ref.name: ref for ref in references}
    curves = run_microbenchmarks(
        profile.build_model, requests=requests, include=list(by_name)
    )
    report = CalibrationReport(profile=profile.name, curves=curves)
    for curve in curves:
        report.comparisons.append(compare_curve(curve, by_name[curve.name]))
    return report
