"""DRAM timing-model calibration against Ramulator-2.0-shaped ground truth.

PR 5 rebuilt :class:`~repro.mem.dram.DramModel` as an honest bank-state
machine; this package makes it a *validated* one (ROADMAP item 5).  The
method follows the two Ramulator 2.0 re-evaluation papers (PAPERS.md):
replay published microbenchmark *patterns*, compare curve *shapes* within
per-point tolerance bands, and fit the timing knobs by least squares.

* :mod:`~repro.mem.calibrate.patterns` — the microbenchmark replay
  harness: row-hit/row-miss ladders, read<->write turnaround sweeps,
  bank-level-parallelism curves and refresh-interference probes, each
  driving ``DramModel.request`` directly and recording a
  latency/bandwidth/row-hit-rate :class:`Curve`.
* :mod:`~repro.mem.calibrate.reference` — the shape comparator: checked-in
  reference curves with per-point tolerance bands, per-curve comparisons
  and a JSON-able :class:`CalibrationReport`.
* :mod:`~repro.mem.calibrate.fit` — a deterministic least-squares
  coordinate-descent fitter over the :class:`~repro.mem.dram.DramTimings`
  knobs.
* :mod:`~repro.mem.calibrate.profiles` — pinned calibration profiles
  (JSON per DDR4/DDR5 geometry, shipped under ``profiles/``), loadable by
  name from :class:`~repro.secure.engine.EngineConfig.dram_profile`.

``python -m repro verify dram-calib`` runs the seeded calibration check
against a pinned profile and exits non-zero if any curve point leaves its
tolerance band; CI runs it and uploads the curve-comparison artifact.
"""

from .fit import FitResult, curve_error, fit_timings
from .patterns import (
    Curve,
    blp_curve,
    refresh_probe,
    row_hit_ladder,
    run_microbenchmarks,
    turnaround_sweep,
)
from .profiles import (
    CalibrationProfile,
    available_profiles,
    load_profile,
    load_reference,
    pin_profile,
)
from .reference import (
    CalibrationReport,
    CurveComparison,
    PointCheck,
    ReferenceCurve,
    compare_curve,
    run_calibration,
)

__all__ = [
    "CalibrationProfile",
    "CalibrationReport",
    "Curve",
    "CurveComparison",
    "FitResult",
    "PointCheck",
    "ReferenceCurve",
    "available_profiles",
    "blp_curve",
    "compare_curve",
    "curve_error",
    "fit_timings",
    "load_profile",
    "load_reference",
    "pin_profile",
    "refresh_probe",
    "row_hit_ladder",
    "run_calibration",
    "run_microbenchmarks",
    "turnaround_sweep",
]
