"""Microbenchmark replay harness for the DRAM bank-state model.

Each microbenchmark is a pure function of a *model factory*: it builds a
fresh :class:`~repro.mem.dram.DramModel` per sweep point, drives
``DramModel.request`` with a synthetic pattern published by the DRAM
characterisation literature (the Ramulator 2.0 re-evaluation papers'
microbenchmarks), and records one :class:`Curve`.

The four patterns, and what each isolates:

* :func:`row_hit_ladder` — closed-loop streams with a controlled number
  of column hits per opened row; isolates the row-hit vs row-miss
  latency split (tCL vs tRP+tRCD+tCL).
* :func:`turnaround_sweep` — bus-saturating open-loop stream whose
  read/write direction flips every ``period`` requests; isolates the
  read<->write turnaround gap (and is the pattern that exposed the
  issue-order turnaround accounting bug).
* :func:`blp_curve` — row-missing round-robin burst over a growing set
  of banks, all issued back to back; isolates bank-level parallelism
  (achieved bus utilisation flattens once every bank is in flight).
* :func:`refresh_probe` — fixed-gap row-hit stream spanning many tREFI
  windows, differenced against a refresh-disabled twin; isolates the
  per-request refresh interference (absorbed under saturation,
  ~ tRFC x gap / tREFI once requests arrive sparsely).

Everything is deterministic: no RNG, no wall clock — the same factory
yields byte-identical curves, which is what lets the reference curves be
checked-in JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..dram import DramModel

#: A factory returning a *fresh* model (fresh timings, fresh state) per call.
ModelFactory = Callable[[], DramModel]

#: Default sweep points (clamped to the model geometry where needed).
DEFAULT_HITS_PER_ROW = (1, 2, 4, 8, 16, 32)
DEFAULT_TURNAROUND_PERIODS = (1, 2, 4, 8, 16, 32)
DEFAULT_BLP_BANKS = (1, 2, 4, 8, 16, 32)
DEFAULT_REFRESH_GAPS = (16, 64, 256, 1024)


@dataclass
class Curve:
    """One measured microbenchmark curve (parallel ``xs``/``ys``).

    ``extra`` carries secondary per-point series (row-hit rate, counted
    turnarounds, ...) that ride along into reports but are not part of
    the tolerance-banded comparison.
    """

    name: str
    x_label: str
    y_label: str
    xs: List[float]
    ys: List[float]
    extra: Dict[str, List[float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "xs": list(self.xs),
            "ys": list(self.ys),
            "extra": {key: list(values) for key, values in self.extra.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Curve":
        return cls(
            name=str(data["name"]),
            x_label=str(data.get("x_label", "x")),
            y_label=str(data.get("y_label", "y")),
            xs=[float(x) for x in data["xs"]],
            ys=[float(y) for y in data["ys"]],
            extra={
                str(key): [float(v) for v in values]
                for key, values in dict(data.get("extra", {})).items()
            },
        )


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------
def row_hit_ladder(
    factory: ModelFactory,
    hits_per_row: Sequence[int] = DEFAULT_HITS_PER_ROW,
    requests: int = 2048,
) -> Curve:
    """Average read latency vs column accesses per opened row.

    For each ladder rung ``k`` a fresh model streams closed-loop reads
    that touch ``k`` sequential columns of a row before activating the
    next row *of the same bank* — so the expected row-hit rate is
    exactly ``(k-1)/k`` and the curve must fall monotonically from the
    pure row-miss latency toward the pure row-hit latency.
    """
    xs: List[float] = []
    ys: List[float] = []
    hit_rates: List[float] = []
    for k in hits_per_row:
        model = factory()
        columns = model.row_size_bytes >> 6
        run = max(1, min(int(k), columns))
        now = 0
        issued = 0
        row = 0
        while issued < requests:
            for column in range(run):
                if issued >= requests:
                    break
                block = model.encode(0, 0, row, column)
                now += 1 + model.request(block, now=now)
                issued += 1
            row += 1
        xs.append(float(run))
        ys.append(model.average_read_latency())
        hit_rates.append(model.stats.row_hit_rate)
    return Curve(
        name="row_hit_ladder",
        x_label="column hits per opened row",
        y_label="average read latency (cycles)",
        xs=xs,
        ys=ys,
        extra={"row_hit_rate": hit_rates},
    )


def turnaround_sweep(
    factory: ModelFactory,
    periods: Sequence[int] = DEFAULT_TURNAROUND_PERIODS,
    requests: int = 1024,
) -> Curve:
    """Average latency vs read/write direction-switch period.

    A bus-saturating open-loop stream (one request per ``burst`` cycles,
    round-robin across all banks on open rows) whose direction flips
    every ``period`` requests.  Short periods insert a turnaround gap
    into nearly every back-to-back burst pair, so average latency must
    fall monotonically as the period grows.  ``extra['turnarounds']``
    records how many switches actually delayed a burst — the
    grant-order accounting this sweep exists to pin down.
    """
    xs: List[float] = []
    ys: List[float] = []
    switch_counts: List[float] = []
    for period in periods:
        period = max(1, int(period))
        model = factory()
        burst = model.timings.burst
        banks = model.num_banks
        columns = model.row_size_bytes >> 6
        # Warm one open row per bank so the sweep measures the bus, not
        # activates; the warmup's stats are discarded.
        now = 0
        for bank in range(banks):
            now += 1 + model.request(model.encode(0, bank, 0, 0), now=now)
        model.reset_stats()
        total = 0
        start_cycle = now
        for index in range(requests):
            bank = index % banks
            column = 1 + (index // banks) % (columns - 1) if columns > 1 else 0
            is_write = (index // period) % 2 == 1
            block = model.encode(0, bank, 0, column)
            issue = start_cycle + index * burst
            total += model.request(block, is_write=is_write, now=issue)
        xs.append(float(period))
        ys.append(total / requests)
        switch_counts.append(float(model.stats.turnarounds))
    return Curve(
        name="turnaround_sweep",
        x_label="requests per bus direction",
        y_label="average latency (cycles)",
        xs=xs,
        ys=ys,
        extra={"turnarounds": switch_counts},
    )


def blp_curve(
    factory: ModelFactory,
    banks_used: Sequence[int] = DEFAULT_BLP_BANKS,
    requests: int = 512,
) -> Curve:
    """Achieved bus utilisation vs number of banks kept in flight.

    Every request is a row activation (two rows of each bank alternate),
    issued back to back round-robin across the first ``b`` banks.  With
    one bank the row cycle serialises everything; adding banks overlaps
    activates until the data bus (one ``burst`` per request) or the bank
    count saturates.  ``b`` is clamped to the geometry, so the curve
    flattens exactly at ``num_banks``.
    """
    xs: List[float] = []
    ys: List[float] = []
    latencies: List[float] = []
    for b in banks_used:
        model = factory()
        burst = model.timings.burst
        used = max(1, min(int(b), model.num_banks))
        makespan_end = 0
        for index in range(requests):
            bank = index % used
            row = (index // used) % 2  # alternate rows: always a miss
            block = model.encode(0, bank, row, 0)
            latency = model.request(block, now=index)
            makespan_end = max(makespan_end, index + latency)
        makespan = max(1, makespan_end)
        xs.append(float(used))
        ys.append(requests * burst / makespan)
        latencies.append(model.average_read_latency())
    return Curve(
        name="blp_curve",
        x_label="banks in flight",
        y_label="achieved bus utilisation",
        xs=xs,
        ys=ys,
        extra={"avg_latency": latencies},
    )


def refresh_probe(
    factory: ModelFactory,
    gaps: Sequence[int] = DEFAULT_REFRESH_GAPS,
    windows: int = 8,
) -> Curve:
    """Per-request refresh interference vs request inter-arrival gap.

    Streams same-bank row hits at a fixed ``gap`` across ``windows``
    tREFI windows and differences the total latency against a
    refresh-disabled twin of the same model.  The curve captures the
    model's three refresh regimes: at saturating gaps the tRFC stall is
    fully absorbed by the bank backlog (overhead ~ 0), at moderate gaps
    each stall knocks on into the requests draining behind it
    (overhead peaks), and at wide gaps each stall lands on a single
    request (overhead ~ ``refresh_cycles * gap / refresh_interval``).
    """
    xs: List[float] = []
    ys: List[float] = []
    stall_counts: List[float] = []
    for gap in gaps:
        gap = max(1, int(gap))
        model = factory()
        interval = model.timings.refresh_interval
        if interval <= 0:
            raise ValueError(
                "refresh_probe needs refresh_interval > 0 in the profile"
            )
        baseline = factory()
        baseline.timings = replace(baseline.timings, refresh_interval=0)
        requests = max(1, (interval * windows) // gap)
        total = 0
        base_total = 0
        for index in range(requests):
            block = index % (model.row_size_bytes >> 6)
            now = index * gap
            total += model.request(block, now=now)
            base_total += baseline.request(block, now=now)
        xs.append(float(gap))
        ys.append((total - base_total) / requests)
        stall_counts.append(float(model.stats.refresh_stalls))
    return Curve(
        name="refresh_probe",
        x_label="request inter-arrival gap (cycles)",
        y_label="refresh overhead per request (cycles)",
        xs=xs,
        ys=ys,
        extra={"refresh_stalls": stall_counts},
    )


# ----------------------------------------------------------------------
# The full suite
# ----------------------------------------------------------------------
def run_microbenchmarks(
    factory: ModelFactory,
    requests: int = 2048,
    hits_per_row: Sequence[int] = DEFAULT_HITS_PER_ROW,
    periods: Sequence[int] = DEFAULT_TURNAROUND_PERIODS,
    banks_used: Sequence[int] = DEFAULT_BLP_BANKS,
    gaps: Sequence[int] = DEFAULT_REFRESH_GAPS,
    include: Optional[Sequence[str]] = None,
) -> List[Curve]:
    """Run the standard microbenchmark suite; returns one Curve each.

    ``include`` filters by curve name (``None`` runs all four);
    ``requests`` scales every pattern's length together (the fitter uses
    a reduced budget per evaluation).
    """
    runners = {
        "row_hit_ladder": lambda: row_hit_ladder(
            factory, hits_per_row=hits_per_row, requests=requests
        ),
        "turnaround_sweep": lambda: turnaround_sweep(
            factory, periods=periods, requests=max(64, requests // 2)
        ),
        "blp_curve": lambda: blp_curve(
            factory, banks_used=banks_used, requests=max(64, requests // 4)
        ),
        "refresh_probe": lambda: refresh_probe(factory, gaps=gaps),
    }
    names = list(runners) if include is None else [
        name for name in runners if name in set(include)
    ]
    return [runners[name]() for name in names]
