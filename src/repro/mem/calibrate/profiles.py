"""Pinned calibration profiles: named (geometry, timings, reference) sets.

A profile JSON under ``profiles/`` fully determines a calibrated
:class:`~repro.mem.dram.DramModel`: the geometry, the timing knobs, and
the microbenchmark curves the model produced when the profile was pinned
(the reference the :mod:`~repro.mem.calibrate.reference` comparator
checks against).  Profiles are loadable by name from experiment configs
via :class:`~repro.secure.engine.EngineConfig.dram_profile`.

File layout (``format: 1``)::

    {
      "format": 1,
      "profile": {"name", "description", "geometry", "timings", "provenance"},
      "tolerance": {"rel": 0.08, "abs": 2.0},
      "curves": [{"name", "xs", "ys", "tol_rel", "tol_abs", ...}, ...]
    }

:func:`pin_profile` regenerates a file from live measurements — run it
after any deliberate timing-model change, exactly like re-pinning golden
metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..dram import DramModel, DramTimings
from .patterns import run_microbenchmarks
from .reference import DEFAULT_TOL_ABS, DEFAULT_TOL_REL, ReferenceCurve

#: Where the checked-in profile JSONs live (shipped with the package).
PROFILE_DIR = Path(__file__).parent / "profiles"

#: Profile name used when a config enables calibration without naming one.
DEFAULT_PROFILE = "ddr4-2400"

FORMAT_VERSION = 1


@dataclass
class CalibrationProfile:
    """A named, calibrated DRAM configuration (geometry + timings)."""

    name: str
    timings: DramTimings
    num_banks: int = 16
    num_channels: int = 1
    row_size_bytes: int = 2048
    description: str = ""
    #: Where the reference shapes/values came from (free-form, for humans).
    provenance: str = ""

    def build_model(self) -> DramModel:
        """A fresh :class:`DramModel` configured per this profile."""
        return DramModel(
            timings=self.timings,
            num_banks=self.num_banks,
            num_channels=self.num_channels,
            row_size_bytes=self.row_size_bytes,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "geometry": {
                "num_banks": self.num_banks,
                "num_channels": self.num_channels,
                "row_size_bytes": self.row_size_bytes,
            },
            "timings": {
                f.name: getattr(self.timings, f.name)
                for f in fields(DramTimings)
            },
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CalibrationProfile":
        geometry = dict(data.get("geometry", {}))
        known = {f.name for f in fields(DramTimings)}
        timings_data = {
            key: int(value)
            for key, value in dict(data.get("timings", {})).items()
            if key in known
        }
        return cls(
            name=str(data["name"]),
            timings=DramTimings(**timings_data),
            num_banks=int(geometry.get("num_banks", 16)),
            num_channels=int(geometry.get("num_channels", 1)),
            row_size_bytes=int(geometry.get("row_size_bytes", 2048)),
            description=str(data.get("description", "")),
            provenance=str(data.get("provenance", "")),
        )


def _profile_path(name: str, directory: Optional[Path] = None) -> Path:
    base = directory if directory is not None else PROFILE_DIR
    return base / f"{name}.json"


def available_profiles(directory: Optional[Path] = None) -> List[str]:
    """Names of every profile JSON shipped (or present in ``directory``)."""
    base = directory if directory is not None else PROFILE_DIR
    if not base.is_dir():
        return []
    return sorted(path.stem for path in base.glob("*.json"))


def _read(name: str, directory: Optional[Path] = None) -> Dict[str, object]:
    path = _profile_path(name, directory)
    if not path.is_file():
        known = ", ".join(available_profiles(directory)) or "<none>"
        raise FileNotFoundError(
            f"no calibration profile {name!r} at {path} (available: {known})"
        )
    with path.open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    version = int(data.get("format", 0))
    if version != FORMAT_VERSION:
        raise ValueError(
            f"profile {name!r} has format {version}, expected {FORMAT_VERSION}"
        )
    return data


def load_profile(
    name: str, directory: Optional[Path] = None
) -> CalibrationProfile:
    """Load a pinned profile by name (e.g. ``"ddr4-2400"``)."""
    data = _read(name, directory)
    return CalibrationProfile.from_dict(dict(data["profile"]))


def load_reference(
    name: str, directory: Optional[Path] = None
) -> List[ReferenceCurve]:
    """Load the reference curves pinned alongside a profile."""
    data = _read(name, directory)
    tolerance = dict(data.get("tolerance", {}))
    rel = float(tolerance.get("rel", DEFAULT_TOL_REL))
    abs_tol = float(tolerance.get("abs", DEFAULT_TOL_ABS))
    references = []
    for entry in data.get("curves", []):
        entry = dict(entry)
        entry.setdefault("tol_rel", rel)
        entry.setdefault("tol_abs", abs_tol)
        references.append(ReferenceCurve.from_dict(entry))
    return references


def pin_profile(
    profile: CalibrationProfile,
    directory: Optional[Path] = None,
    requests: int = 2048,
    tol_rel: float = DEFAULT_TOL_REL,
    tol_abs: float = DEFAULT_TOL_ABS,
    include: Optional[Sequence[str]] = None,
) -> Path:
    """Measure the microbenchmark suite and write the profile JSON.

    Returns the path written.  This is the re-pin entry point
    (``python -m repro verify dram-calib --pin``) for deliberate timing
    changes; the diff of the curve values documents the change.
    """
    curves = run_microbenchmarks(
        profile.build_model, requests=requests, include=include
    )
    payload = {
        "format": FORMAT_VERSION,
        "profile": profile.to_dict(),
        "tolerance": {"rel": tol_rel, "abs": tol_abs},
        "curves": [
            {
                **curve.to_dict(),
                "tol_rel": tol_rel,
                "tol_abs": tol_abs,
            }
            for curve in curves
        ],
    }
    base = directory if directory is not None else PROFILE_DIR
    base.mkdir(parents=True, exist_ok=True)
    path = _profile_path(profile.name, base)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def builtin_profiles() -> List[CalibrationProfile]:
    """The profile definitions this repo pins (DDR4 + DDR5 geometries).

    * ``ddr4-2400`` — the paper's DDR4_2400_16x4 channel: the
      :class:`DramTimings` defaults (tCL/tRCD/tRP ~ 13.75ns at 3 GHz).
    * ``ddr5-4800`` — a DDR5-4800 single channel: higher cycle counts
      for the core timings (absolute nanoseconds similar, doubled data
      rate halves the burst duration), 32 banks, and the finer per-bank
      refresh cadence (tREFI/2, tRFC ~ 295ns).
    """
    ddr4 = CalibrationProfile(
        name="ddr4-2400",
        timings=DramTimings(),
        num_banks=16,
        num_channels=1,
        row_size_bytes=2048,
        description="DDR4-2400 16-bank channel (paper Table 3 geometry)",
        provenance=(
            "DramTimings defaults: tCL=tRCD=tRP=13.75ns, tCWL=10ns, "
            "tWR=15ns, tREFI=7.8us, tRFC=350ns at a 3 GHz core clock; "
            "shapes validated against the Ramulator 2.0 re-evaluation "
            "microbenchmarks (PAPERS.md)."
        ),
    )
    ddr5 = CalibrationProfile(
        name="ddr5-4800",
        timings=DramTimings(
            cas=50,
            rcd=50,
            rp=50,
            burst=10,
            cwl=47,
            wr=90,
            turnaround=8,
            queue_penalty=6,
            refresh_interval=11_700,
            refresh_cycles=885,
        ),
        num_banks=32,
        num_channels=1,
        row_size_bytes=2048,
        description="DDR5-4800 32-bank channel",
        provenance=(
            "JEDEC DDR5-4800B: tCL=tRCD=tRP~16.7ns, tCWL~15.6ns, "
            "tWR=30ns, same-bank refresh tREFI/2=3.9us, tRFC=295ns at a "
            "3 GHz core clock; BL16 at 4800 MT/s ~ 3.3ns data burst "
            "(modelled as 10 core cycles)."
        ),
    )
    return [ddr4, ddr5]
