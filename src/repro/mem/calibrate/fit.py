"""Least-squares fitting of ``DramTimings`` knobs to reference curves.

The model's knobs are integer CPU-cycle counts, the objective is a sum
of squared relative curve errors, and there is no gradient — so the
fitter is plain coordinate descent with a shrinking integer step
schedule.  It is fully deterministic for a fixed seed: the only
randomness is the knob visit order, drawn from ``random.Random(seed)``,
and every objective evaluation replays the same microbenchmark suite at
the same request budget the references were measured at.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..dram import DramModel, DramTimings
from .patterns import Curve, run_microbenchmarks
from .reference import ReferenceCurve

#: Knobs the fitter is allowed to move (integer cycle counts).  Geometry
#: knobs (burst length, refresh cadence) are part of the profile's
#: identity, not free parameters.
FIT_KNOBS: Tuple[str, ...] = (
    "cas",
    "rcd",
    "rp",
    "cwl",
    "wr",
    "turnaround",
    "queue_penalty",
)

#: Shrinking integer step schedule for the coordinate descent.
STEP_SCHEDULE: Tuple[int, ...] = (8, 4, 2, 1)


def curve_error(measured: Curve, reference: ReferenceCurve) -> float:
    """Sum of squared relative errors between a curve and its reference.

    Each point is normalised by ``max(|reference|, 1)`` so curves on
    different scales (latency in hundreds of cycles, utilisation in
    [0, 1]) contribute comparably to a combined objective.
    """
    if len(measured.ys) != len(reference.ys):
        raise ValueError(
            f"curve {measured.name!r}: {len(measured.ys)} measured points vs "
            f"{len(reference.ys)} reference points"
        )
    error = 0.0
    for got, want in zip(measured.ys, reference.ys):
        rel = (got - want) / max(abs(want), 1.0)
        error += rel * rel
    return error


@dataclass
class FitResult:
    """Outcome of one :func:`fit_timings` run."""

    timings: DramTimings
    error: float
    initial_error: float
    evaluations: int
    #: Knob -> (initial value, fitted value); only knobs that moved.
    adjusted: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "error": self.error,
            "initial_error": self.initial_error,
            "evaluations": self.evaluations,
            "adjusted": {
                knob: {"from": old, "to": new}
                for knob, (old, new) in self.adjusted.items()
            },
            "timings": {
                knob: getattr(self.timings, knob) for knob in FIT_KNOBS
            },
        }


def fit_timings(
    references: Sequence[ReferenceCurve],
    initial: Optional[DramTimings] = None,
    knobs: Sequence[str] = FIT_KNOBS,
    seed: int = 0,
    requests: int = 2048,
    num_channels: int = 1,
    num_banks: int = 16,
    max_rounds: int = 8,
) -> FitResult:
    """Fit timing knobs so the microbenchmark curves match ``references``.

    Coordinate descent: visit the knobs in a seeded random order, try
    ``+/- step`` for each step in the shrinking schedule, keep any move
    that lowers the combined :func:`curve_error` objective, and stop
    after a full round with no improvement (or ``max_rounds``).

    ``requests`` must match the budget the references were measured at
    (the open-loop sweeps are backlog-dominated, so their absolute
    values depend on stream length); the default matches
    :func:`~repro.mem.calibrate.profiles.pin_profile`.  Knobs that only
    appear summed in the patterns (tRP + tRCD + tCL) are recovered up to
    that sum — least squares cannot split what the curves do not
    separate.
    """
    base = initial if initial is not None else DramTimings()
    names = [ref.name for ref in references]
    by_name = {ref.name: ref for ref in references}
    rng = random.Random(seed)
    evaluations = 0

    def objective(timings: DramTimings) -> float:
        nonlocal evaluations
        evaluations += 1
        factory = lambda: DramModel(
            timings=timings, num_channels=num_channels, num_banks=num_banks
        )
        curves = run_microbenchmarks(factory, requests=requests, include=names)
        return sum(curve_error(curve, by_name[curve.name]) for curve in curves)

    current = base
    best = objective(current)
    initial_error = best
    for _ in range(max_rounds):
        improved = False
        order = list(knobs)
        rng.shuffle(order)
        for knob in order:
            for step in STEP_SCHEDULE:
                for direction in (1, -1):
                    value = getattr(current, knob) + direction * step
                    if value < 0:
                        continue
                    candidate = replace(current, **{knob: value})
                    error = objective(candidate)
                    if error < best:
                        current, best = candidate, error
                        improved = True
        if not improved:
            break

    adjusted = {
        knob: (getattr(base, knob), getattr(current, knob))
        for knob in knobs
        if getattr(base, knob) != getattr(current, knob)
    }
    return FitResult(
        timings=current,
        error=best,
        initial_error=initial_error,
        evaluations=evaluations,
        adjusted=adjusted,
    )
