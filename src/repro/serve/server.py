"""The experiment server: an asyncio job-queue over the result cache.

``python -m repro serve`` turns the simulator into a long-running
backend.  Clients submit design×workload×seed matrices over the NDJSON
protocol (:mod:`repro.serve.protocol`); the server

* answers **cache hits** straight from the content-addressed
  :class:`~repro.exec.cache.ResultCache` (with a small in-memory hot set
  on top) without touching a worker,
* **dedupes in-flight work** through the shared
  :class:`~repro.exec.scheduler.InflightTable` — N clients submitting the
  same cell pay for exactly one execution and all receive the result,
* **shards** the remaining cells across a pool of worker processes
  (reusing :func:`repro.exec.worker.run_job`, with per-job timeout,
  bounded retry, crashed-pool rebuild and graceful thread fallback), and
* applies **back-pressure**: a submit that would push the pending queue
  past ``queue_limit`` is rejected with a polite ``retry`` frame and a
  ``retry_after`` estimate instead of growing memory without bound, and
* **streams telemetry** (protocol v2): a ``subscribe`` frame starts a
  periodic ``window`` stream — server metrics snapshots, live
  :class:`~repro.obs.timeseries.SimSampler` rows and event-ring deltas
  fanned in through the process's :class:`~repro.obs.stream.TelemetryHub`
  — to any number of concurrent clients.  Each subscriber gets a bounded
  share of its connection's outbox: a window that would push past the
  subscriber's ``max_queue`` is dropped *and counted*, and sampler/event
  rows that age out of the hub rings before a slow subscriber catches up
  are reported as ``samples_lost``/``events_lost``.  Nothing about a v1
  client changes: stream frames only ever go to connections that sent a
  ``subscribe``.

Per-job progress streams to every subscribed client as server-sent
``job`` events; a ``complete`` frame carries a standard run manifest
(:class:`~repro.exec.telemetry.RunReport` form) so downstream tooling
cannot tell a served run from a local one.  Server metrics (queue depth,
in-flight, cache-hit ratio, wall-time histograms) live in a dedicated
always-on :class:`~repro.obs.registry.MetricsRegistry` and are exported
through the ``stats`` request.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import multiprocessing
import os
from concurrent.futures.process import BrokenProcessPool
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..exec.cache import ResultCache, write_json_atomic
from ..exec.jobs import JobSpec
from ..exec.options import auto_jobs, get_options
from ..exec.scheduler import InflightTable, dedupe_specs
from ..exec.telemetry import JobRecord, RunReport
from ..exec.worker import run_job
from .. import obs
from ..obs import tracectx
from ..obs.log import get_logger
from ..obs.registry import MetricsRegistry, WALL_TIME_BUCKETS_S
from ..obs.stream import TelemetryHub, install_hub
from ..sim.results import SimulationResult
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameError,
    decode_frame,
    encode_frame,
    parse_submit,
)

#: Pending (queued, not yet running) jobs the server will hold before
#: shedding load; tuned so a full queue of typical cells clears in well
#: under a client's patience, not so small that modest bursts bounce.
DEFAULT_QUEUE_LIMIT = 256

#: Deserialised results kept in memory so repeat hits skip the disk.
HOT_RESULTS = 512

#: The worker-crash budget: after this many broken process pools the
#: ``auto`` executor stops re-forking and degrades to threads.
_BROKEN_POOL_LIMIT = 2

#: Clamp bounds for subscriber-requested stream intervals, in seconds.
#: Below the floor a chatty subscriber becomes a busy loop; above the
#: ceiling the stream is indistinguishable from polling ``stats``.
MIN_STREAM_INTERVAL = 0.05
MAX_STREAM_INTERVAL = 60.0

#: Per-subscriber outbox bound, in frames: a window is dropped (and
#: counted) rather than queued when the connection's outbox already holds
#: this many unsent frames.  Subscribers may request their own bound
#: within [1, MAX_STREAM_QUEUE].
DEFAULT_STREAM_QUEUE = 16
MAX_STREAM_QUEUE = 1024

#: Broadcaster sleep when nobody is subscribed.
_IDLE_STREAM_TICK = 0.25

log = get_logger("serve")


class _Connection:
    """One client connection: a send queue drained by a writer task.

    Producers (:meth:`send`) never await — frames go through an outbox so
    a slow reader back-pressures only its own drain task, never the
    dispatch loops.  A connection that dies mid-stream flips ``alive``;
    subsequent sends become no-ops and the submission bookkeeping still
    completes server-side.
    """

    _ids = iter(range(1, 1 << 62))

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.alive = True
        self.name = f"conn-{next(self._ids)}"

    def send(self, frame: Dict[str, object]) -> None:
        if not self.alive:
            return
        try:
            data = encode_frame(frame)
        except FrameError as exc:  # a reply too large to frame
            data = encode_frame({"type": "error", "error": f"reply dropped: {exc}"})
        self.outbox.put_nowait(data)

    async def drain(self) -> None:
        while True:
            data = await self.outbox.get()
            if data is None:
                break
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.alive = False
                break

    def close(self) -> None:
        self.alive = False
        self.outbox.put_nowait(None)

    async def wait_closed(self, drain_task: asyncio.Task) -> None:
        # CancelledError is a BaseException on 3.11; it must be suppressed
        # explicitly or loop-shutdown cancellation escapes the handler task
        # (and trips the 3.11 streams callback bug, gh-109538).
        with contextlib.suppress(asyncio.CancelledError, Exception):
            await asyncio.wait_for(drain_task, timeout=5)
        with contextlib.suppress(asyncio.CancelledError, Exception):
            self.writer.close()
            await self.writer.wait_closed()


class _Submission:
    """Bookkeeping for one ``submit`` frame until its stream completes."""

    def __init__(self, server: "ExperimentServer", conn: _Connection,
                 request_id: str, total: int, duplicates: int) -> None:
        self.server = server
        self.conn = conn
        self.request_id = request_id
        self.pending: Set[str] = set()
        self.report = RunReport(
            jobs_requested=server.jobs, workers=server.jobs, mode="serve",
            jobs_source=server.jobs_source, duplicates=duplicates,
            sim_path=get_options().sim_path,
            run_id=server.run_id,
        )
        self.total = total
        self.started = time.monotonic()

    def event(self, job_hash: str, event: str, **fields: object) -> None:
        frame: Dict[str, object] = {
            "type": "job", "id": self.request_id, "event": event,
            "job_hash": job_hash,
        }
        frame.update(fields)
        self.conn.send(frame)

    def record(self, record: JobRecord) -> None:
        self.report.records.append(record)

    def finish_job(self, job_hash: str, record: JobRecord) -> None:
        """A pending job resolved (any way); completes the stream when last."""
        if job_hash not in self.pending:
            return
        self.pending.discard(job_hash)
        self.record(record)
        if not self.pending:
            self.complete()

    def complete(self) -> None:
        self.report.wall_time = time.monotonic() - self.started
        self.conn.send({
            "type": "complete",
            "id": self.request_id,
            "manifest": self.report.to_dict(),
        })


class _StreamSubscriber:
    """One live telemetry stream (``subscribe`` frame) on a connection.

    Pacing and loss semantics: a window that would overfill the
    connection's outbox is *dropped and counted* but the ring cursors do
    not advance — a slow subscriber sees data late, not missing.  Rows the
    hub rings evicted before the cursor caught up (the subscriber fell
    more than a ring capacity behind) are counted as ``samples_lost`` /
    ``events_lost`` in every subsequent window.

    Cursors start at the rings' current totals: a new subscriber streams
    what happens from now on, not history.
    """

    __slots__ = ("conn", "sub_id", "interval", "max_queue", "seq",
                 "windows_dropped", "samples_lost", "events_lost",
                 "sample_cursor", "event_cursor", "next_due")

    def __init__(self, conn: _Connection, sub_id: str, interval: float,
                 max_queue: int, now: float, hub: TelemetryHub) -> None:
        self.conn = conn
        self.sub_id = sub_id
        self.interval = interval
        self.max_queue = max_queue
        self.seq = 0
        self.windows_dropped = 0
        self.samples_lost = 0
        self.events_lost = 0
        self.sample_cursor = hub.samples.total_recorded
        self.event_cursor = hub.events.total_recorded
        self.next_due = now

    def drops(self) -> Dict[str, int]:
        return {
            "windows_dropped": self.windows_dropped,
            "samples_lost": self.samples_lost,
            "events_lost": self.events_lost,
        }


class ExperimentServer:
    """Sharded, streaming, deduplicating job server over the result cache.

    Args:
        cache: Result cache consulted before execution and populated
            after; ``None`` disables caching (every job executes).
        jobs: Worker slots (default: :func:`~repro.exec.options.auto_jobs`).
        queue_limit: Pending jobs accepted before load is shed.
        timeout: Per-job wall-clock limit in seconds.
        retries: Resubmissions allowed per job after failure/timeout.
        fn: The job function (defaults to :func:`run_job`); injectable so
            tests drive the machinery with stub jobs.
        executor: ``"auto"`` (processes, thread fallback), ``"process"``
            or ``"thread"``.  Thread mode also accepts non-picklable
            ``fn`` — used by tests and the in-process microbenchmark.
        host / port: Bind address; port 0 picks an ephemeral port,
            re-read from :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        timeout: Optional[float] = None,
        retries: int = 1,
        fn: Callable[[JobSpec], SimulationResult] = run_job,
        executor: str = "auto",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if executor not in ("auto", "process", "thread"):
            raise ValueError(f"unknown executor kind {executor!r}")
        self.cache = cache
        self.jobs = max(1, int(jobs)) if jobs is not None else auto_jobs()
        self.jobs_source = "explicit" if jobs is not None else "auto"
        self.queue_limit = max(1, int(queue_limit))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.fn = fn
        self.executor_kind = executor
        self.host = host
        self.port = port

        self.registry = MetricsRegistry()
        self.inflight = InflightTable()
        #: Trace-context identity of everything this server executes: the
        #: run_id lands in served manifests, per-job obs artifacts (for
        #: ``repro obs merge``) and every stream ``window`` frame.
        self.run_id = tracectx.new_run_id("serve")
        #: Live fan-in for sampler windows and rare events; installed
        #: process-wide in :meth:`start`, drained by the broadcaster.
        self.hub = TelemetryHub()
        self._prev_hub: Optional[TelemetryHub] = None
        self._prev_ctx: Optional[tracectx.TraceContext] = None
        self._stream_subs: Dict[Tuple[str, str], _StreamSubscriber] = {}
        self._broadcaster: Optional[asyncio.Task] = None
        self._subscribers: Dict[str, List[_Submission]] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._connections: Set[_Connection] = set()
        self._executor: Optional[concurrent.futures.Executor] = None
        self._executor_kind_active = "none"
        self._broken_pools = 0
        self._dispatchers: List[asyncio.Task] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._started = time.monotonic()
        self._hot: "OrderedDict[str, SimulationResult]" = OrderedDict()
        self._request_ids = iter(range(1, 1 << 62))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start dispatch loops; returns the bound address."""
        self._started = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_FRAME_BYTES + 2)
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop()) for _ in range(self.jobs)]
        self._broadcaster = asyncio.create_task(self._stream_loop())
        # Activate the server's trace context and telemetry hub *before*
        # the first worker pool forks, so both propagate into workers (the
        # env mirror additionally covers spawn-based pools).
        self._prev_ctx = tracectx.activate(tracectx.TraceContext(
            run_id=self.run_id, origin="serve", root_pid=os.getpid()))
        self._prev_hub = install_hub(self.hub)
        if self.cache is not None:
            self.cache.sweep_tmp()
        self.registry.gauge("serve.queue_depth", fn=self._queue.qsize)
        self.registry.gauge("serve.inflight", fn=lambda: len(self.inflight))
        self.registry.gauge("serve.connections", fn=lambda: len(self._connections))
        log.info("serving on %s:%d (%d worker slot%s, queue limit %d)",
                 self.host, self.port, self.jobs,
                 "s" if self.jobs != 1 else "", self.queue_limit)
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel dispatchers, drop the worker pool."""
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        tasks = list(self._dispatchers)
        if self._broadcaster is not None:
            tasks.append(self._broadcaster)
        for task in tasks:
            task.cancel()
        for task in tasks:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._dispatchers = []
        self._broadcaster = None
        self._stream_subs.clear()
        install_hub(self._prev_hub)
        tracectx.activate(self._prev_ctx)
        self._prev_hub = None
        self._prev_ctx = None
        for conn in list(self._connections):
            conn.close()
        self._rebuild_executor(kill=False)

    def run(self) -> None:
        """Blocking entry point for the CLI; stops on Ctrl-C."""
        async def main() -> None:
            await self.start()
            try:
                await self.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.stop()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            log.info("interrupted; shutting down")

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self.registry.counter("serve.connections_total").inc()
        drain_task = asyncio.create_task(conn.drain())
        conn.send({"type": "hello", "v": PROTOCOL_VERSION,
                   "server": "repro.serve/1"})
        try:
            while conn.alive:
                try:
                    line = await reader.readline()
                except ValueError:
                    # StreamReader overran its limit: oversized frame.
                    self.registry.counter("serve.frames_rejected").inc()
                    conn.send({"type": "error",
                               "error": f"frame exceeds {MAX_FRAME_BYTES} bytes"})
                    break
                except (ConnectionError, OSError):
                    break
                if not line or not line.endswith(b"\n"):
                    break  # EOF (possibly mid-line)
                try:
                    frame = decode_frame(line)
                except FrameError as exc:
                    # Unparseable input leaves the stream in an unknown
                    # state; report and drop the connection.
                    self.registry.counter("serve.frames_rejected").inc()
                    conn.send({"type": "error", "error": str(exc)})
                    break
                self._dispatch_frame(conn, frame)
        except asyncio.CancelledError:
            pass  # loop shutdown: finish normally so 3.11's streams
            # callback (task.exception() on the handler task) stays quiet
        finally:
            self._connections.discard(conn)
            for key in [k for k, s in self._stream_subs.items()
                        if s.conn is conn]:
                del self._stream_subs[key]
            conn.close()
            await conn.wait_closed(drain_task)

    def _dispatch_frame(self, conn: _Connection, frame: Dict[str, object]) -> None:
        kind = frame.get("type")
        if kind == "ping":
            conn.send({"type": "pong"})
        elif kind == "stats":
            conn.send({"type": "stats", "stats": self.stats()})
        elif kind == "submit":
            self._handle_submit(conn, frame)
        elif kind == "subscribe":
            self._handle_subscribe(conn, frame)
        elif kind == "unsubscribe":
            self._handle_unsubscribe(conn, frame)
        else:
            self.registry.counter("serve.frames_rejected").inc()
            conn.send({"type": "error", "error": f"unknown frame type {kind!r}"})

    # ------------------------------------------------------------------
    # Submits
    # ------------------------------------------------------------------
    def _handle_submit(self, conn: _Connection, frame: Dict[str, object]) -> None:
        self.registry.counter("serve.submits_total").inc()
        try:
            specs = parse_submit(frame)
        except FrameError as exc:
            # A malformed submit is the client's mistake, not stream
            # corruption — answer with an error, keep the connection.
            self.registry.counter("serve.submits_invalid").inc()
            conn.send({"type": "error", "id": frame.get("id"), "error": str(exc)})
            return
        request_id = str(frame.get("id") or f"req-{next(self._request_ids)}")
        pairs = dedupe_specs(specs)
        duplicates = len(specs) - len(pairs)
        self.registry.counter("serve.jobs_submitted").inc(len(specs))
        self.registry.counter("serve.submit_duplicates").inc(duplicates)

        # Classify every unique cell.  No awaits between here and the
        # enqueue below, so the free-slot check cannot race.
        cached: List[Tuple[str, JobSpec, SimulationResult]] = []
        joined: List[Tuple[str, JobSpec]] = []
        fresh: List[Tuple[str, JobSpec]] = []
        for job_hash, spec in pairs:
            if self.inflight.get(job_hash) is not None:
                joined.append((job_hash, spec))
            else:
                result = self._cache_lookup(job_hash)
                if result is not None:
                    cached.append((job_hash, spec, result))
                else:
                    fresh.append((job_hash, spec))

        free = self.queue_limit - self._queue.qsize()
        if len(fresh) > free:
            self.registry.counter("serve.submits_rejected").inc()
            conn.send({
                "type": "retry",
                "id": request_id,
                "retry_after": round(self._retry_after(len(fresh)), 3),
                "reason": (f"queue full: {self._queue.qsize()}/{self.queue_limit}"
                           f" pending, submit needs {len(fresh)} slots"),
            })
            return

        submission = _Submission(self, conn, request_id, len(pairs), duplicates)
        conn.send({
            "type": "accepted", "id": request_id,
            "jobs": len(specs), "unique": len(pairs), "duplicates": duplicates,
            "cached": len(cached), "joined": len(joined), "queued": len(fresh),
        })
        for job_hash, spec, result in cached:
            self.registry.counter("serve.cache_hits").inc()
            submission.record(JobRecord(
                job_hash=job_hash, design=spec.design, workload=spec.workload,
                status="cached"))
            submission.event(job_hash, "cached", result=result.to_dict(),
                             design=spec.design, workload=spec.workload)
        for job_hash, spec in joined:
            self.registry.counter("serve.dedup_joined").inc()
            self.inflight.claim(job_hash, spec)  # join as follower
            self._subscribers.setdefault(job_hash, []).append(submission)
            submission.pending.add(job_hash)
            submission.event(job_hash, "queued", deduped=True,
                             design=spec.design, workload=spec.workload)
        for job_hash, spec in fresh:
            self.registry.counter("serve.cache_misses").inc()
            led, _ = self.inflight.claim(job_hash, spec)
            assert led, "fresh job already in flight"
            self._subscribers.setdefault(job_hash, []).append(submission)
            submission.pending.add(job_hash)
            self._queue.put_nowait(job_hash)
            submission.event(job_hash, "queued",
                             design=spec.design, workload=spec.workload)
        if not submission.pending:
            submission.complete()

    def _cache_lookup(self, job_hash: str) -> Optional[SimulationResult]:
        """Hot-set then on-disk lookup; promotes disk hits into memory."""
        result = self._hot.get(job_hash)
        if result is not None:
            self._hot.move_to_end(job_hash)
            return result
        if self.cache is None:
            return None
        result = self.cache.get(job_hash)
        if result is not None:
            self._remember(job_hash, result)
        return result

    def _remember(self, job_hash: str, result: SimulationResult) -> None:
        self._hot[job_hash] = result
        self._hot.move_to_end(job_hash)
        while len(self._hot) > HOT_RESULTS:
            self._hot.popitem(last=False)

    def _retry_after(self, slots_needed: int) -> float:
        """Crude clearing-time estimate for a rejected submit."""
        backlog = self._queue.qsize() + len(self.inflight)
        mean = self.registry.histogram(
            "serve.job_wall_time_s", bounds=WALL_TIME_BUCKETS_S).mean
        per_job = mean if mean > 0 else 1.0
        return max(0.1, min(60.0, backlog * per_job / max(1, self.jobs)))

    # ------------------------------------------------------------------
    # Telemetry streaming (protocol v2)
    # ------------------------------------------------------------------
    def _handle_subscribe(self, conn: _Connection, frame: Dict[str, object]) -> None:
        if frame.get("v") != PROTOCOL_VERSION:
            # v1 never defined subscribe; an explicit error beats a stream
            # of frames the client does not understand.
            self.registry.counter("serve.frames_rejected").inc()
            conn.send({"type": "error", "id": frame.get("id"),
                       "error": "subscribe requires protocol v2"})
            return
        sub_id = str(frame.get("id") or f"sub-{next(self._request_ids)}")
        try:
            interval = float(frame.get("interval", 1.0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            interval = 1.0
        interval = min(max(interval, MIN_STREAM_INTERVAL), MAX_STREAM_INTERVAL)
        try:
            max_queue = int(frame.get("max_queue", DEFAULT_STREAM_QUEUE))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            max_queue = DEFAULT_STREAM_QUEUE
        max_queue = min(max(max_queue, 1), MAX_STREAM_QUEUE)
        sub = _StreamSubscriber(conn, sub_id, interval, max_queue,
                                time.monotonic(), self.hub)
        self._stream_subs[(conn.name, sub_id)] = sub
        self.registry.counter("serve.stream_subscribes").inc()
        conn.send({
            "type": "subscribed", "v": PROTOCOL_VERSION, "id": sub_id,
            "run_id": self.run_id, "interval": interval,
            "max_queue": max_queue,
        })
        # First window goes out immediately — a tail should show *something*
        # before its first full interval elapses.
        self._send_window(sub, time.monotonic())

    def _handle_unsubscribe(self, conn: _Connection, frame: Dict[str, object]) -> None:
        sub_id = str(frame.get("id", ""))
        sub = self._stream_subs.pop((conn.name, sub_id), None)
        if sub is None:
            conn.send({"type": "error", "id": sub_id,
                       "error": f"no active stream {sub_id!r}"})
            return
        conn.send({"type": "unsubscribed", "id": sub_id,
                   "drops": sub.drops()})

    async def _stream_loop(self) -> None:
        """Broadcaster: wake for the earliest-due subscriber, send windows."""
        while True:
            now = time.monotonic()
            for key, sub in list(self._stream_subs.items()):
                if not sub.conn.alive:
                    self._stream_subs.pop(key, None)
                    continue
                if now >= sub.next_due:
                    self._send_window(sub, now)
            delays = [max(0.02, s.next_due - time.monotonic())
                      for s in self._stream_subs.values()]
            await asyncio.sleep(min(delays) if delays else _IDLE_STREAM_TICK)

    def _send_window(self, sub: _StreamSubscriber, now: float) -> None:
        sub.next_due = now + sub.interval
        if sub.conn.outbox.qsize() >= sub.max_queue:
            # The subscriber's reader is behind; dropping here (without
            # advancing cursors) bounds memory while keeping data intact.
            sub.windows_dropped += 1
            self.registry.counter("serve.stream_windows_dropped").inc()
            return
        samples, samples_lost, sub.sample_cursor = \
            self.hub.tail_samples(sub.sample_cursor)
        events, events_lost, sub.event_cursor = \
            self.hub.tail_events(sub.event_cursor)
        if samples_lost or events_lost:
            sub.samples_lost += samples_lost
            sub.events_lost += events_lost
            self.registry.counter("serve.stream_rows_lost").inc(
                samples_lost + events_lost)
        sub.seq += 1
        sub.conn.send({
            "type": "window", "v": PROTOCOL_VERSION, "id": sub.sub_id,
            "seq": sub.seq, "run_id": self.run_id,
            "at_s": round(now - self._started, 3),
            "interval": sub.interval,
            "metrics": self.registry.snapshot(),
            "obs_metrics": obs.registry().snapshot(),
            "samples": samples,
            "events": events,
            "drops": dict(sub.drops(), ring=self.hub.summary()),
        })
        self.registry.counter("serve.stream_windows_sent").inc()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            job_hash = await self._queue.get()
            job = self.inflight.get(job_hash)
            if job is None:  # pragma: no cover - defensive
                continue
            try:
                await self._execute(job_hash, job.spec)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # pragma: no cover - last resort
                log.error("dispatch loop error on %s: %s", job_hash[:16], exc)
                self._finish_failed(job_hash, job.spec, 1, 0.0,
                                    f"{type(exc).__name__}: {exc}")

    async def _execute(self, job_hash: str, spec: JobSpec) -> None:
        loop = asyncio.get_running_loop()
        error = "not executed"
        attempt = 0
        total_wall = 0.0
        for attempt in range(1, self.retries + 2):
            self._publish(job_hash, "started", attempt=attempt,
                          design=spec.design, workload=spec.workload)
            started = time.monotonic()
            try:
                future = loop.run_in_executor(self._ensure_executor(), self.fn, spec)
                result = await asyncio.wait_for(future, self.timeout)
            except asyncio.TimeoutError:
                total_wall += time.monotonic() - started
                error = f"timeout after {self.timeout:.1f}s"
                self.registry.counter("serve.jobs_timeout").inc()
                # The worker may be wedged: kill the pool to reclaim it.
                self._rebuild_executor(kill=True)
                continue
            except BrokenProcessPool as exc:
                total_wall += time.monotonic() - started
                error = f"worker crashed: {exc}"
                self.registry.counter("serve.workers_crashed").inc()
                self._broken_pools += 1
                self._rebuild_executor(kill=False)
                continue
            except Exception as exc:
                total_wall += time.monotonic() - started
                error = f"{type(exc).__name__}: {exc}"
                continue
            total_wall += time.monotonic() - started
            self._finish_ok(job_hash, spec, attempt, total_wall, result)
            return
        self._finish_failed(job_hash, spec, attempt, total_wall, error)

    def _finish_ok(self, job_hash: str, spec: JobSpec, attempts: int,
                   wall: float, result: SimulationResult) -> None:
        if self.cache is not None:
            self.cache.put(spec, result, job_hash=job_hash)
        self._remember(job_hash, result)
        self.registry.counter("serve.jobs_executed").inc()
        self.registry.histogram(
            "serve.job_wall_time_s", bounds=WALL_TIME_BUCKETS_S).observe(wall)
        self.inflight.resolve(job_hash, result)
        payload = result.to_dict()
        for submission in self._subscribers.pop(job_hash, []):
            submission.event(job_hash, "done", result=payload,
                             wall_time_s=round(wall, 4), attempts=attempts,
                             design=spec.design, workload=spec.workload)
            submission.finish_job(job_hash, JobRecord(
                job_hash=job_hash, design=spec.design, workload=spec.workload,
                status="ok", attempts=attempts, wall_time=wall))

    def _finish_failed(self, job_hash: str, spec: JobSpec, attempts: int,
                       wall: float, error: str) -> None:
        self.registry.counter("serve.jobs_failed").inc()
        with contextlib.suppress(KeyError):
            self.inflight.fail(job_hash, RuntimeError(error))
        for submission in self._subscribers.pop(job_hash, []):
            submission.event(job_hash, "failed", error=error, attempts=attempts,
                             design=spec.design, workload=spec.workload)
            submission.finish_job(job_hash, JobRecord(
                job_hash=job_hash, design=spec.design, workload=spec.workload,
                status="failed", attempts=attempts, wall_time=wall, error=error))

    def _publish(self, job_hash: str, event: str, **fields: object) -> None:
        for submission in self._subscribers.get(job_hash, []):
            submission.event(job_hash, event, **fields)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> concurrent.futures.Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def _make_executor(self) -> concurrent.futures.Executor:
        kind = self.executor_kind
        if kind == "auto" and self._broken_pools >= _BROKEN_POOL_LIMIT:
            kind = "thread"  # repeated pool crashes: stop re-forking
        if kind in ("auto", "process"):
            try:
                if "fork" in multiprocessing.get_all_start_methods():
                    ctx = multiprocessing.get_context("fork")
                else:  # pragma: no cover - non-POSIX platforms
                    ctx = multiprocessing.get_context()
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=ctx)
                self._executor_kind_active = "process"
                return pool
            except (OSError, ValueError, ImportError):  # pragma: no cover
                if kind == "process":
                    raise
        self._executor_kind_active = "thread"
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-serve")

    def _rebuild_executor(self, kill: bool) -> None:
        pool, self._executor = self._executor, None
        if pool is None:
            return
        if kill:
            # Best-effort reclamation of wedged workers; shutdown() alone
            # would wait on them forever.
            for proc in list(getattr(pool, "_processes", {}).values()):
                with contextlib.suppress(Exception):
                    proc.kill()
        with contextlib.suppress(Exception):
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-safe server metrics snapshot (the ``stats`` reply body)."""
        registry = self.registry
        hits = registry.counter("serve.cache_hits").value
        misses = registry.counter("serve.cache_misses").value
        lookups = hits + misses
        histogram = registry.histogram(
            "serve.job_wall_time_s", bounds=WALL_TIME_BUCKETS_S)
        return {
            "server": "repro.serve/1",
            "v": PROTOCOL_VERSION,
            "supported_versions": list(SUPPORTED_VERSIONS),
            "run_id": self.run_id,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self.jobs,
            "executor": self._executor_kind_active,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.queue_limit,
            "inflight": len(self.inflight),
            "connections": len(self._connections),
            "stream_subscribers": len(self._stream_subs),
            "cache_hit_ratio": round(hits / lookups, 4) if lookups else 0.0,
            "dedup_led": self.inflight.led,
            "dedup_joined": self.inflight.joined,
            "counters": registry.snapshot(),
            # The full typed dump (counter/gauge/histogram structure), not
            # just the flat snapshot — mirrors what the stats artifact
            # persists so one `stats` request is a complete picture.
            "registry": registry.to_dict(),
            "telemetry": self.hub.summary(),
            "job_wall_time_s": {
                "total": histogram.total,
                "mean": round(histogram.mean, 4),
                "p50": histogram.percentile(0.5),
                "p90": histogram.percentile(0.9),
                "p99": histogram.percentile(0.99),
            },
        }

    def write_stats_artifact(self, directory: Path) -> Optional[Path]:
        """Persist the metrics snapshot for CI artifact upload; best-effort."""
        path = Path(directory) / "serve-stats.json"
        try:
            write_json_atomic(path, {
                "stats": self.stats(),
                "registry": self.registry.to_dict(),
            })
        except OSError:
            return None
        return path


class ServerThread:
    """Run an :class:`ExperimentServer` on a background thread.

    Used by tests and the serve microbenchmark to embed a real
    socket-speaking server in-process::

        handle = ServerThread(ExperimentServer(executor="thread"))
        host, port = handle.start()
        ...
        handle.stop()
    """

    def __init__(self, server: ExperimentServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._shutdown = asyncio.Event()
            self._ready.set()
            await self._shutdown.wait()
            await self.server.stop()

        def runner() -> None:
            with contextlib.suppress(Exception):
                asyncio.run(main())

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(f"server failed to start: {self._startup_error}")
        return self.server.host, self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._shutdown is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
