"""Synchronous client for the experiment service.

:class:`ServeClient` speaks the NDJSON protocol over a plain TCP socket:
it submits a list of :class:`~repro.exec.jobs.JobSpec` cells, streams the
per-job event frames (surfacing them through an optional callback for
progress display), and reassembles the final results plus the server-built
run manifest.

Robustness model — the service is **idempotent by construction**: jobs are
deterministic, content-addressed and cached, so the client's answer to any
mid-stream failure is simply *reconnect and resubmit*.  Work finished
before the drop is answered from the cache in microseconds; only genuinely
unfinished cells execute again (and usually not even those, if the server
survived and the submit joins them in flight).  Back-pressure ``retry``
frames are honoured by sleeping out the server's ``retry_after`` estimate
and resubmitting, up to a bounded number of attempts.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..exec.jobs import JobSpec
from ..obs.log import get_logger
from ..sim.results import SimulationResult
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    ping_frame,
    stats_frame,
    submit_frame,
    subscribe_frame,
    unsubscribe_frame,
)

log = get_logger("serve.client")

#: Reconnect-and-resubmit attempts before a submit is abandoned.
DEFAULT_ATTEMPTS = 5

#: An event callback receives the raw ``job`` frame dictionaries.
EventCallback = Callable[[Dict[str, object]], None]


class ServeError(RuntimeError):
    """The service answered, but the submit could not be completed."""


class JobsFailed(ServeError):
    """Some jobs terminally failed server-side.

    Attributes:
        results: Results of the jobs that did succeed, by content hash.
        failures: ``{job_hash: error string}`` for the failed ones.
    """

    def __init__(self, message: str, results: Dict[str, SimulationResult],
                 failures: Dict[str, str]) -> None:
        super().__init__(message)
        self.results = results
        self.failures = failures


class ServeUnavailable(ServeError):
    """The service kept shedding load or dropping the connection."""


class ServeClient:
    """Blocking client for one experiment server.

    Args:
        host / port: Server address.
        timeout: Per-read socket timeout in seconds — the longest the
            client will sit without *any* frame (the server streams
            ``started`` events, so a healthy connection is never silent
            for a whole job).
        attempts: Reconnect/backoff budget per submit.
        on_event: Default per-job event callback for :meth:`submit`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 300.0, attempts: int = DEFAULT_ATTEMPTS,
                 on_event: Optional[EventCallback] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.attempts = max(1, int(attempts))
        self.on_event = on_event
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self.server_hello: Optional[Dict[str, object]] = None
        self._request_counter = 0

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def connect(self) -> Dict[str, object]:
        """Open the connection and consume the ``hello`` frame."""
        self.close()
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")
        hello = self._recv()
        if hello.get("type") != "hello":
            raise ServeError(f"expected hello frame, got {hello.get('type')!r}")
        self.server_hello = hello
        return hello

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self.connect()

    def _send(self, frame: Dict[str, object]) -> None:
        assert self._sock is not None
        self._sock.sendall(encode_frame(frame))

    def _recv(self) -> Dict[str, object]:
        assert self._reader is not None
        line = self._reader.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            return decode_frame(line)
        except FrameError as exc:
            raise ServeError(f"bad frame from server: {exc}") from exc

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Round-trip liveness probe."""
        self._ensure_connected()
        self._send(ping_frame())
        return self._recv().get("type") == "pong"

    def stats(self) -> Dict[str, object]:
        """The server's metrics snapshot."""
        self._ensure_connected()
        self._send(stats_frame())
        frame = self._recv()
        if frame.get("type") != "stats":
            raise ServeError(f"expected stats frame, got {frame.get('type')!r}")
        return frame["stats"]  # type: ignore[return-value]

    def tail(self, interval: float = 1.0, max_windows: Optional[int] = None,
             max_queue: Optional[int] = None):
        """Subscribe to the server's telemetry stream (protocol v2).

        Yields ``window`` frame dictionaries as they arrive: metrics
        snapshots, live sampler rows, event deltas and the stream's drop
        accounting.  Returns after ``max_windows`` frames (``None`` =
        until the connection drops or the caller breaks out); on a clean
        exit the stream is unsubscribed so the connection stays reusable.

        Raises:
            ServeError: When the server refuses the subscription (e.g. a
                v1-era server that does not stream).
        """
        self._ensure_connected()
        self._request_counter += 1
        sub_id = f"tail-{id(self) & 0xFFFFFF:06x}-{self._request_counter}"
        self._send(subscribe_frame(sub_id, interval=interval,
                                   max_queue=max_queue))
        seen = 0
        try:
            while max_windows is None or seen < max_windows:
                frame = self._recv()
                kind = frame.get("type")
                if kind == "error":
                    raise ServeError(
                        str(frame.get("error", "subscription refused")))
                if kind == "window" and frame.get("id") == sub_id:
                    seen += 1
                    yield frame
                # "subscribed" ack and unrelated frames: keep reading.
        finally:
            # Unsubscribe and drain in-flight windows up to the ack, so the
            # connection is clean for subsequent requests.  Any failure
            # here closes the socket instead — the server also cleans up
            # subscriptions on disconnect.
            try:
                self._send(unsubscribe_frame(sub_id))
                for _ in range(64):  # bounded drain; beyond this, just close
                    frame = self._recv()
                    if (frame.get("type") in ("unsubscribed", "error")
                            and frame.get("id") == sub_id):
                        break
                else:
                    self.close()
            except (ServeError, ConnectionError, socket.timeout, OSError):
                self.close()

    def submit(
        self,
        specs: List[JobSpec],
        on_event: Optional[EventCallback] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[Dict[str, SimulationResult], Dict[str, object]]:
        """Run ``specs`` through the service.

        Streams until the submit's ``complete`` frame, reconnecting and
        resubmitting on connection loss and sleeping out back-pressure
        rejections (both bounded by the ``attempts`` budget).

        Returns:
            ``(results, manifest)`` — results keyed by job content hash,
            and the server-built run manifest dictionary.

        Raises:
            JobsFailed: When the stream completed but jobs failed.
            ServeUnavailable: When the attempts budget is exhausted.
        """
        if not specs:
            return {}, {}
        callback = on_event if on_event is not None else self.on_event
        if request_id is None:
            self._request_counter += 1
            request_id = f"{id(self) & 0xFFFFFF:06x}-{self._request_counter}"
        results: Dict[str, SimulationResult] = {}
        failures: Dict[str, str] = {}
        last_error = "no attempts made"
        for attempt in range(1, self.attempts + 1):
            try:
                self._ensure_connected()
                self._send(submit_frame(specs, request_id=request_id))
                manifest = self._stream(results, failures, callback, request_id)
            except (ConnectionError, socket.timeout, OSError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                log.warning("connection lost mid-submit (%s); "
                            "reconnecting (attempt %d/%d)",
                            last_error, attempt, self.attempts)
                self.close()
                time.sleep(min(2.0, 0.1 * attempt))
                continue
            except _Rejected as rejected:
                last_error = rejected.reason
                if attempt == self.attempts:
                    break
                log.info("server shed load (%s); retrying in %.1fs "
                         "(attempt %d/%d)", rejected.reason,
                         rejected.retry_after, attempt, self.attempts)
                time.sleep(rejected.retry_after)
                continue
            if failures:
                raise JobsFailed(
                    f"{len(failures)} of {len(specs)} jobs failed: "
                    + "; ".join(sorted(failures.values()))[:500],
                    results, failures)
            return results, manifest
        raise ServeUnavailable(
            f"submit abandoned after {self.attempts} attempts: {last_error}")

    def run_specs(self, specs: List[JobSpec],
                  on_event: Optional[EventCallback] = None) -> List[SimulationResult]:
        """Results for ``specs`` in input order (duplicates fan out)."""
        results, _ = self.submit(specs, on_event=on_event)
        return [results[spec.content_hash()] for spec in specs]

    def _stream(self, results: Dict[str, SimulationResult],
                failures: Dict[str, str],
                callback: Optional[EventCallback],
                request_id: str) -> Dict[str, object]:
        """Consume frames for one submit until ``complete``."""
        while True:
            frame = self._recv()
            kind = frame.get("type")
            if kind == "retry":
                raise _Rejected(float(frame.get("retry_after", 1.0)),
                                str(frame.get("reason", "queue full")))
            if kind == "error":
                raise ServeError(str(frame.get("error", "unknown server error")))
            if kind == "accepted":
                continue
            if kind == "job":
                job_hash = str(frame.get("job_hash", ""))
                event = frame.get("event")
                if event in ("done", "cached"):
                    results[job_hash] = SimulationResult.from_dict(
                        frame["result"])  # type: ignore[arg-type]
                    failures.pop(job_hash, None)
                elif event == "failed":
                    failures[job_hash] = str(frame.get("error", "failed"))
                if callback is not None:
                    callback(frame)
                continue
            if kind == "complete":
                if str(frame.get("id")) != request_id:
                    continue  # stale stream from a previous attempt
                return frame.get("manifest", {})  # type: ignore[return-value]
            # Unknown server frame: tolerate for forward compatibility.

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _Rejected(Exception):
    """Internal: the server answered a submit with a ``retry`` frame."""

    def __init__(self, retry_after: float, reason: str) -> None:
        super().__init__(reason)
        self.retry_after = max(0.05, min(60.0, retry_after))
        self.reason = reason
