"""``repro.serve`` — the experiment service over the result cache.

A long-running asyncio TCP server (:mod:`repro.serve.server`) that
shards design×workload×seed matrices across worker processes, dedupes
in-flight work, answers cache hits directly from the content-addressed
:class:`~repro.exec.cache.ResultCache`, and streams per-job progress to
clients over a line-delimited JSON protocol (:mod:`repro.serve.protocol`).
The blocking client (:mod:`repro.serve.client`) reassembles results and
run manifests, so served runs are drop-in replacements for local ones.
See ``docs/serving.md``.
"""

from .client import (
    JobsFailed,
    ServeClient,
    ServeError,
    ServeUnavailable,
)
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameError,
    decode_frame,
    encode_frame,
    parse_address,
    parse_submit,
    ping_frame,
    stats_frame,
    submit_frame,
    subscribe_frame,
    unsubscribe_frame,
)
from .server import DEFAULT_QUEUE_LIMIT, ExperimentServer, ServerThread

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "ExperimentServer",
    "FrameError",
    "JobsFailed",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ServeClient",
    "ServeError",
    "ServeUnavailable",
    "ServerThread",
    "decode_frame",
    "encode_frame",
    "parse_address",
    "parse_submit",
    "ping_frame",
    "stats_frame",
    "submit_frame",
    "subscribe_frame",
    "unsubscribe_frame",
]
