"""Wire protocol of the experiment service: line-delimited JSON frames.

One **frame** is one JSON object serialised compactly on a single line and
terminated by ``\\n`` — trivially debuggable with ``nc`` and resilient to
partial reads (a receiver either has the whole line or keeps waiting).
Frames larger than :data:`MAX_FRAME_BYTES` are rejected on both sides:
the server must bound per-connection memory, and a client should not
stall forever on a runaway reply.

Client → server frames (``type`` field):

``submit``
    ``{"v": 2, "type": "submit", "id": "...", "specs": [<wire spec>...]}``
    — a design×workload×seed matrix as :meth:`JobSpec.to_wire` payloads.
``subscribe`` *(v2)*
    ``{"v": 2, "type": "subscribe", "id": "...", "interval": 1.0,
    "max_queue": 16}`` — start a periodic telemetry stream on this
    connection; the server answers ``subscribed`` and then ``window``
    frames until ``unsubscribe`` or disconnect.
``unsubscribe`` *(v2)*
    Stop the stream started with the matching ``id``.
``stats``
    Request a server metrics snapshot.
``ping``
    Liveness probe.

Server → client frames:

``hello``
    Sent once per connection: protocol version and server identity.
``accepted``
    Submit bookkeeping: total/unique/cached/deduped/queued cell counts.
``job``
    Per-job server-sent event stream: ``event`` is ``queued``,
    ``started``, ``done``, ``cached`` or ``failed``; ``done``/``cached``
    carry the full ``result`` payload.
``complete``
    Ends a submit stream; carries the run manifest (RunReport form).
``retry``
    Back-pressure: the queue is full, retry the submit after
    ``retry_after`` seconds.  Nothing was enqueued.
``subscribed`` / ``window`` *(v2)*
    Stream acknowledgement and its periodic telemetry windows: metrics
    snapshots, live sampler rows, event-ring deltas and explicit drop/loss
    accounting (see :mod:`repro.serve.server`).
``stats`` / ``pong`` / ``error``
    Responses to the matching requests (``error`` also answers frames the
    server cannot parse).

The protocol is versioned (:data:`PROTOCOL_VERSION`): a server rejects
frames whose ``v`` it does not speak rather than guessing.  Version 2 is
a strict superset of version 1 — every v1 frame is still accepted
(:data:`SUPPORTED_VERSIONS`) and answered with byte-identical payload
shapes, and v2-only frames (``subscribed``/``window``) are only ever sent
to clients that asked for them, so a v1 client never sees an unknown
frame it did not provoke.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..exec.jobs import JobSpec

#: Protocol version; bump on incompatible frame-shape changes.
#: v2 added the ``subscribe``/``unsubscribe`` stream frames.
PROTOCOL_VERSION = 2

#: Versions this server/client generation still accepts on the wire.
SUPPORTED_VERSIONS = (1, 2)

#: Hard ceiling for one encoded frame, newline included.  A submit of a
#: few hundred cells and a `complete` manifest for the same both fit with
#: a wide margin; per-job results stream one frame each.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 7911


class FrameError(ValueError):
    """A frame violates the wire protocol (size, encoding or shape)."""


def encode_frame(payload: Dict[str, object]) -> bytes:
    """Serialise ``payload`` to one newline-terminated frame.

    Raises:
        FrameError: If the payload is not JSON-serialisable or encodes
            beyond :data:`MAX_FRAME_BYTES`.
    """
    try:
        line = json.dumps(payload, separators=(",", ":"), sort_keys=True,
                          allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unserialisable frame: {exc}") from exc
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    return data


def decode_frame(line: bytes) -> Dict[str, object]:
    """Parse one received line back into a frame dictionary.

    Raises:
        FrameError: On oversized, truncated (no trailing newline),
            non-UTF-8, non-JSON or non-object input.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    if not line.endswith(b"\n"):
        raise FrameError("truncated frame (missing newline terminator)")
    try:
        payload = json.loads(line.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise FrameError(f"frame is not UTF-8: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FrameError(f"frame is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


# ----------------------------------------------------------------------
# Frame constructors (client side)
# ----------------------------------------------------------------------
def submit_frame(specs: List[JobSpec], request_id: str) -> Dict[str, object]:
    """A ``submit`` frame carrying ``specs`` losslessly."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "submit",
        "id": request_id,
        "specs": [spec.to_wire() for spec in specs],
    }


def stats_frame() -> Dict[str, object]:
    return {"v": PROTOCOL_VERSION, "type": "stats"}


def ping_frame() -> Dict[str, object]:
    return {"v": PROTOCOL_VERSION, "type": "ping"}


def subscribe_frame(request_id: str, interval: float = 1.0,
                    max_queue: Optional[int] = None) -> Dict[str, object]:
    """A ``subscribe`` frame opening a telemetry stream (protocol v2).

    Args:
        request_id: Stream identity, echoed in every ``window`` frame.
        interval: Seconds between windows (server-clamped to sane bounds).
        max_queue: Per-subscriber outbox bound in frames; windows that
            would push past it are dropped (and counted) instead of
            buffering without limit behind a slow reader.
    """
    frame: Dict[str, object] = {
        "v": PROTOCOL_VERSION,
        "type": "subscribe",
        "id": request_id,
        "interval": float(interval),
    }
    if max_queue is not None:
        frame["max_queue"] = int(max_queue)
    return frame


def unsubscribe_frame(request_id: str) -> Dict[str, object]:
    """Stop the stream started by the ``subscribe`` with the same id."""
    return {"v": PROTOCOL_VERSION, "type": "unsubscribe", "id": request_id}


# ----------------------------------------------------------------------
# Frame validation (server side)
# ----------------------------------------------------------------------
def parse_submit(frame: Dict[str, object]) -> List[JobSpec]:
    """Validate a ``submit`` frame and rebuild its specs.

    Raises:
        FrameError: On a version mismatch, missing/invalid ``specs`` list
            or any malformed spec payload.
    """
    if frame.get("v") not in SUPPORTED_VERSIONS:
        raise FrameError(
            f"protocol version {frame.get('v')!r} not in supported "
            f"{SUPPORTED_VERSIONS}")
    raw = frame.get("specs")
    if not isinstance(raw, list) or not raw:
        raise FrameError("submit frame needs a non-empty 'specs' list")
    try:
        return [JobSpec.from_wire(payload) for payload in raw]
    except ValueError as exc:
        raise FrameError(str(exc)) from exc


def parse_address(address: str, default_port: int = DEFAULT_PORT) -> "tuple[str, int]":
    """Split ``host[:port]`` (``:port`` alone means localhost).

    Raises:
        ValueError: On an empty host+port or a non-numeric port.
    """
    host, sep, port = address.rpartition(":")
    if not sep:
        host, port = address, ""
    if not host:
        host = "127.0.0.1"
    if not port:
        return host, default_port
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"invalid port in address {address!r}") from exc
