"""CLI surface of the experiment service.

``python -m repro serve``
    Run the server in the foreground over the repository's result cache.

``python -m repro submit``
    Submit a design×workload×seed matrix to a running server, stream
    per-job progress, and optionally write the canonical results file and
    the run manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

from .protocol import DEFAULT_PORT, parse_address


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..bench.runner import cache_dir
    from ..exec import ResultCache
    from .server import ExperimentServer

    cache = None if args.no_cache else ResultCache(cache_dir() / "results")
    server = ExperimentServer(
        cache=cache,
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        timeout=args.timeout,
        retries=args.retries,
        executor=args.executor,
        host=args.host,
        port=args.port,
    )
    try:
        server.run()
    finally:
        if args.stats_dir:
            path = server.write_stats_artifact(Path(args.stats_dir))
            if path is not None:
                print(f"wrote {path}", file=sys.stderr)
    return 0


def _split(values: List[str]) -> List[str]:
    """Flatten repeated and comma-separated CLI list arguments."""
    out: List[str] = []
    for value in values:
        out.extend(part for part in value.split(",") if part)
    return out


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def on_event(frame: Dict[str, object]) -> None:
        event = frame.get("event")
        if event in ("queued", "started"):
            return  # only terminal events are worth a line
        label = f"{frame.get('design')}/{frame.get('workload')}"
        if event == "failed":
            print(f"  [submit] FAILED {label}: {frame.get('error')}",
                  file=sys.stderr)
        else:
            print(f"  [submit] {event} {label}", file=sys.stderr)

    return on_event


def _cmd_submit(args: argparse.Namespace) -> int:
    from ..exec import make_spec
    from .client import JobsFailed, ServeClient, ServeError

    designs = _split(args.designs)
    workloads = _split(args.workloads)
    seeds = [int(s) for s in _split(args.seeds)] if args.seeds else [None]
    if not designs or not workloads:
        print("submit needs at least one design and one workload",
              file=sys.stderr)
        return 2

    specs = [
        make_spec(design, workload, num_cores=args.cores,
                  max_accesses=args.accesses, seed=seed)
        for design in designs
        for workload in workloads
        for seed in seeds
    ]
    host, port = parse_address(args.address)
    client = ServeClient(host=host, port=port, timeout=args.timeout)
    manifest: Dict[str, object] = {}
    try:
        with client:
            results, manifest = client.submit(
                specs, on_event=_progress_printer(args.quiet))
            stats = client.stats() if args.stats else None
    except JobsFailed as failed:
        for job_hash, error in sorted(failed.failures.items()):
            print(f"FAILED {job_hash[:16]}: {error}", file=sys.stderr)
        return 1
    except (ServeError, ConnectionError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1

    # Canonical results payload: deterministic bytes for identical
    # matrices, so concurrent clients can be diffed file-for-file.
    payload = {job_hash: results[job_hash].to_dict()
               for job_hash in sorted(results)}
    rendered = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(rendered)
        if not args.quiet:
            print(f"wrote {args.out}", file=sys.stderr)
    if args.manifest_out:
        Path(args.manifest_out).write_text(
            json.dumps(manifest, sort_keys=True, indent=2) + "\n")
        if not args.quiet:
            print(f"wrote {args.manifest_out}", file=sys.stderr)
    totals = manifest.get("totals", {}) if isinstance(manifest, dict) else {}
    if not args.quiet:
        print(f"{len(results)} results "
              f"({totals.get('cache_hits', 0)} cached, "
              f"{totals.get('duplicates', 0)} deduped) "
              f"in {totals.get('wall_time_s', 0.0)}s", file=sys.stderr)
    if stats is not None:
        print(json.dumps(stats, sort_keys=True, indent=2))
    elif not args.out:
        sys.stdout.write(rendered)
    return 0


def add_serve_parser(sub: "argparse._SubParsersAction") -> None:
    """Attach the ``serve`` and ``submit`` commands."""
    serve = sub.add_parser(
        "serve", help="run the experiment service over the result cache")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default: {DEFAULT_PORT}; 0 = ephemeral)")
    serve.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                       help="worker slots (default: auto-detected CPU count)")
    serve.add_argument("--queue-limit", type=int, default=256, metavar="N",
                       help="pending jobs accepted before load shedding")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-job wall-clock limit")
    serve.add_argument("--retries", type=int, default=1, metavar="N",
                       help="per-job retries after failure/timeout")
    serve.add_argument("--executor", choices=("auto", "process", "thread"),
                       default="auto", help="worker pool kind")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without the on-disk result cache")
    serve.add_argument("--stats-dir", default=None, metavar="DIR",
                       help="write a serve-stats.json artifact on shutdown")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a design×workload matrix to a running server")
    submit.add_argument("-d", "--designs", action="append", default=[],
                        metavar="D[,D...]", help="designs (repeat or comma-list)")
    submit.add_argument("-w", "--workloads", action="append", default=[],
                        metavar="W[,W...]", help="workloads (repeat or comma-list)")
    submit.add_argument("-s", "--seeds", action="append", default=[],
                        metavar="S[,S...]", help="trace seeds (default: one unseeded run)")
    submit.add_argument("-c", "--cores", type=int, default=4,
                        help="simulated cores per cell")
    submit.add_argument("-n", "--accesses", type=int, default=None,
                        help="trace length override")
    submit.add_argument("-a", "--address", default=f"127.0.0.1:{DEFAULT_PORT}",
                        metavar="HOST[:PORT]", help="server address")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="client read timeout in seconds")
    submit.add_argument("--out", default=None, metavar="FILE",
                        help="write canonical results JSON here (else stdout)")
    submit.add_argument("--manifest-out", default=None, metavar="FILE",
                        help="write the server-built run manifest here")
    submit.add_argument("--stats", action="store_true",
                        help="print server stats after the submit")
    submit.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress output")
    submit.set_defaults(func=_cmd_submit)
