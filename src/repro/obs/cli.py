"""``python -m repro obs`` — inspect observability artifacts.

Subcommands:

* ``summarize [MANIFEST]`` — one line per job artifact (design, workload,
  samples, events, ring drops), plus a run manifest's totals, top-level
  metrics and phase-span tree (the latest one by default, or an explicit
  manifest path);
* ``dump JOB`` — full ``job.json`` payload and per-signal statistics of
  one job (``JOB`` is a hash prefix, an index from ``summarize``, or a
  job artifact directory path);
* ``plot JOB`` — unicode sparklines of the job's windowed signals;
* ``merge MANIFEST`` — stitch a run manifest's orchestrator spans and its
  jobs' per-process span trees into one run-level Chrome trace
  (``MANIFEST`` may be ``latest``);
* ``tail HOST[:PORT]`` — subscribe to a running experiment server's
  telemetry stream and render windows live;
* ``bench-trend`` — compare the newest ``BENCH_history.jsonl`` entry
  against the median of recent comparable runs and flag drift.

Artifacts are looked up under the cache root (``REPRO_CACHE_DIR`` /
``.trace_cache``), where workers write them; ``--cache-dir`` overrides.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from .artifacts import latest_manifest, list_jobs, load_job_meta, obs_root
from .spans import Span
from .timeseries import TimeSeries


def _cache_root(args: argparse.Namespace) -> Path:
    if args.cache_dir is not None:
        return Path(args.cache_dir)
    from ..bench.runner import cache_dir

    return cache_dir()


def _resolve_job(root: Path, token: str) -> Optional[Path]:
    """A job directory by hash prefix, ``summarize`` index or path."""
    as_path = Path(token)
    if (as_path.is_dir() and ("/" in token or token.startswith("."))
            and (as_path / "job.json").is_file()):
        return as_path
    jobs = list_jobs(root)
    if token.isdigit() and int(token) < len(jobs):
        return jobs[int(token)]
    matches = [job for job in jobs if job.name.startswith(token)]
    return matches[0] if len(matches) == 1 else None


def _format_span_tree(spans: Iterable[dict], depth: int = 1) -> List[str]:
    lines: List[str] = []
    for payload in spans:
        node = Span.from_dict(payload)
        meta = ""
        if node.meta:
            meta = " (" + ", ".join(f"{k}={v}" for k, v in node.meta.items()) + ")"
        lines.append(f"{'  ' * depth}{node.name}{meta}  {node.duration_s:.3f}s")
        lines.extend(_format_span_tree(payload.get("children", []), depth + 1))
    return lines


def _load_series(directory: Path) -> Optional[TimeSeries]:
    for name in ("timeseries.npz", "timeseries.jsonl"):
        path = directory / name
        if path.is_file():
            return TimeSeries.load(path)
    return None


def _cmd_summarize(args: argparse.Namespace) -> int:
    root = _cache_root(args)
    jobs = list_jobs(obs_root(root))
    if not jobs:
        print(f"no observability artifacts under {obs_root(root)}")
        print("run with REPRO_OBS=1 to collect them")
    for index, directory in enumerate(jobs):
        meta = load_job_meta(directory)
        events = meta.get("events", {}) or {}
        line = (
            f"[{index}] {directory.name}"
            f"  {meta.get('design', '?')}/{meta.get('workload', '?')}"
            f"  samples={meta.get('samples', 0)}"
            f"  signals={len(meta.get('signals', []))}"
            f"  events={events.get('total', 0)}"
        )
        # Ring overflow is silent data loss; make it visible here.
        if events.get("dropped"):
            line += f"  dropped={events['dropped']}"
        if meta.get("run_id"):
            line += f"  run={meta['run_id']}"
        print(line)
    label = "latest manifest"
    if getattr(args, "manifest", None):
        manifest = Path(args.manifest)
        label = "manifest"
        if not manifest.is_file():
            print(f"no manifest at {manifest}", file=sys.stderr)
            return 2
    else:
        manifest = latest_manifest(Path(root) / "manifests")
        if manifest is None:
            return 0
    payload = json.loads(manifest.read_text())
    totals = payload.get("totals", {})
    print(f"\n{label}: {manifest.name} (v{payload.get('manifest_version', 1)})")
    if payload.get("run_id"):
        trace = f" · trace {payload['trace']}" if payload.get("trace") else ""
        print(f"  run {payload['run_id']} (pid {payload.get('pid', '?')}){trace}")
    print(
        f"  {totals.get('jobs', 0)} jobs"
        f" · {totals.get('cache_hits', 0)} cached"
        f" · {totals.get('failed', 0)} failed"
        f" · {totals.get('wall_time_s', 0.0):.1f}s wall"
    )
    metrics = payload.get("metrics") or {}
    for name in sorted(metrics):
        print(f"  {name} = {metrics[name]:.4g}")
    spans = payload.get("spans") or {}
    if spans.get("spans"):
        print(f"  span tree ({spans.get('total_s', 0.0):.3f}s):")
        for line in _format_span_tree(spans["spans"], depth=2):
            print(line)
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    root = obs_root(_cache_root(args))
    directory = _resolve_job(root, args.job)
    if directory is None:
        print(f"no unique job matching {args.job!r} under {root}", file=sys.stderr)
        return 2
    print(json.dumps(load_job_meta(directory), indent=2, sort_keys=True))
    series = _load_series(directory)
    if series is not None and len(series):
        print(f"\nsignals over {len(series)} windows of {series.interval} accesses:")
        for name, stats in sorted(series.summary().items()):
            print(
                f"  {name:<28} mean={stats['mean']:.4g}"
                f" min={stats['min']:.4g} max={stats['max']:.4g}"
                f" last={stats['last']:.4g}"
            )
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from ..bench.charts import sparkline

    root = obs_root(_cache_root(args))
    directory = _resolve_job(root, args.job)
    if directory is None:
        print(f"no unique job matching {args.job!r} under {root}", file=sys.stderr)
        return 2
    series = _load_series(directory)
    if series is None or not len(series):
        print(f"{directory.name}: no time-series samples", file=sys.stderr)
        return 1
    names = args.signals or series.signals
    for name in names:
        column = series.columns.get(name)
        if column is None:
            print(f"  {name:<28} (unknown signal)")
            continue
        values = [v for v in column if not math.isnan(v)]
        spark = sparkline(values) or "(no data)"
        last = f"{values[-1]:.4g}" if values else "-"
        print(f"  {name:<28} {spark}  last={last}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .merge import merge_manifest

    root = _cache_root(args)
    if args.manifest == "latest":
        manifest = latest_manifest(Path(root) / "manifests")
        if manifest is None:
            print(f"no run manifests under {Path(root) / 'manifests'}",
                  file=sys.stderr)
            return 2
    else:
        manifest = Path(args.manifest)
        if not manifest.is_file():
            print(f"no manifest at {manifest}", file=sys.stderr)
            return 2
    try:
        trace_path, count = merge_manifest(
            manifest, cache_root=root,
            output=Path(args.output) if args.output else None)
    except (OSError, ValueError) as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1
    print(f"{trace_path}: {count} trace events")
    return 0


def _print_window(frame: dict) -> None:
    """Render one stream ``window`` frame as a compact text block."""
    print(f"[{frame.get('seq', '?')}] +{frame.get('at_s', 0.0):.2f}s"
          f"  run={frame.get('run_id', '?')}")
    metrics = frame.get("metrics") or {}
    if metrics:
        rendered = " ".join(
            f"{name}={metrics[name]:.6g}" for name in sorted(metrics))
        print(f"  metrics: {rendered}")
    obs_metrics = frame.get("obs_metrics") or {}
    if obs_metrics:
        rendered = " ".join(
            f"{name}={obs_metrics[name]:.6g}" for name in sorted(obs_metrics))
        print(f"  obs: {rendered}")
    for row in frame.get("samples") or []:
        values = row.get("values") or {}
        rendered = " ".join(
            f"{name}={values[name]:.4g}" if isinstance(values[name], float)
            else f"{name}={values[name]}"
            for name in sorted(values))
        print(f"  sample {row.get('design', '?')}/{row.get('workload', '?')}"
              f" at={row.get('at', '?')} {rendered}")
    for event in frame.get("events") or []:
        extras = " ".join(f"{k}={v}" for k, v in sorted(event.items())
                          if k not in ("kind", "at"))
        print(f"  event {event.get('kind', '?')} at={event.get('at', '?')}"
              f" {extras}".rstrip())
    drops = frame.get("drops") or {}
    print(f"  drops: windows={drops.get('windows_dropped', 0)}"
          f" samples_lost={drops.get('samples_lost', 0)}"
          f" events_lost={drops.get('events_lost', 0)}")


def _cmd_tail(args: argparse.Namespace) -> int:
    from ..serve.client import ServeClient, ServeError
    from ..serve.protocol import parse_address

    try:
        host, port = parse_address(args.address)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    client = ServeClient(host=host, port=port,
                         timeout=max(10.0, 3.0 * args.interval))
    try:
        client.connect()
    except OSError as exc:
        print(f"cannot connect to {host}:{port}: {exc}", file=sys.stderr)
        return 2
    try:
        for frame in client.tail(interval=args.interval,
                                 max_windows=args.windows):
            _print_window(frame)
            sys.stdout.flush()
    except KeyboardInterrupt:
        pass
    except (ServeError, ConnectionError, OSError) as exc:
        print(f"stream ended: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    from ..bench.history import (
        HISTORY_FILENAME,
        analyze_trend,
        format_trend,
        load_history,
    )

    path = Path(args.history) if args.history else Path(HISTORY_FILENAME)
    records = load_history(path)
    if not records:
        print(f"no benchmark history at {path}", file=sys.stderr)
        print("run `python -m repro.bench.perf` to record an entry",
              file=sys.stderr)
        return 2
    analysis = analyze_trend(records, window=args.window,
                             threshold=args.threshold)
    print(format_trend(analysis, threshold=args.threshold))
    if args.strict and analysis.get("flags"):
        return 1
    return 0


def add_obs_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``obs`` subcommand to the top-level CLI parser."""
    obs_parser = sub.add_parser("obs", help="inspect observability artifacts")
    obs_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root holding obs/ and manifests/ (default: auto)",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    summarize = obs_sub.add_parser(
        "summarize", help="list job artifacts and a run manifest")
    summarize.add_argument(
        "manifest", nargs="?", default=None,
        help="run-manifest path to summarize (default: the latest)")
    summarize.set_defaults(func=_cmd_summarize)

    dump = obs_sub.add_parser("dump", help="print one job's metadata and signal stats")
    dump.add_argument("job", help="job hash prefix or summarize index")
    dump.set_defaults(func=_cmd_dump)

    plot = obs_sub.add_parser("plot", help="sparkline a job's windowed signals")
    plot.add_argument("job", help="job hash prefix or summarize index")
    plot.add_argument("signals", nargs="*", help="signal names (default: all)")
    plot.set_defaults(func=_cmd_plot)

    merge = obs_sub.add_parser(
        "merge", help="stitch a run's span trees into one Chrome trace")
    merge.add_argument(
        "manifest", help="run-manifest path, or 'latest'")
    merge.add_argument(
        "--output", default=None, metavar="FILE",
        help="trace output path (default: next to the manifest)")
    merge.set_defaults(func=_cmd_merge)

    tail = obs_sub.add_parser(
        "tail", help="stream live telemetry from an experiment server")
    tail.add_argument("address", help="server address as HOST[:PORT]")
    tail.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between telemetry windows (default: 1.0)")
    tail.add_argument(
        "--windows", type=int, default=None, metavar="N",
        help="stop after N windows (default: stream until interrupted)")
    tail.set_defaults(func=_cmd_tail)

    trend = obs_sub.add_parser(
        "bench-trend", help="flag throughput drift in the benchmark history")
    trend.add_argument(
        "--history", default=None, metavar="FILE",
        help="history file (default: BENCH_history.jsonl)")
    trend.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="comparable prior runs folded into the median (default: 5)")
    trend.add_argument(
        "--threshold", type=float, default=0.01, metavar="FRACTION",
        help="relative drop below the median that flags (default: 0.01)")
    trend.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any key is flagged")
    trend.set_defaults(func=_cmd_bench_trend)
