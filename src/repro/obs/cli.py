"""``python -m repro obs`` — inspect observability artifacts.

Subcommands:

* ``summarize`` — one line per job artifact (design, workload, samples,
  events), plus the latest run manifest's totals, top-level metrics and
  phase-span tree;
* ``dump JOB`` — full ``job.json`` payload and per-signal statistics of
  one job (``JOB`` is a hash prefix, or an index from ``summarize``);
* ``plot JOB`` — unicode sparklines of the job's windowed signals.

Artifacts are looked up under the cache root (``REPRO_CACHE_DIR`` /
``.trace_cache``), where workers write them; ``--cache-dir`` overrides.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from .artifacts import latest_manifest, list_jobs, load_job_meta, obs_root
from .spans import Span
from .timeseries import TimeSeries


def _cache_root(args: argparse.Namespace) -> Path:
    if args.cache_dir is not None:
        return Path(args.cache_dir)
    from ..bench.runner import cache_dir

    return cache_dir()


def _resolve_job(root: Path, token: str) -> Optional[Path]:
    """A job directory by hash prefix or by ``summarize`` index."""
    jobs = list_jobs(root)
    if token.isdigit() and int(token) < len(jobs):
        return jobs[int(token)]
    matches = [job for job in jobs if job.name.startswith(token)]
    return matches[0] if len(matches) == 1 else None


def _format_span_tree(spans: Iterable[dict], depth: int = 1) -> List[str]:
    lines: List[str] = []
    for payload in spans:
        node = Span.from_dict(payload)
        meta = ""
        if node.meta:
            meta = " (" + ", ".join(f"{k}={v}" for k, v in node.meta.items()) + ")"
        lines.append(f"{'  ' * depth}{node.name}{meta}  {node.duration_s:.3f}s")
        lines.extend(_format_span_tree(payload.get("children", []), depth + 1))
    return lines


def _load_series(directory: Path) -> Optional[TimeSeries]:
    for name in ("timeseries.npz", "timeseries.jsonl"):
        path = directory / name
        if path.is_file():
            return TimeSeries.load(path)
    return None


def _cmd_summarize(args: argparse.Namespace) -> int:
    root = _cache_root(args)
    jobs = list_jobs(obs_root(root))
    if not jobs:
        print(f"no observability artifacts under {obs_root(root)}")
        print("run with REPRO_OBS=1 to collect them")
    for index, directory in enumerate(jobs):
        meta = load_job_meta(directory)
        events = meta.get("events", {}) or {}
        print(
            f"[{index}] {directory.name}"
            f"  {meta.get('design', '?')}/{meta.get('workload', '?')}"
            f"  samples={meta.get('samples', 0)}"
            f"  signals={len(meta.get('signals', []))}"
            f"  events={events.get('total', 0)}"
        )
    manifest = latest_manifest(Path(root) / "manifests")
    if manifest is None:
        return 0
    payload = json.loads(manifest.read_text())
    totals = payload.get("totals", {})
    print(f"\nlatest manifest: {manifest.name} (v{payload.get('manifest_version', 1)})")
    print(
        f"  {totals.get('jobs', 0)} jobs"
        f" · {totals.get('cache_hits', 0)} cached"
        f" · {totals.get('failed', 0)} failed"
        f" · {totals.get('wall_time_s', 0.0):.1f}s wall"
    )
    metrics = payload.get("metrics") or {}
    for name in sorted(metrics):
        print(f"  {name} = {metrics[name]:.4g}")
    spans = payload.get("spans") or {}
    if spans.get("spans"):
        print(f"  span tree ({spans.get('total_s', 0.0):.3f}s):")
        for line in _format_span_tree(spans["spans"], depth=2):
            print(line)
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    root = obs_root(_cache_root(args))
    directory = _resolve_job(root, args.job)
    if directory is None:
        print(f"no unique job matching {args.job!r} under {root}", file=sys.stderr)
        return 2
    print(json.dumps(load_job_meta(directory), indent=2, sort_keys=True))
    series = _load_series(directory)
    if series is not None and len(series):
        print(f"\nsignals over {len(series)} windows of {series.interval} accesses:")
        for name, stats in sorted(series.summary().items()):
            print(
                f"  {name:<28} mean={stats['mean']:.4g}"
                f" min={stats['min']:.4g} max={stats['max']:.4g}"
                f" last={stats['last']:.4g}"
            )
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from ..bench.charts import sparkline

    root = obs_root(_cache_root(args))
    directory = _resolve_job(root, args.job)
    if directory is None:
        print(f"no unique job matching {args.job!r} under {root}", file=sys.stderr)
        return 2
    series = _load_series(directory)
    if series is None or not len(series):
        print(f"{directory.name}: no time-series samples", file=sys.stderr)
        return 1
    names = args.signals or series.signals
    for name in names:
        column = series.columns.get(name)
        if column is None:
            print(f"  {name:<28} (unknown signal)")
            continue
        values = [v for v in column if not math.isnan(v)]
        spark = sparkline(values) or "(no data)"
        last = f"{values[-1]:.4g}" if values else "-"
        print(f"  {name:<28} {spark}  last={last}")
    return 0


def add_obs_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``obs`` subcommand to the top-level CLI parser."""
    obs_parser = sub.add_parser("obs", help="inspect observability artifacts")
    obs_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root holding obs/ and manifests/ (default: auto)",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    summarize = obs_sub.add_parser(
        "summarize", help="list job artifacts and the latest run manifest")
    summarize.set_defaults(func=_cmd_summarize)

    dump = obs_sub.add_parser("dump", help="print one job's metadata and signal stats")
    dump.add_argument("job", help="job hash prefix or summarize index")
    dump.set_defaults(func=_cmd_dump)

    plot = obs_sub.add_parser("plot", help="sparkline a job's windowed signals")
    plot.add_argument("job", help="job hash prefix or summarize index")
    plot.add_argument("signals", nargs="*", help="signal names (default: all)")
    plot.set_defaults(func=_cmd_plot)
