"""On-disk layout of observability artifacts.

Artifacts live next to the result cache, under ``<cache_dir>/obs/``::

    obs/
      <job_hash16>/
        job.json           # design, workload, accesses, signal inventory
        timeseries.npz     # windowed signals (TimeSeries.save)
        spans.trace.json   # Chrome-trace JSON of the job's phase spans
        events.jsonl       # retained ring events, one JSON object per line

Run-level artifacts (the span tree and metrics of a whole sweep) are
embedded in the version-2 run manifest written by
:class:`~repro.exec.telemetry.RunReport`, with a sibling
``<manifest>.trace.json`` Chrome trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .events import EventRing
from .spans import SpanRecorder
from .timeseries import SimSampler

#: Directory name under the cache root.
OBS_DIRNAME = "obs"

#: Hash prefix length used for job artifact directories.
HASH_PREFIX = 16


def obs_root(cache_root: Path) -> Path:
    """The observability artifact root under ``cache_root``."""
    return Path(cache_root) / OBS_DIRNAME


def job_dir(root: Path, job_hash: str) -> Path:
    """Artifact directory for one job hash."""
    return Path(root) / job_hash[:HASH_PREFIX]


def write_chrome_trace(path: Path, recorder: SpanRecorder) -> Path:
    """Write ``recorder`` as a Chrome ``chrome://tracing`` JSON array."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(recorder.to_chrome_trace(), indent=1) + "\n")
    return path


def write_job_artifacts(
    root: Path,
    job_hash: str,
    recorder: Optional[SpanRecorder] = None,
    sampler: Optional[SimSampler] = None,
    events: Optional[EventRing] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, Path]:
    """Persist one job's observability artifacts; returns written paths.

    Best-effort: an unwritable cache directory downgrades observability to
    in-memory only rather than failing the job.
    """
    directory = job_dir(root, job_hash)
    written: Dict[str, Path] = {}
    try:
        directory.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, object] = {"job_hash": job_hash}
        payload.update(meta or {})
        if sampler is not None:
            written["timeseries"] = sampler.series.save(directory / "timeseries.npz")
            payload["signals"] = sampler.series.signals
            payload["samples"] = len(sampler.series)
            payload["interval"] = sampler.series.interval
        if recorder is not None:
            written["trace"] = write_chrome_trace(directory / "spans.trace.json", recorder)
            payload["spans"] = recorder.to_dict()
        ring = events if events is not None else (sampler.events if sampler else None)
        if ring is not None:
            (directory / "events.jsonl").write_text(ring.to_jsonl() + "\n")
            written["events"] = directory / "events.jsonl"
            payload["events"] = ring.summary()
        meta_path = directory / "job.json"
        meta_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written["meta"] = meta_path
    except OSError:
        return {}
    return written


def list_jobs(root: Path) -> List[Path]:
    """Job artifact directories under ``root`` (those with a ``job.json``)."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(p for p in root.iterdir() if (p / "job.json").is_file())


def load_job_meta(directory: Path) -> Dict[str, object]:
    """The ``job.json`` payload of one artifact directory."""
    return json.loads((Path(directory) / "job.json").read_text())


def latest_manifest(manifest_dir: Path) -> Optional[Path]:
    """Most recent ``run-*.json`` manifest, or ``None``."""
    directory = Path(manifest_dir)
    if not directory.is_dir():
        return None
    candidates = sorted(p for p in directory.glob("run-*.json")
                        if not p.name.endswith(".trace.json"))
    return candidates[-1] if candidates else None
