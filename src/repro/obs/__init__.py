"""``repro.obs`` — zero-overhead-when-off observability.

One switch (``REPRO_OBS=1`` or :func:`set_enabled`) turns on four
cooperating facilities:

* a **metrics registry** (:mod:`repro.obs.registry`) — counters, gauges
  and fixed-bucket histograms registered by dotted name; disabled callers
  get the :data:`NULL_SINK` no-op registry;
* **phase spans** (:mod:`repro.obs.spans`) — ``with span("trace_gen"):``
  builds a hierarchical wall-time breakdown exportable as Chrome-trace
  JSON; with no recorder installed, ``span()`` is a shared no-op;
* **windowed time-series** (:mod:`repro.obs.timeseries`) — every N
  accesses the simulator snapshots CTR-cache hit rate, MT verify depth,
  DRAM row-buffer hit rate and RL predictor state into an ``.npz``
  artifact;
* an **event ring** (:mod:`repro.obs.events`) — a bounded buffer of rare,
  high-value events (counter-overflow re-encryption, storms, predictor
  mode flips).

The cardinal rule: with observability off, the simulator's hot loops are
*byte-for-byte the same code path as before* — the only cost is one
``enabled()`` check per ``Simulator.run`` call.  The perf harness
(``python -m repro.bench.perf --obs-check``) and the golden-metrics tests
enforce both the throughput budget and metric neutrality.
"""

from __future__ import annotations

import os
from typing import Optional

from .events import EventRing, load_jsonl
from .log import get_logger, setup_logging
from .registry import (
    LATENCY_BUCKETS_CYCLES,
    NULL_SINK,
    WALL_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import (
    Span,
    SpanRecorder,
    active_recorder,
    install_recorder,
    recording,
    span,
)
from .stream import TelemetryHub, active_hub, install_hub
from .timeseries import SimSampler, TimeSeries, sample_interval
from .tracectx import TRACE_ENV, TraceContext, new_run_id, propagated
from .tracectx import current as current_context

#: Environment switch; "0"/"false"/"no"/"" count as off.
OBS_ENV = "REPRO_OBS"

_FALSY = ("", "0", "false", "no", "off")

#: Explicit override; ``None`` defers to the environment.
_ENABLED: Optional[bool] = None

#: The process-wide live registry (handed out only while enabled).
_REGISTRY = MetricsRegistry()


def enabled() -> bool:
    """Is observability on (override first, else ``REPRO_OBS``)?"""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get(OBS_ENV, "").strip().lower() not in _FALSY


def set_enabled(value: Optional[bool]) -> None:
    """Force observability on/off; ``None`` restores environment control."""
    global _ENABLED
    _ENABLED = value


class overridden:
    """``with overridden(False):`` — temporarily force the switch.

    The perf harness measures with observability force-disabled so the
    tracked baseline never silently includes instrumentation cost.
    """

    __slots__ = ("_value", "_previous")

    def __init__(self, value: Optional[bool]) -> None:
        self._value = value
        self._previous: Optional[bool] = None

    def __enter__(self) -> None:
        global _ENABLED
        self._previous = _ENABLED
        _ENABLED = self._value

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ENABLED
        _ENABLED = self._previous


def registry():
    """The live :class:`MetricsRegistry`, or :data:`NULL_SINK` when off."""
    if enabled():
        return _REGISTRY
    return NULL_SINK


def reset() -> None:
    """Return to a pristine state (tests): env-controlled, empty registry,
    no installed span recorder, no trace context, no telemetry hub."""
    from . import tracectx

    set_enabled(None)
    _REGISTRY.clear()
    install_recorder(None)
    tracectx.reset()
    install_hub(None)


__all__ = [
    "Counter",
    "EventRing",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_CYCLES",
    "MetricsRegistry",
    "NULL_SINK",
    "OBS_ENV",
    "SimSampler",
    "Span",
    "SpanRecorder",
    "TRACE_ENV",
    "TelemetryHub",
    "TimeSeries",
    "TraceContext",
    "WALL_TIME_BUCKETS_S",
    "active_hub",
    "active_recorder",
    "current_context",
    "enabled",
    "get_logger",
    "install_hub",
    "install_recorder",
    "load_jsonl",
    "new_run_id",
    "overridden",
    "propagated",
    "recording",
    "registry",
    "reset",
    "sample_interval",
    "set_enabled",
    "setup_logging",
    "span",
]
