"""Cross-process trace context: one ``run_id`` for a whole sweep.

A :class:`TraceContext` names the run that a job belongs to (``run_id``)
and the component that launched it (``origin`` — ``exec.run`` for a local
:class:`~repro.exec.runner.ParallelRunner` sweep, ``serve`` for jobs
executed by the experiment service).  The orchestrator activates a context
before fanning work out; workers read it back and stamp ``run_id`` plus
their own pid into the per-job observability artifacts, which is what lets
:mod:`repro.obs.merge` stitch the per-process span trees into one run-level
Chrome trace with correct pid/tid attribution.

Propagation works through **two redundant channels** so every executor
shape is covered:

* a module-level global — inherited by ``fork``-start worker processes
  (both the runner's ``multiprocessing.Pool`` and the server's
  ``ProcessPoolExecutor`` fork *after* the context is activated) and
  trivially shared with thread executors;
* the ``REPRO_TRACE_CTX`` environment variable (JSON) — survives ``spawn``
  starts and lets externally launched helpers join a run.

Activation is cheap (one dict assignment and one env write per *run*, not
per job) and happens regardless of the ``REPRO_OBS`` switch: with
observability off, workers never look at the context, so the obs-off
byte-identity contract is untouched.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

#: Environment carrier for the active context (JSON payload).
TRACE_ENV = "REPRO_TRACE_CTX"

_ACTIVE: Optional["TraceContext"] = None


@dataclass(frozen=True)
class TraceContext:
    """Identity of one run, carried from orchestrator to workers."""

    run_id: str
    #: The component that started the run ("exec.run", "serve", ...).
    origin: str = "exec.run"
    #: Pid of the orchestrating process (the manifest writer).
    root_pid: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {"run_id": self.run_id, "origin": self.origin,
             "root_pid": self.root_pid},
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> Optional["TraceContext"]:
        try:
            data = json.loads(text)
        except (TypeError, ValueError):
            return None
        if not isinstance(data, dict) or "run_id" not in data:
            return None
        return cls(run_id=str(data["run_id"]),
                   origin=str(data.get("origin", "exec.run")),
                   root_pid=int(data.get("root_pid", 0)))


def new_run_id(prefix: str = "run") -> str:
    """A fresh, sortable run identifier: time, pid and entropy."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    entropy = os.urandom(4).hex()
    return f"{prefix}-{stamp}-{os.getpid():x}-{entropy}"


def activate(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``ctx`` as the process's active context; returns the old one.

    Also mirrors the context into ``REPRO_TRACE_CTX`` (or removes the
    variable when ``ctx`` is ``None``) so spawned subprocesses inherit it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ctx
    if ctx is None:
        os.environ.pop(TRACE_ENV, None)
    else:
        os.environ[TRACE_ENV] = ctx.to_json()
    return previous


def current() -> Optional[TraceContext]:
    """The active context: the installed one, else the environment's."""
    if _ACTIVE is not None:
        return _ACTIVE
    text = os.environ.get(TRACE_ENV)
    if not text:
        return None
    return TraceContext.from_json(text)


def reset() -> None:
    """Drop any installed context and the env mirror (tests)."""
    activate(None)


class propagated:
    """``with propagated(ctx):`` — activate/restore around a block.

    Accepts ``None`` so orchestrators can wrap unconditionally; the null
    case installs nothing and restores nothing.
    """

    __slots__ = ("_ctx", "_previous")

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self._ctx = ctx
        self._previous: Optional[TraceContext] = None

    def __enter__(self) -> Optional[TraceContext]:
        if self._ctx is not None:
            self._previous = activate(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._ctx is not None:
            activate(self._previous)


def job_annotations(ctx: Optional[TraceContext] = None) -> Dict[str, object]:
    """The trace-context fields a worker stamps into its job artifacts."""
    ctx = ctx if ctx is not None else current()
    fields: Dict[str, object] = {"pid": os.getpid()}
    if ctx is not None:
        fields["run_id"] = ctx.run_id
        fields["origin"] = ctx.origin
    return fields
