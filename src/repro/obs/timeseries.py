"""Windowed time-series sampling of a running simulation.

Every N accesses the :class:`SimSampler` snapshots the cumulative counters
a design already maintains (``design.obs_counters()``) and derives
**windowed** signals from the deltas — CTR-cache hit rate, Merkle-tree
verify depth, DRAM row-buffer hit rate, RL predictor behaviour — so a
drifting predictor or a thrashing cache shows up *when it happens*, not
just in the end-of-run averages.  Designs can contribute custom probes via
``design.obs_probes()``; each probe is a zero-argument callable sampled
once per window.

The collected series is a columnar :class:`TimeSeries` saved as a compact
``.npz`` (or JSONL when numpy is unavailable) next to the run's results.
Nothing here runs on the simulator's hot path: the sampler is invoked from
the existing progress-hook slot of ``Simulator.run``, which the hookless
fast loops never touch when observability is off.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .events import EventRing

#: Environment knob for the sampling window (accesses per sample).
INTERVAL_ENV = "REPRO_OBS_INTERVAL"

#: Default sampling window.
DEFAULT_INTERVAL = 10_000

#: Windowed overflow count that flags a re-encryption storm event.
STORM_THRESHOLD = 32

#: Derived windowed signals: name -> (numerator keys, denominator keys).
#: A signal is emitted only when every key exists in the design's counter
#: snapshot; the value is sum(d numer) / sum(d denom) over the window.
RATE_SIGNALS: Sequence[Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = (
    ("ctr_hit_rate", ("ctr_hits",), ("ctr_hits", "ctr_misses")),
    ("mt_verify_depth", ("mt_nodes_fetched",), ("mt_traversals",)),
    ("dram_row_hit_rate", ("dram_row_hits",), ("dram_requests",)),
    ("dram_queue_wait_per_request", ("dram_queue_cycles",), ("dram_requests",)),
    ("dram_write_share", ("dram_writes",), ("dram_requests",)),
    ("llc_miss_rate", ("llc_misses",), ("accesses",)),
    ("latency_per_access", ("total_latency",), ("accesses",)),
    ("rl_location_accuracy", ("loc_correct",), ("loc_graded",)),
    ("rl_exploration_fraction", ("rl_explorations",), ("rl_selections",)),
    ("rl_good_locality_fraction", ("ctrpred_good",), ("ctrpred_total",)),
    ("reencryptions_per_write", ("ctr_overflows",), ("writes_seen",)),
)


def sample_interval() -> int:
    """Sampling window honouring ``REPRO_OBS_INTERVAL``."""
    try:
        value = int(os.environ.get(INTERVAL_ENV, DEFAULT_INTERVAL))
    except ValueError:
        return DEFAULT_INTERVAL
    return max(1, value)


class TimeSeries:
    """Columnar samples over an access-count axis."""

    def __init__(self, interval: int, meta: Optional[Dict[str, object]] = None) -> None:
        self.interval = interval
        self.axis: List[int] = []
        self.columns: Dict[str, List[float]] = {}
        self.meta: Dict[str, object] = dict(meta or {})

    def append(self, at: int, values: Dict[str, float]) -> None:
        """Add one sample row; new columns backfill earlier rows with NaN."""
        self.axis.append(at)
        n = len(self.axis)
        for name, value in values.items():
            column = self.columns.get(name)
            if column is None:
                column = [math.nan] * (n - 1)
                self.columns[name] = column
            column.append(float(value))
        for name, column in self.columns.items():
            if len(column) < n:
                column.append(math.nan)

    def __len__(self) -> int:
        return len(self.axis)

    @property
    def signals(self) -> List[str]:
        return sorted(self.columns)

    # -- persistence ---------------------------------------------------
    def save(self, path: Path) -> Path:
        """Write the series to ``path`` (``.npz`` preferred, JSONL fallback).

        Returns the path actually written, which may swap the suffix when
        numpy is unavailable.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = dict(self.meta)
        meta["interval"] = self.interval
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a core dep here
            return self._save_jsonl(path.with_suffix(".jsonl"), meta)
        arrays = {"accesses": np.asarray(self.axis, dtype=np.int64)}
        for name, column in self.columns.items():
            arrays[name] = np.asarray(column, dtype=np.float64)
        arrays["_meta"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        return path

    def _save_jsonl(self, path: Path, meta: Dict[str, object]) -> Path:
        lines = [json.dumps({"_meta": meta}, sort_keys=True)]
        for i, at in enumerate(self.axis):
            row: Dict[str, object] = {"accesses": at}
            for name, column in self.columns.items():
                value = column[i]
                row[name] = None if math.isnan(value) else value
            lines.append(json.dumps(row, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def load(cls, path: Path) -> "TimeSeries":
        """Read a series previously written by :meth:`save`."""
        path = Path(path)
        if path.suffix == ".jsonl":
            return cls._load_jsonl(path)
        import numpy as np

        with np.load(path) as data:
            meta: Dict[str, object] = {}
            if "_meta" in data.files:
                meta = json.loads(bytes(data["_meta"].tobytes()).decode())
            series = cls(int(meta.pop("interval", DEFAULT_INTERVAL)), meta)
            series.axis = [int(v) for v in data["accesses"]]
            for name in data.files:
                if name in ("accesses", "_meta"):
                    continue
                series.columns[name] = [float(v) for v in data[name]]
        return series

    @classmethod
    def _load_jsonl(cls, path: Path) -> "TimeSeries":
        rows = [json.loads(line) for line in path.read_text().splitlines() if line.strip()]
        meta = rows[0].get("_meta", {}) if rows else {}
        series = cls(int(meta.pop("interval", DEFAULT_INTERVAL)), meta)
        for row in rows[1:]:
            at = int(row.pop("accesses"))
            series.append(at, {k: (math.nan if v is None else float(v))
                               for k, v in row.items()})
        return series

    # -- analysis ------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-signal ``{mean, min, max, last}`` ignoring NaN windows."""
        out: Dict[str, Dict[str, float]] = {}
        for name in self.signals:
            values = [v for v in self.columns[name] if not math.isnan(v)]
            if not values:
                continue
            out[name] = {
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
                "last": values[-1],
            }
        return out


class SimSampler:
    """Progress-hook callable snapshotting a simulator every window.

    Args:
        simulator: The :class:`~repro.sim.simulator.Simulator` to observe.
        interval: Accesses per sample (default: :func:`sample_interval`).
        events: Ring to record detected events into (a fresh ring when
            ``None``); the engine's direct overflow events share this ring.
        storm_threshold: Windowed counter-overflow count that constitutes a
            re-encryption storm.
    """

    def __init__(
        self,
        simulator,
        interval: Optional[int] = None,
        events: Optional[EventRing] = None,
        storm_threshold: int = STORM_THRESHOLD,
    ) -> None:
        self.simulator = simulator
        self.interval = interval if interval is not None else sample_interval()
        self.events = events if events is not None else EventRing()
        self.storm_threshold = storm_threshold
        design = simulator.design
        self.series = TimeSeries(
            self.interval,
            meta={"design": design.name, "workload": simulator.workload},
        )
        self._probes: Dict[str, Callable[[], float]] = design.obs_probes()
        self._prev: Dict[str, int] = self._snapshot()
        self._prev_good: Optional[bool] = None
        self._last_at = -1
        # Live streaming: when a serve telemetry hub is installed in this
        # process, windows and ring events mirror into it as they happen.
        # active_hub() is None everywhere else, so plain runs pay nothing.
        from .stream import active_hub

        self._hub = active_hub()
        if self._hub is not None:
            hub, design_name, workload = self._hub, design.name, simulator.workload

            def _mirror(event: Dict[str, object]) -> None:
                enriched = dict(event)
                enriched.setdefault("design", design_name)
                enriched.setdefault("workload", workload)
                hub.publish_event(enriched)

            self.events.on_record = _mirror

    def _snapshot(self) -> Dict[str, int]:
        counters = self.simulator.design.obs_counters()
        counters["total_latency"] = self.simulator.total_latency
        return counters

    def __call__(self, done: int, simulator=None) -> None:
        self.sample(done)

    def sample(self, done: int) -> None:
        """Take one windowed sample at access count ``done``."""
        if done == self._last_at:
            return
        self._last_at = done
        current = self._snapshot()
        prev = self._prev
        self._prev = current
        values: Dict[str, float] = {}
        for name, numer_keys, denom_keys in RATE_SIGNALS:
            if any(k not in current for k in numer_keys + denom_keys):
                continue
            numer = sum(current[k] - prev.get(k, 0) for k in numer_keys)
            denom = sum(current[k] - prev.get(k, 0) for k in denom_keys)
            values[name] = numer / denom if denom else math.nan
        for name, probe in self._probes.items():
            try:
                values[name] = float(probe())
            except Exception:  # pragma: no cover - probes must never kill a run
                values[name] = math.nan
        self.series.append(done, values)
        if self._hub is not None:
            self._hub.publish_sample(
                self.series.meta.get("design", "?"),
                self.series.meta.get("workload", "?"), done, values)
        self._detect_events(done, current, prev, values)

    def finish(self, done: int) -> None:
        """Take the final (possibly partial) window at end of run."""
        if done > 0 and done != self._last_at:
            self.sample(done)

    def _detect_events(
        self,
        done: int,
        current: Dict[str, int],
        prev: Dict[str, int],
        values: Dict[str, float],
    ) -> None:
        overflows = current.get("ctr_overflows", 0) - prev.get("ctr_overflows", 0)
        if overflows >= self.storm_threshold:
            self.events.record(
                "reencryption_storm", at=done, overflows=overflows,
                window=self.interval,
            )
        good = values.get("rl_good_locality_fraction")
        if good is not None and not math.isnan(good):
            mode = good >= 0.5
            if self._prev_good is not None and mode != self._prev_good:
                self.events.record(
                    "predictor_mode_flip", at=done,
                    direction="good" if mode else "bad",
                    good_fraction=round(good, 4),
                )
            self._prev_good = mode
