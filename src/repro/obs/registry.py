"""Metrics registry: counters, gauges and fixed-bucket histograms.

Components register instruments by **dotted name** (``exec.jobs.completed``,
``sim.cosmos.ctr_hit_rate``) into a :class:`MetricsRegistry`.  Registration
is idempotent — asking for an existing name returns the same instrument —
so call sites never need to coordinate.

When observability is off, call sites talk to :data:`NULL_SINK` instead: a
registry whose instruments are shared no-op singletons.  Resolving an
instrument once at construction time and calling it unconditionally then
costs a single no-op method call, and code that caches
``registry.counter(...)`` behind an ``is None`` check pays nothing at all.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default histogram layout for wall times in seconds (experiment jobs).
WALL_TIME_BUCKETS_S: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Default histogram layout for per-access latencies in cycles.
LATENCY_BUCKETS_CYCLES: Tuple[float, ...] = (
    10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value, or a live callback evaluated at snapshot time.

    Callback gauges are the zero-overhead workhorse: the simulator already
    maintains every statistic, so observing it is just reading a field when
    a snapshot is taken — nothing runs on the hot path.
    """

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        """Record ``value`` (ignored for callback gauges)."""
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bin.

    Bucket bounds are set at registration time and never change, so two
    reports of the same histogram are always comparable bin-for-bin.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty sorted sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Count ``value`` into its bucket."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        if self.total == 0:
            return 0.0
        return self.sum / self.total

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 < q <= 1``) from the buckets.

        Reports the upper bound of the bucket containing the quantile —
        a conservative (never understating) estimate, which is the useful
        direction for latency SLO reporting.  Values in the overflow bin
        report the largest finite bound.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.total == 0 or not self.bounds:
            return 0.0
        target = q * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                break
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
        }


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": 0}


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0
    fn = None

    def set(self, value: float) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": 0.0}


class _NullHistogram:
    __slots__ = ()
    name = "null"
    bounds: Tuple[float, ...] = ()
    total = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"type": "histogram", "bounds": [], "counts": [0], "total": 0,
                "sum": 0.0, "mean": 0.0}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Instruments keyed by dotted name; idempotent registration."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _register(self, name: str, kind: type, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._register(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        """The gauge called ``name``; ``fn`` makes it a live callback gauge."""
        gauge = self._register(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None:
            gauge.fn = fn  # re-registration refreshes the probe target
        return gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = WALL_TIME_BUCKETS_S
    ) -> Histogram:
        """The fixed-bucket histogram called ``name``."""
        return self._register(name, Histogram, lambda: Histogram(name, bounds))

    def names(self, prefix: str = "") -> List[str]:
        """Registered names (optionally restricted to a dotted prefix)."""
        if not prefix:
            return sorted(self._instruments)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(n for n in self._instruments
                      if n == prefix.rstrip(".") or n.startswith(dotted))

    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        """Flat ``{name: scalar}`` view (histograms report their mean)."""
        out: Dict[str, float] = {}
        for name in self.names(prefix):
            instrument = self._instruments[name]
            out[name] = float(instrument.value if not isinstance(instrument, Histogram)
                              else instrument.mean)
        return out

    def to_dict(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        """Full JSON-safe dump of every instrument."""
        return {name: self._instruments[name].to_dict() for name in self.names(prefix)}

    def clear(self) -> None:
        """Drop every instrument (tests and fresh sessions)."""
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)


class _NullRegistry:
    """Registry stand-in whose instruments are shared no-ops."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, fn=None) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, bounds=WALL_TIME_BUCKETS_S) -> _NullHistogram:
        return NULL_HISTOGRAM

    def names(self, prefix: str = "") -> List[str]:
        return []

    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        return {}

    def to_dict(self, prefix: str = "") -> Dict[str, Dict[str, object]]:
        return {}

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The no-op sink handed out whenever observability is disabled.
NULL_SINK = _NullRegistry()
