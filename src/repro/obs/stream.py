"""Process-wide telemetry hub: live fan-in for the serve stream.

The experiment server (:mod:`repro.serve.server`) installs a
:class:`TelemetryHub` at startup.  From then on every in-process
:class:`~repro.obs.timeseries.SimSampler` publishes its windowed samples
and detected events into the hub's bounded rings as they happen, and the
server's broadcaster drains ring *deltas* into ``window`` frames for every
subscribed client.

Design constraints, in order:

* **zero overhead when no hub is installed** — publishing is guarded by a
  single ``active_hub() is None`` check inside code that only runs when
  ``REPRO_OBS`` is already on; the simulator's hot loops never see any of
  this;
* **bounded memory** — both rings reuse :class:`~repro.obs.events.EventRing`
  (capacity-bounded deque with a true ``total_recorded`` count), so a
  subscriber that stalls can lose data but can never grow the server;
* **explicit loss accounting** — consumers track a cursor against
  ``total_recorded`` via :func:`tail_since`; anything that aged out of the
  ring before the cursor caught up is reported as *lost*, never silently
  skipped.

Process-pool caveat: samplers running inside worker *processes* publish
into their own (forked) hub copy, which the server never sees — their
telemetry arrives through per-job artifacts instead.  A server that wants
live sampler windows runs with ``--executor thread`` (the CI obs-stream
smoke does exactly that).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

from .events import EventRing

#: Default ring capacities: enough for several windows of a busy sweep
#: between broadcaster ticks, small enough to be harmless if nobody reads.
SAMPLE_CAPACITY = 1024
EVENT_CAPACITY = 1024

_HUB: Optional["TelemetryHub"] = None


def _json_safe(value: object) -> object:
    """NaN/inf become ``None`` — the wire protocol forbids them."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class TelemetryHub:
    """Thread-safe fan-in point for live samples and events."""

    def __init__(self, sample_capacity: int = SAMPLE_CAPACITY,
                 event_capacity: int = EVENT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self.samples = EventRing(sample_capacity)
        self.events = EventRing(event_capacity)

    def publish_sample(self, design: str, workload: str, at: int,
                       values: Dict[str, float]) -> None:
        """One windowed sampler row (non-finite values are nulled)."""
        safe = {name: _json_safe(value) for name, value in values.items()}
        with self._lock:
            self.samples.record("sample", at=at, design=design,
                                workload=workload, values=safe)

    def publish_event(self, event: Dict[str, object]) -> None:
        """Mirror one ring event (already a JSON-safe dictionary)."""
        with self._lock:
            fields = {k: _json_safe(v) for k, v in event.items()
                      if k not in ("kind", "at")}
            self.events.record(str(event.get("kind", "event")),
                               at=event.get("at"), **fields)

    def tail_samples(self, cursor: int) -> Tuple[List[Dict[str, object]], int, int]:
        with self._lock:
            return tail_since(self.samples, cursor)

    def tail_events(self, cursor: int) -> Tuple[List[Dict[str, object]], int, int]:
        with self._lock:
            return tail_since(self.events, cursor)

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return {"samples": self.samples.summary(),
                    "events": self.events.summary()}


def tail_since(ring: EventRing, cursor: int) -> Tuple[List[Dict[str, object]], int, int]:
    """Entries recorded after ``cursor`` that the ring still retains.

    Returns ``(entries, lost, new_cursor)`` where ``lost`` counts entries
    that were recorded after the cursor but already evicted by the ring
    bound — the consumer fell more than ``capacity`` behind.
    """
    total = ring.total_recorded
    new = total - cursor
    if new <= 0:
        return [], 0, total
    retained = ring.to_list()
    take = min(new, len(retained))
    return retained[-take:] if take else [], new - take, total


def install_hub(hub: Optional[TelemetryHub]) -> Optional[TelemetryHub]:
    """Make ``hub`` the process's active hub; returns the previous one."""
    global _HUB
    previous = _HUB
    _HUB = hub
    return previous


def active_hub() -> Optional[TelemetryHub]:
    """The installed hub, or ``None`` (the common, zero-cost case)."""
    return _HUB
