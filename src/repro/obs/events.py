"""Bounded ring buffer for rare, high-value simulation events.

Counter-overflow re-encryptions, re-encryption storms, RL predictor mode
flips — things that happen a handful of times per run but explain a
surprising result.  The ring keeps the **most recent** ``capacity`` events
(older ones are dropped, but ``total_recorded`` keeps the true count), so
a pathological run can never grow memory without bound.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

#: Default ring capacity.
DEFAULT_CAPACITY = 256


class EventRing:
    """Fixed-capacity buffer of structured events."""

    __slots__ = ("capacity", "_ring", "total_recorded", "counts_by_kind",
                 "on_record")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.total_recorded = 0
        self.counts_by_kind: Dict[str, int] = {}
        #: Optional mirror callback — the serve telemetry hub attaches one
        #: so rare events also reach live stream subscribers.  ``None``
        #: (the default) costs a single falsy check per recorded event.
        self.on_record: Optional[Callable[[Dict[str, object]], None]] = None

    def record(self, kind: str, at: Optional[int] = None, **fields: object) -> None:
        """Append one event.

        Args:
            kind: Short event type (``ctr_overflow``, ``predictor_mode_flip``).
            at: Position in the run, usually the access count.
            fields: Arbitrary JSON-safe structured payload.
        """
        event: Dict[str, object] = {"kind": kind}
        if at is not None:
            event["at"] = at
        if fields:
            event.update(fields)
        self._ring.append(event)
        self.total_recorded += 1
        self.counts_by_kind[kind] = self.counts_by_kind.get(kind, 0) + 1
        if self.on_record is not None:
            self.on_record(event)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.total_recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterable[Dict[str, object]]:
        return iter(self._ring)

    def to_list(self) -> List[Dict[str, object]]:
        """The retained events, oldest first."""
        return list(self._ring)

    def filter(self, kind: str) -> List[Dict[str, object]]:
        """The retained events of one ``kind``, oldest first."""
        return [event for event in self._ring if event.get("kind") == kind]

    def to_jsonl(self) -> str:
        """One JSON object per line (empty string when no events)."""
        return "\n".join(json.dumps(event, sort_keys=True) for event in self._ring)

    def summary(self) -> Dict[str, object]:
        """Counts by kind plus ring occupancy, for manifests and the CLI."""
        return {
            "total": self.total_recorded,
            "retained": len(self._ring),
            "dropped": self.dropped,
            "by_kind": dict(sorted(self.counts_by_kind.items())),
        }

    def clear(self) -> None:
        """Drop everything, including the historical counts."""
        self._ring.clear()
        self.total_recorded = 0
        self.counts_by_kind.clear()


def load_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse an events JSONL blob back into a list of dictionaries."""
    events: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events
