"""Central ``logging`` setup for the whole reproduction.

Every diagnostic that used to be an ad-hoc ``print(..., file=sys.stderr)``
now flows through a ``repro``-rooted :mod:`logging` hierarchy:

* ``get_logger("exec")`` returns the ``repro.exec`` logger — call sites
  never touch handlers;
* :func:`setup_logging` installs a single stderr handler on the ``repro``
  root, idempotently, with the level taken from ``REPRO_LOG``
  (``debug`` | ``info`` | ``warning`` | ``error``, default ``info``);
* the handler is **ticker-aware**: when a live
  :class:`~repro.exec.telemetry.ProgressTicker` has a line on screen, the
  handler erases it before emitting so log records never interleave with
  the in-place progress line (the ticker redraws itself on its next
  update).
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Root of the repo's logger hierarchy.
ROOT_LOGGER = "repro"

#: Environment variable selecting the level.
LEVEL_ENV = "REPRO_LOG"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}

#: The ticker (if any) currently drawing on stderr.  Registered by
#: ``ProgressTicker`` so the handler can clear its line before logging.
_ACTIVE_TICKER = None


def register_ticker(ticker) -> None:
    """Tell the log handler that ``ticker`` owns the current stderr line."""
    global _ACTIVE_TICKER
    _ACTIVE_TICKER = ticker


def unregister_ticker(ticker) -> None:
    """Drop ``ticker`` (no-op when another ticker took over already)."""
    global _ACTIVE_TICKER
    if _ACTIVE_TICKER is ticker:
        _ACTIVE_TICKER = None


class TickerAwareStreamHandler(logging.StreamHandler):
    """Stderr handler that erases a live ticker line before each record."""

    def emit(self, record: logging.LogRecord) -> None:
        ticker = _ACTIVE_TICKER
        if ticker is not None:
            try:
                ticker.clear_line()
            except Exception:  # pragma: no cover - display only
                pass
        super().emit(record)


def level_from_env(default: int = logging.INFO) -> int:
    """The level named by ``REPRO_LOG`` (case-insensitive), else ``default``."""
    name = os.environ.get(LEVEL_ENV, "").strip().lower()
    return _LEVELS.get(name, default)


def setup_logging(
    level: Optional[int] = None,
    stream=None,
    force: bool = False,
) -> logging.Logger:
    """Install the stderr handler on the ``repro`` root logger.

    Idempotent: repeated calls reuse the existing handler (unless
    ``force`` replaces it) but always refresh the level, so a test that
    monkeypatches ``REPRO_LOG`` and calls again sees the new level.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    ours = [h for h in logger.handlers if isinstance(h, TickerAwareStreamHandler)]
    if force:
        for handler in ours:
            logger.removeHandler(handler)
        ours = []
    if not ours:
        handler = TickerAwareStreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        logger.addHandler(handler)
    logger.setLevel(level if level is not None else level_from_env())
    # The repo's diagnostics are self-contained; don't duplicate through
    # any root-logger handlers an embedding application installed.
    logger.propagate = False
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
