"""Phase spans: hierarchical wall-time breakdown of a run.

``with span("trace_gen", workload="dfs"):`` opens a timed phase; spans
nest, so a job's recorder ends up with a tree like::

    job cosmos/dfs            1.84s
    ├── trace_gen             0.31s
    └── simulate              1.52s

A :class:`SpanRecorder` collects completed spans.  When no recorder is
installed (observability off) :func:`span` returns a shared no-op context
manager — entering it allocates nothing and times nothing.

The recorded tree exports two ways: :meth:`SpanRecorder.to_dict` for the
run manifest, and :meth:`SpanRecorder.to_chrome_trace` as the Chrome
``chrome://tracing`` / Perfetto JSON array format (complete events,
``ph: "X"``, microsecond timestamps).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional


class Span:
    """One completed (or in-flight) timed phase."""

    __slots__ = ("name", "meta", "start_s", "duration_s", "children")

    def __init__(self, name: str, meta: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.meta = meta or {}
        self.start_s = 0.0
        self.duration_s = 0.0
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
        }
        if self.meta:
            data["meta"] = dict(self.meta)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        span = cls(str(data["name"]), dict(data.get("meta", {})) or None)
        span.start_s = float(data.get("start_s", 0.0))
        span.duration_s = float(data.get("duration_s", 0.0))
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span


class _SpanContext:
    """Context manager pushing one span onto a recorder's stack."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "SpanRecorder", span_obj: Span) -> None:
        self._recorder = recorder
        self._span = span_obj

    def __enter__(self) -> Span:
        self._recorder._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._pop(self._span)


class _NullSpanContext:
    """Shared do-nothing span used when no recorder is active."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class SpanRecorder:
    """Collects a tree of spans relative to its own start time."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        self.started_s = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, **meta: object) -> _SpanContext:
        """A context manager timing phase ``name`` under the current span."""
        return _SpanContext(self, Span(name, meta or None))

    def _push(self, span_obj: Span) -> None:
        span_obj.start_s = time.perf_counter() - self.started_s
        if self._stack:
            self._stack[-1].children.append(span_obj)
        else:
            self.roots.append(span_obj)
        self._stack.append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        span_obj.duration_s = time.perf_counter() - self.started_s - span_obj.start_s
        # Exceptions can unwind several spans at once; pop to the matching one.
        while self._stack:
            top = self._stack.pop()
            if top is span_obj:
                break

    # -- export --------------------------------------------------------
    def total_time(self) -> float:
        """Wall time covered by the top-level spans."""
        return sum(span.duration_s for span in self.roots)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total_s": round(self.total_time(), 6),
            "spans": [span.to_dict() for span in self.roots],
        }

    @classmethod
    def tree_from_dict(cls, data: Dict[str, object]) -> List[Span]:
        """Rebuild the span tree of a :meth:`to_dict` payload."""
        return [Span.from_dict(entry) for entry in data.get("spans", [])]

    def to_chrome_trace(self, pid: Optional[int] = None, tid: Optional[int] = None) -> List[Dict[str, object]]:
        """Flatten into Chrome-trace complete events (``ph: "X"``)."""
        pid = pid if pid is not None else os.getpid()
        tid = tid if tid is not None else threading.get_ident() % 100_000
        events: List[Dict[str, object]] = []

        def emit(span_obj: Span) -> None:
            event: Dict[str, object] = {
                "name": span_obj.name,
                "ph": "X",
                "ts": round(span_obj.start_s * 1e6, 1),
                "dur": round(span_obj.duration_s * 1e6, 1),
                "pid": pid,
                "tid": tid,
            }
            if span_obj.meta:
                event["args"] = {k: str(v) for k, v in span_obj.meta.items()}
            events.append(event)
            for child in span_obj.children:
                emit(child)

        for root in self.roots:
            emit(root)
        return events

    def format_tree(self, indent: int = 0) -> str:
        """Human-readable tree with per-phase durations."""
        lines: List[str] = []

        def walk(span_obj: Span, depth: int) -> None:
            meta = ""
            if span_obj.meta:
                meta = " (" + ", ".join(f"{k}={v}" for k, v in span_obj.meta.items()) + ")"
            lines.append(f"{'  ' * depth}{span_obj.name}{meta}  {span_obj.duration_s:.3f}s")
            for child in span_obj.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, indent)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Module-level "current recorder" plumbing
# ----------------------------------------------------------------------
_CURRENT: Optional[SpanRecorder] = None


def install_recorder(recorder: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Make ``recorder`` the process's active recorder; returns the old one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = recorder
    return previous


def active_recorder() -> Optional[SpanRecorder]:
    """The currently installed recorder, if any."""
    return _CURRENT


def span(name: str, **meta: object):
    """Time phase ``name`` on the active recorder (no-op when none)."""
    recorder = _CURRENT
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name, **meta)


class recording:
    """``with recording(recorder):`` — install/restore around a block.

    Accepts ``None`` so callers can write ``with recording(rec or None):``
    unconditionally; the null case installs nothing and restores nothing.
    """

    __slots__ = ("_recorder", "_previous")

    def __init__(self, recorder: Optional[SpanRecorder]) -> None:
        self._recorder = recorder
        self._previous: Optional[SpanRecorder] = None

    def __enter__(self) -> Optional[SpanRecorder]:
        if self._recorder is not None:
            self._previous = install_recorder(self._recorder)
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._recorder is not None:
            install_recorder(self._previous)
