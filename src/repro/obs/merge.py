"""Stitch per-process span trees into one run-level Chrome trace.

A parallel sweep leaves its spans in two places: the run manifest embeds
the orchestrator's tree (``cache_probe``/``execute``), and every worker
writes its own ``spans.trace.json`` under ``<cache>/obs/<hash16>/`` with
the worker's real pid recorded at export time.  :func:`merge_manifest`
reads the manifest, collects the job artifacts whose ``run_id`` matches
(legacy artifacts without a ``run_id`` are included too, so pre-existing
caches still merge), and emits a single Chrome-trace JSON array:

* one ``M``-phase ``run_id`` metadata event naming the run,
* ``process_name`` metadata per pid (orchestrator and each worker),
* the orchestrator's spans under its own pid,
* every job's spans under the pid that executed it.

The merged file lands as the manifest's ``.trace.json`` sibling and the
manifest is rewritten with a ``trace`` key pointing at it — the runner
calls this automatically at the end of an observed run, and
``repro obs merge <manifest>`` re-runs it on demand (e.g. after jobs from
several hosts were rsynced into one cache).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .artifacts import job_dir, obs_root
from .spans import Span


def spans_to_events(spans: List[Dict[str, object]], pid: int,
                    tid: int = 0) -> List[Dict[str, object]]:
    """Flatten a manifest span tree into Chrome complete events."""
    events: List[Dict[str, object]] = []

    def emit(node: Span) -> None:
        event: Dict[str, object] = {
            "name": node.name,
            "ph": "X",
            "ts": round(node.start_s * 1e6, 1),
            "dur": round(node.duration_s * 1e6, 1),
            "pid": pid,
            "tid": tid,
        }
        if node.meta:
            event["args"] = {k: str(v) for k, v in node.meta.items()}
        events.append(event)
        for child in node.children:
            emit(child)

    for payload in spans:
        emit(Span.from_dict(payload))
    return events


def _metadata_event(name: str, pid: int, args: Dict[str, object]) -> Dict[str, object]:
    return {"name": name, "ph": "M", "pid": pid, "tid": 0, "args": args}


def collect_job_events(
    root: Path, job_hash: str, run_id: Optional[str]
) -> Tuple[List[Dict[str, object]], Optional[Dict[str, object]]]:
    """One job's Chrome events and its ``job.json`` meta, if they merge.

    Returns ``([], None)`` when the artifact is missing, unreadable, or
    was written by a *different* run (its ``run_id`` exists and differs).
    """
    directory = job_dir(Path(root), job_hash)
    trace_path = directory / "spans.trace.json"
    meta_path = directory / "job.json"
    try:
        meta = json.loads(meta_path.read_text()) if meta_path.is_file() else {}
        if run_id is not None and meta.get("run_id") not in (None, run_id):
            return [], None
        if not trace_path.is_file():
            return [], meta or None
        events = json.loads(trace_path.read_text())
    except (OSError, ValueError):
        return [], None
    if not isinstance(events, list):
        return [], None
    return [e for e in events if isinstance(e, dict)], meta or None


def merge_events(manifest_payload: Dict[str, object],
                 cache_root: Path) -> List[Dict[str, object]]:
    """The merged Chrome event list for one manifest payload."""
    run_id = manifest_payload.get("run_id")
    root_pid = int(manifest_payload.get("pid", 0) or 0)
    events: List[Dict[str, object]] = []
    if run_id is not None:
        events.append(_metadata_event("run_id", root_pid,
                                      {"run_id": str(run_id)}))
    spans = manifest_payload.get("spans") or {}
    if isinstance(spans, dict) and spans.get("spans"):
        events.append(_metadata_event(
            "process_name", root_pid,
            {"name": f"{spans.get('name', 'exec.run')} (orchestrator)"}))
        events.extend(spans_to_events(spans["spans"], pid=root_pid))

    root = obs_root(cache_root)
    named_pids = {root_pid}
    for record in manifest_payload.get("jobs", []):
        if not isinstance(record, dict):
            continue
        job_hash = str(record.get("job_hash", ""))
        if not job_hash:
            continue
        job_events, meta = collect_job_events(
            root, job_hash, str(run_id) if run_id is not None else None)
        if not job_events:
            continue
        pids = {int(e.get("pid", 0)) for e in job_events}
        label = f"{record.get('design', '?')}/{record.get('workload', '?')}"
        for pid in pids - named_pids:
            named_pids.add(pid)
            events.append(_metadata_event(
                "process_name", pid, {"name": f"worker pid {pid}"}))
        for event in job_events:
            args = dict(event.get("args") or {})
            args.setdefault("job", label)
            if run_id is not None:
                args.setdefault("run_id", str(run_id))
            event["args"] = args
        events.extend(job_events)
    return events


def merged_trace_path(manifest_path: Path) -> Path:
    """Where the merged trace for ``manifest_path`` lives (its sibling)."""
    return Path(manifest_path).with_suffix(".trace.json")


def merge_manifest(
    manifest_path: Path,
    cache_root: Optional[Path] = None,
    output: Optional[Path] = None,
) -> Tuple[Path, int]:
    """Merge a run manifest's traces; returns ``(trace_path, event_count)``.

    Rewrites the manifest with a ``trace`` key naming the merged artifact
    (relative to the manifest's directory).

    Raises:
        OSError / ValueError: On an unreadable or non-JSON manifest.
    """
    manifest_path = Path(manifest_path)
    payload = json.loads(manifest_path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{manifest_path} is not a manifest object")
    if cache_root is None:
        from ..bench.runner import cache_dir

        cache_root = cache_dir()
    events = merge_events(payload, Path(cache_root))
    trace_path = Path(output) if output is not None else merged_trace_path(manifest_path)
    trace_path.parent.mkdir(parents=True, exist_ok=True)
    trace_path.write_text(json.dumps(events, indent=1) + "\n")

    payload["trace"] = trace_path.name
    from ..exec.cache import write_json_atomic

    write_json_atomic(manifest_path, payload)
    return trace_path, len(events)
