"""Physical address-space layout of the protected memory.

The simulator places the counter region, MAC region and Merkle-tree node
region above the protected data region, all addressed at 64B-block
granularity.  Geometry for the paper's configuration (32 GB protected
memory, 64B lines, MorphCtr 1:128) gives ~537M data blocks and ~4.2M
counter lines; the binary integrity tree over those lines is 22 levels
deep, matching the paper's "verifying a single CTR requires access to
log2(537M/128) ~ 22 MT nodes" (Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Default Merkle-tree arity.  The paper's traffic arithmetic (Sec. 3.1:
#: "verifying a single CTR requires access to the log2(537M/128) ~ 22 MT
#: nodes") assumes a binary tree over counter lines, so 2 is the default;
#: an SGX-style 8-ary tree is available by constructing the layout with
#: ``mt_arity=8``.
DEFAULT_MT_ARITY = 2


@dataclass(frozen=True)
class SecureLayout:
    """Address-space map for data, counters, MACs and MT nodes.

    Args:
        data_blocks: Number of protected 64B data blocks.
        blocks_per_ctr: Coverage ratio of the counter scheme in use.
    """

    data_blocks: int
    blocks_per_ctr: int = 128
    mt_arity: int = DEFAULT_MT_ARITY

    def __post_init__(self) -> None:
        if self.data_blocks <= 0:
            raise ValueError("data_blocks must be positive")
        if self.blocks_per_ctr <= 0:
            raise ValueError("blocks_per_ctr must be positive")
        if self.mt_arity < 2:
            raise ValueError("mt_arity must be >= 2")
        # Precompute per-level node counts and region offsets: mt_path() is
        # on the simulator's hot path (one traversal per CTR cache miss).
        counts: List[int] = []
        nodes = self.ctr_blocks
        while nodes > 1:
            nodes = -(-nodes // self.mt_arity)
            counts.append(max(nodes, 1))
        if not counts:
            counts.append(1)
        offsets: List[int] = []
        running = 0
        for count in counts:
            offsets.append(running)
            running += count
        object.__setattr__(self, "_level_counts", tuple(counts))
        object.__setattr__(self, "_level_offsets", tuple(offsets))

    # ------------------------------------------------------------------
    # Region sizes
    # ------------------------------------------------------------------
    @property
    def ctr_blocks(self) -> int:
        """Number of 64B counter lines."""
        return -(-self.data_blocks // self.blocks_per_ctr)

    @property
    def mac_blocks(self) -> int:
        """Number of 64B MAC lines (8 x 64-bit MACs per line)."""
        return -(-self.data_blocks // 8)

    @property
    def mt_levels(self) -> int:
        """Number of internal hash levels above the counter leaves."""
        return len(self._level_counts)

    def mt_nodes_at_level(self, level: int) -> int:
        """Node count at ``level`` (level 0 = parents of the leaves)."""
        return self._level_counts[level]

    # ------------------------------------------------------------------
    # Region base addresses (in 64B blocks)
    # ------------------------------------------------------------------
    @property
    def ctr_region_base(self) -> int:
        """First block address of the counter region."""
        return self.data_blocks

    @property
    def mac_region_base(self) -> int:
        """First block address of the MAC region."""
        return self.ctr_region_base + self.ctr_blocks

    @property
    def mt_region_base(self) -> int:
        """First block address of the Merkle-tree node region."""
        return self.mac_region_base + self.mac_blocks

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def ctr_block_address(self, ctr_index: int) -> int:
        """DRAM block address of counter line ``ctr_index``."""
        if not 0 <= ctr_index < self.ctr_blocks:
            raise ValueError(f"ctr_index {ctr_index} out of range [0, {self.ctr_blocks})")
        return self.ctr_region_base + ctr_index

    def mac_block_address(self, data_block: int) -> int:
        """DRAM block address of the MAC line covering ``data_block``."""
        if not 0 <= data_block < self.data_blocks:
            raise ValueError(f"data_block {data_block} out of range [0, {self.data_blocks})")
        return self.mac_region_base + data_block // 8

    def mt_node_address(self, level: int, node_index: int) -> int:
        """DRAM block address of an MT node at (level, index)."""
        if level < 0 or level >= self.mt_levels:
            raise ValueError(f"level {level} out of range [0, {self.mt_levels})")
        return self.mt_region_base + self._level_offsets[level] + node_index

    def mt_path(self, ctr_index: int) -> List[int]:
        """Block addresses of the MT nodes from leaf-parent to root.

        The root (last level) is excluded: it is pinned on-chip and never
        fetched from DRAM (paper Sec. 2.1).
        """
        if not 0 <= ctr_index < self.ctr_blocks:
            raise ValueError(f"ctr_index {ctr_index} out of range [0, {self.ctr_blocks})")
        path: List[int] = []
        node = ctr_index
        for level in range(self.mt_levels):
            node //= self.mt_arity
            if level == self.mt_levels - 1:
                break  # root stays on-chip
            path.append(self.mt_node_address(level, node))
        return path

    @classmethod
    def for_memory_size(
        cls, memory_bytes: int, blocks_per_ctr: int = 128, mt_arity: int = DEFAULT_MT_ARITY
    ) -> "SecureLayout":
        """Layout for a protected memory of ``memory_bytes`` (e.g. 32 GB)."""
        return cls(
            data_blocks=memory_bytes // 64,
            blocks_per_ctr=blocks_per_ctr,
            mt_arity=mt_arity,
        )
