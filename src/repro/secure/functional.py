"""Functional (bit-accurate) secure memory: the paper's Figure 1 data path.

Where :mod:`repro.secure.engine` models *timing and traffic*, this module
models *data*: a complete protected memory whose writes really encrypt
under AES-CTR with per-block counters, really compute MACs, and really
maintain a Merkle tree over the counter region — and whose reads decrypt
and authenticate, raising on any tampering or replay.

This is what the security test-suite (including the hypothesis attack
properties) exercises, and it is the reference model for what the timing
engine is accounting for.  It is deliberately small-scale: every structure
is sparse, so memories of billions of blocks cost only what you touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .aes import AesCtrEngine, LINE_BYTES
from .counters import CounterScheme, MorphCtrCounters, ReencryptionEvent
from .mac import MacStore
from .merkle import MerkleTree


class IntegrityViolation(Exception):
    """Raised when an access fails MAC or Merkle-tree authentication.

    Attributes:
        kind: Which check fired — ``"mt"`` (counter-line tree walk) or
            ``"mac"`` (per-block MAC).
        block: Data block being accessed when the violation surfaced
            (``None`` for pure counter-line failures).
        ctr_index: Counter line involved.
        level: For ``"mt"`` violations, the tree level of the first
            mismatch as reported by
            :meth:`~repro.secure.merkle.MerkleTree.verify_leaf_level`
            (0 = leaf digest, ``k`` = internal level ``k - 1``).
    """

    def __init__(
        self,
        message: str,
        kind: str = "mt",
        block: Optional[int] = None,
        ctr_index: Optional[int] = None,
        level: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.block = block
        self.ctr_index = ctr_index
        self.level = level


@dataclass
class SecureMemoryStats:
    """Event counters for the functional memory."""

    reads: int = 0
    writes: int = 0
    reencryptions: int = 0
    violations_detected: int = 0


@dataclass
class FunctionalSecureMemory:
    """A self-contained AES-CTR + MAC + MT protected memory.

    Args:
        num_blocks: Protected capacity in 64B blocks.
        scheme: Counter organisation (defaults to MorphCtr 1:128).
        aes: One-time-pad engine (defaults to the library engine).

    Usage::

        memory = FunctionalSecureMemory(num_blocks=1 << 20)
        memory.write(42, b"secret" + b"\\x00" * 58)
        assert memory.read(42).startswith(b"secret")
    """

    num_blocks: int = 1 << 20
    scheme: Optional[CounterScheme] = None
    aes: AesCtrEngine = field(default_factory=AesCtrEngine)
    #: Authenticate the counter line before incrementing it on a write.
    #: A real memory controller verifies every counter it fetches, reads
    #: *and* writes alike — without this, a rolled-back counter line is
    #: silently "healed" by the next write and the replay goes undetected.
    verify_writes: bool = True

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.scheme is None:
            self.scheme = MorphCtrCounters()
        self.macs = MacStore()
        leaves = -(-self.num_blocks // self.scheme.blocks_per_ctr)
        self.tree = MerkleTree(leaves, arity=2)
        self.stats = SecureMemoryStats()
        self._ciphertexts: Dict[int, bytes] = {}
        #: Optional observability event ring (``repro.obs``): when attached,
        #: every detected violation is recorded as an ``integrity_violation``
        #: event.  ``None`` (the default) costs nothing.
        self.obs_events = None
        #: Optional per-operation attack hook (``repro.verify``): called as
        #: ``attack_hook(op, block)`` with ``op`` in ``("read", "write")``
        #: *before* the operation executes, letting a harness inject
        #: tampering mid-run on a deterministic schedule.  ``None`` (the
        #: default) keeps the data path callback-free.
        self.attack_hook: Optional[Callable[[str, int], None]] = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range [0, {self.num_blocks})")

    def _ctr_leaf_payload(self, ctr_index: int) -> bytes:
        """Serialise a counter line's state for the integrity tree."""
        base = ctr_index * self.scheme.blocks_per_ctr
        values = tuple(
            self.scheme.counter_value(base + offset)
            for offset in range(self.scheme.blocks_per_ctr)
            if base + offset < self.num_blocks
        )
        return repr(values).encode()

    def _reencrypt_page(self, event: ReencryptionEvent) -> None:
        """Re-encrypt every written block covered by an overflowed line.

        The counters were already reset/advanced by the scheme; every
        resident ciphertext in the page is decrypted under nothing (we kept
        plaintexts implicitly via decrypt-before-overflow) — in this
        functional model we simply re-encrypt the stored lines under their
        new counter values and refresh the MACs.
        """
        self.stats.reencryptions += 1
        first = event.first_data_block
        for block in range(first, min(first + event.num_blocks, self.num_blocks)):
            ciphertext = self._ciphertexts.get(block)
            if ciphertext is None:
                continue
            plaintext = self._pending_plaintexts.pop(block, None)
            if plaintext is None:
                # Decrypt with the *old* counter is impossible post-reset in
                # this sparse model, so plaintexts are staged before every
                # increment (see write()).
                raise RuntimeError("re-encryption without staged plaintext")
            counter = self.scheme.counter_value(block)
            new_ciphertext = self.aes.encrypt(plaintext, block << 6, counter)
            self._ciphertexts[block] = new_ciphertext
            self.macs.update(block, new_ciphertext, counter)

    def _raise_violation(
        self,
        message: str,
        kind: str,
        block: Optional[int],
        ctr_index: Optional[int],
        level: Optional[int] = None,
    ) -> None:
        self.stats.violations_detected += 1
        if self.obs_events is not None:
            self.obs_events.record(
                "integrity_violation",
                at=self.stats.reads + self.stats.writes,
                check=kind,
                block=block,
                ctr_index=ctr_index,
                level=level,
            )
        raise IntegrityViolation(
            message, kind=kind, block=block, ctr_index=ctr_index, level=level
        )

    def _authenticate_ctr_line(self, ctr_index: int, block: Optional[int]) -> None:
        """MT-verify a counter line, raising a structured violation."""
        level = self.tree.verify_leaf_level(
            ctr_index, self._ctr_leaf_payload(ctr_index)
        )
        if level is not None:
            self._raise_violation(
                f"counter-line {ctr_index} failed MT verification at level {level}",
                kind="mt", block=block, ctr_index=ctr_index, level=level,
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    _pending_plaintexts: Dict[int, bytes] = field(default_factory=dict)

    def write(self, block: int, plaintext: bytes) -> None:
        """Encrypt and store one 64B line (shorter payloads are padded).

        The covering counter line is authenticated before its counter is
        incremented (see ``verify_writes``), so a write lands on tampered
        counter state only by raising :class:`IntegrityViolation` first.
        """
        self._check_block(block)
        if len(plaintext) > LINE_BYTES:
            raise ValueError(f"plaintext exceeds {LINE_BYTES} bytes")
        if self.attack_hook is not None:
            self.attack_hook("write", block)
        plaintext = plaintext.ljust(LINE_BYTES, b"\x00")
        if self.verify_writes:
            ctr_index = self.scheme.ctr_index(block)
            if self.tree.has_leaf(ctr_index):
                self._authenticate_ctr_line(ctr_index, block)
        self.stats.writes += 1
        # Stage every resident plaintext in the page so a potential
        # overflow can re-encrypt losslessly.
        page_first = self.scheme.ctr_index(block) * self.scheme.blocks_per_ctr
        for resident in range(page_first, min(page_first + self.scheme.blocks_per_ctr, self.num_blocks)):
            ciphertext = self._ciphertexts.get(resident)
            if ciphertext is not None and resident not in self._pending_plaintexts:
                counter = self.scheme.counter_value(resident)
                self._pending_plaintexts[resident] = self.aes.decrypt(
                    ciphertext, resident << 6, counter
                )
        event = self.scheme.increment(block)
        self._pending_plaintexts[block] = plaintext
        if event is not None:
            self._reencrypt_page(event)
        counter = self.scheme.counter_value(block)
        ciphertext = self.aes.encrypt(plaintext, block << 6, counter)
        self._ciphertexts[block] = ciphertext
        self.macs.update(block, ciphertext, counter)
        self._pending_plaintexts.pop(block, None)
        ctr_index = self.scheme.ctr_index(block)
        self.tree.update_leaf(ctr_index, self._ctr_leaf_payload(ctr_index))

    def read(self, block: int) -> bytes:
        """Authenticate and decrypt one line; raises on tampering/replay."""
        self._check_block(block)
        if self.attack_hook is not None:
            self.attack_hook("read", block)
        self.stats.reads += 1
        ciphertext = self._ciphertexts.get(block)
        if ciphertext is None:
            raise KeyError(f"block {block} was never written")
        counter = self.scheme.counter_value(block)
        ctr_index = self.scheme.ctr_index(block)
        self._authenticate_ctr_line(ctr_index, block)
        if not self.macs.verify(block, ciphertext, counter):
            self._raise_violation(
                f"block {block} failed MAC verification",
                kind="mac", block=block, ctr_index=ctr_index,
            )
        return self.aes.decrypt(ciphertext, block << 6, counter)

    # ------------------------------------------------------------------
    # Attack surface (for security testing)
    # ------------------------------------------------------------------
    def tamper_ciphertext(self, block: int, new_ciphertext: bytes) -> None:
        """Overwrite stored ciphertext, as a physical attacker could."""
        self._check_block(block)
        self._ciphertexts[block] = new_ciphertext

    def snapshot_ciphertext(self, block: int) -> bytes:
        """Copy a block's ciphertext (for replay-attack tests)."""
        self._check_block(block)
        return self._ciphertexts[block]

    def tamper_swap(self, block_a: int, block_b: int) -> None:
        """Relocate two blocks' lines — ciphertexts *and* their MACs.

        The strongest variant of the cross-address attack: the attacker
        moves a whole (ciphertext, MAC) pair to another address.  Detected
        because the MAC binds the physical address.
        """
        self._check_block(block_a)
        self._check_block(block_b)
        ciphertexts = self._ciphertexts
        ciphertexts[block_a], ciphertexts[block_b] = (
            ciphertexts[block_b], ciphertexts[block_a],
        )
        self.macs.swap(block_a, block_b)

    @property
    def resident_blocks(self) -> int:
        """Number of blocks currently holding data."""
        return len(self._ciphertexts)
