"""Message Authentication Code (MAC) model.

Functionally, ``MAC = Hash(Ciphertext || PA || CTR)`` truncated to 64 bits
(paper Sec. 2.1).  For traffic/timing, the system stores one 64-bit MAC per
64B line, so eight MACs pack into one 64B MAC line and authentication costs
one MAC DRAM access per eight data accesses (paper Sec. 5).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Width of a stored MAC in bits.
MAC_BITS = 64

#: Number of MACs per 64B MAC line; yields the 1-per-8 access ratio.
MACS_PER_LINE = 8


def compute_mac(ciphertext: bytes, physical_address: int, counter: int, key: bytes = b"cosmos-mac") -> int:
    """Return the 64-bit MAC of (ciphertext, PA, CTR) under ``key``."""
    digest = hashlib.sha256(
        key
        + ciphertext
        + physical_address.to_bytes(8, "little")
        + counter.to_bytes(16, "little", signed=False)
    ).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class MacStore:
    """Stores and verifies per-block MACs (functional model).

    Used by the functional end-to-end tests: writes record a MAC, reads
    verify it, and any tampering with ciphertext, address or counter is
    detected as a mismatch.
    """

    key: bytes = b"cosmos-mac"
    _macs: Dict[int, int] = field(default_factory=dict)
    #: Optional verification observer (``repro.verify``): called after every
    #: :meth:`verify` as ``on_verify(data_block, ok)``.  ``None`` (the
    #: default) keeps verification free of any callback cost.
    on_verify: Optional[Callable[[int, bool], None]] = field(
        default=None, repr=False, compare=False
    )

    def update(self, data_block: int, ciphertext: bytes, counter: int) -> int:
        """Recompute and store the MAC for a written block; returns it."""
        mac = compute_mac(ciphertext, data_block << 6, counter, self.key)
        self._macs[data_block] = mac
        return mac

    def verify(self, data_block: int, ciphertext: bytes, counter: int) -> bool:
        """True when the stored MAC matches the supplied contents."""
        expected = self._macs.get(data_block)
        ok = expected is not None and expected == compute_mac(
            ciphertext, data_block << 6, counter, self.key
        )
        if self.on_verify is not None:
            self.on_verify(data_block, ok)
        return ok

    def known_blocks(self) -> int:
        """Number of blocks with a recorded MAC."""
        return len(self._macs)

    # ------------------------------------------------------------------
    # Attack surface (for security testing)
    # ------------------------------------------------------------------
    def snapshot(self, data_block: int) -> Optional[int]:
        """Copy a block's stored MAC (for stale-MAC replay tests)."""
        return self._macs.get(data_block)

    def restore(self, data_block: int, mac: Optional[int]) -> None:
        """Overwrite (or erase, with ``None``) a stored MAC, as an attacker
        controlling the MAC region could."""
        if mac is None:
            self._macs.pop(data_block, None)
        else:
            self._macs[data_block] = mac

    def swap(self, block_a: int, block_b: int) -> None:
        """Exchange two blocks' stored MACs (cross-address relocation)."""
        self._macs[block_a], self._macs[block_b] = (
            self._macs.get(block_b),
            self._macs.get(block_a),
        )
        for block in (block_a, block_b):
            if self._macs[block] is None:
                del self._macs[block]


class MacTrafficModel:
    """Charges one MAC DRAM access per :data:`MACS_PER_LINE` data accesses.

    The paper models authentication cost statistically ("one MAC access per
    eight data accesses"); this class reproduces exactly that accounting.
    """

    def __init__(self) -> None:
        self._pending = 0
        self.accesses_charged = 0

    def on_data_access(self) -> bool:
        """Record a protected data DRAM access; True when a MAC line is fetched."""
        self._pending += 1
        if self._pending >= MACS_PER_LINE:
            self._pending = 0
            self.accesses_charged += 1
            return True
        return False
