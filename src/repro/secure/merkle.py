"""Merkle (integrity) tree over the counter region.

Two cooperating models are provided:

* :class:`MerkleTree` — a *functional* sparse hash tree.  Leaves are counter
  lines; each internal node hashes its children; the root is held on-chip.
  It supports updates, per-leaf verification, and detects any tampering
  with leaves or internal nodes.  This is the piece the paper relies on for
  replay protection (Sec. 2.1) and it is exercised directly by the test
  suite (including property-based tamper tests).

* :class:`IntegrityTreeModel` — the *traffic/timing* model used by the
  simulator.  Every counter line fetched from DRAM must be authenticated by
  walking its MT path leaf-to-root; the walk stops early at the first MT
  node found in the on-chip MT-node cache (a verified node vouches for the
  subtree below it).  Each node fetched from DRAM is one 64B read — these
  reads are what dominates secure-memory traffic in the paper's Figure 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mem.cache import Cache
from .layout import SecureLayout


def _hash_children(children: List[bytes]) -> bytes:
    """Hash the concatenation of child digests into a parent digest."""
    return hashlib.sha256(b"".join(children)).digest()


class MerkleTree:
    """Sparse functional Merkle tree over counter lines.

    Args:
        num_leaves: Number of counter lines protected by the tree.
        arity: Children per internal node.

    Unwritten leaves hold a well-known default value, so the tree starts
    with a deterministic root and only touched paths are materialised.
    """

    def __init__(self, num_leaves: int, arity: int = 2) -> None:
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        if arity < 2:
            raise ValueError("arity must be >= 2")
        self.num_leaves = num_leaves
        self.arity = arity
        #: Optional verification observer (``repro.verify``): called after
        #: every :meth:`verify_leaf` as ``on_verify(leaf_index, failed_level)``
        #: with ``failed_level is None`` for an authentic leaf.  ``None``
        #: keeps verification free of any callback cost.
        self.on_verify = None
        self._leaves: Dict[int, bytes] = {}
        # _nodes[level][index]; level 0 = parents of leaves.
        self._nodes: List[Dict[int, bytes]] = []
        self._level_sizes: List[int] = []
        size = num_leaves
        while size > 1:
            size = -(-size // arity)
            self._level_sizes.append(size)
            self._nodes.append({})
        if not self._level_sizes:
            self._level_sizes.append(1)
            self._nodes.append({})
        # Default digests per level for untouched subtrees.
        self._default_leaf = hashlib.sha256(b"cosmos-default-leaf").digest()
        self._defaults: List[bytes] = []
        current = self._default_leaf
        for _ in self._level_sizes:
            current = _hash_children([current] * arity)
            self._defaults.append(current)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of internal levels (root inclusive)."""
        return len(self._level_sizes)

    def leaf_digest(self, leaf_index: int) -> bytes:
        """Digest of leaf ``leaf_index`` (default if never written)."""
        self._check_leaf(leaf_index)
        return self._leaves.get(leaf_index, self._default_leaf)

    def level_size(self, level: int) -> int:
        """Number of internal nodes at ``level`` (0 = parents of leaves)."""
        return self._level_sizes[level]

    def has_leaf(self, leaf_index: int) -> bool:
        """True once ``leaf_index`` has been written (non-default digest)."""
        self._check_leaf(leaf_index)
        return leaf_index in self._leaves

    def node_digest(self, level: int, index: int) -> bytes:
        """Digest of the internal node at (level, index)."""
        return self._nodes[level].get(index, self._defaults[level])

    @property
    def root(self) -> bytes:
        """Current root digest (held on-chip in a real system)."""
        return self.node_digest(self.levels - 1, 0)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_leaf(self, leaf_index: int, payload: bytes) -> bytes:
        """Write a leaf and re-hash its path to the root; returns new root."""
        self._check_leaf(leaf_index)
        self._leaves[leaf_index] = hashlib.sha256(payload).digest()
        index = leaf_index
        for level in range(self.levels):
            index //= self.arity
            children = self._children_digests(level, index)
            self._nodes[level][index] = _hash_children(children)
        return self.root

    def _children_digests(self, level: int, index: int) -> List[bytes]:
        children: List[bytes] = []
        for child_offset in range(self.arity):
            child_index = index * self.arity + child_offset
            if level == 0:
                if child_index < self.num_leaves:
                    children.append(self._leaves.get(child_index, self._default_leaf))
                else:
                    children.append(self._default_leaf)
            else:
                child_level = level - 1
                if child_index < self._level_sizes[child_level]:
                    children.append(self.node_digest(child_level, child_index))
                else:
                    children.append(self._defaults[child_level])
        return children

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify_leaf(self, leaf_index: int, payload: bytes) -> bool:
        """Authenticate ``payload`` as the content of ``leaf_index``.

        Recomputes the path from the leaf to the root against the stored
        sibling digests and compares with the on-chip root; any tampering
        along the way makes this return False.
        """
        return self.verify_leaf_level(leaf_index, payload) is None

    def verify_leaf_level(self, leaf_index: int, payload: bytes) -> Optional[int]:
        """Authenticate ``payload`` and report *where* verification failed.

        Returns ``None`` when the leaf is authentic.  Otherwise returns the
        tree level of the first mismatch: ``0`` means the leaf digest itself
        did not match ``payload``; ``k`` (``1 <= k <= levels``) means the
        internal node at internal level ``k - 1`` disagreed with the hash of
        its children.  The tamper-injection harness uses this to attribute a
        detection to the exact spliced node.
        """
        self._check_leaf(leaf_index)
        failed: Optional[int] = None
        current = hashlib.sha256(payload).digest()
        if current != self.leaf_digest(leaf_index):
            failed = 0
        else:
            index = leaf_index
            for level in range(self.levels):
                index //= self.arity
                recomputed = _hash_children(self._children_digests(level, index))
                if recomputed != self.node_digest(level, index):
                    failed = level + 1
                    break
        if self.on_verify is not None:
            self.on_verify(leaf_index, failed)
        return failed

    # ------------------------------------------------------------------
    # Attack surface (for security testing)
    # ------------------------------------------------------------------
    def tamper_node(self, level: int, index: int, digest: bytes) -> None:
        """Overwrite an internal node (attack simulation for tests)."""
        self._nodes[level][index] = digest

    def path_nodes(self, leaf_index: int) -> List[Tuple[int, int]]:
        """The ``(level, index)`` internal nodes on a leaf's path to the root."""
        self._check_leaf(leaf_index)
        nodes: List[Tuple[int, int]] = []
        index = leaf_index
        for level in range(self.levels):
            index //= self.arity
            nodes.append((level, index))
        return nodes

    def subtree_leaves(self, level: int, index: int) -> Tuple[int, int]:
        """Half-open leaf range ``[first, last)`` covered by node (level, index)."""
        span = self.arity ** (level + 1)
        first = index * span
        return first, min(first + span, self.num_leaves)

    def tamper_leaf(self, leaf_index: int, digest: bytes) -> None:
        """Overwrite a leaf digest without re-hashing (attack simulation)."""
        self._check_leaf(leaf_index)
        self._leaves[leaf_index] = digest

    def rehash_ancestors(self, level: int, index: int) -> None:
        """Recompute every node from (level, index)'s parent up to the root.

        Used by the tamper harness to *repair* the tree after undoing a
        node splice: writes that landed elsewhere while the splice was
        armed re-hashed their paths through the tampered digest, so the
        ancestors above the restored node may be stale.
        """
        for parent_level in range(level + 1, self.levels):
            index //= self.arity
            self._nodes[parent_level][index] = _hash_children(
                self._children_digests(parent_level, index)
            )

    def _check_leaf(self, leaf_index: int) -> None:
        if not 0 <= leaf_index < self.num_leaves:
            raise ValueError(f"leaf {leaf_index} out of range [0, {self.num_leaves})")


@dataclass
class IntegrityTreeStats:
    """Traffic accounting for MT traversals."""

    traversals: int = 0
    nodes_fetched: int = 0
    cache_hits: int = 0
    root_reached: int = 0

    @property
    def average_fetches(self) -> float:
        """Mean MT-node DRAM reads per traversal."""
        if self.traversals == 0:
            return 0.0
        return self.nodes_fetched / self.traversals


class IntegrityTreeModel:
    """Traffic/timing model of the MT traversal on CTR DRAM fetches.

    Args:
        layout: Address-space map supplying the per-counter MT paths.
        cache_size_bytes: Capacity of the on-chip MT-node cache; 0 disables
            caching (every traversal walks to the root).
        cache_assoc: Associativity of the MT-node cache.
    """

    def __init__(
        self,
        layout: SecureLayout,
        cache_size_bytes: int = 128 * 1024,
        cache_assoc: int = 8,
    ) -> None:
        self.layout = layout
        self.stats = IntegrityTreeStats()
        self.node_cache: Optional[Cache] = None
        if cache_size_bytes > 0:
            self.node_cache = Cache(cache_size_bytes, cache_assoc, name="mt_cache")

    def traverse(self, ctr_index: int) -> Tuple[int, List[int]]:
        """Authenticate a counter line fetched from DRAM.

        Walks the MT path leaf-parent to root, fetching nodes from DRAM
        until one hits in the MT-node cache (that node was already verified
        against the root, so the walk can stop).  Fetched nodes are
        installed in the cache.

        Returns:
            Tuple of (nodes fetched from DRAM, their block addresses).
        """
        self.stats.traversals += 1
        fetched: List[int] = []
        for node_address in self.layout.mt_path(ctr_index):
            if self.node_cache is not None and self.node_cache.access(node_address):
                self.stats.cache_hits += 1
                break
            fetched.append(node_address)
            if self.node_cache is not None:
                self.node_cache.fill(node_address)
        else:
            self.stats.root_reached += 1
        self.stats.nodes_fetched += len(fetched)
        return len(fetched), fetched
