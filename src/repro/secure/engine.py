"""Secure-memory engine: the memory-controller side of the system.

Owns the counter scheme, CTR cache, integrity-tree model, MAC traffic model
and the DRAM channel, and exposes the two operations the designs need:

* :meth:`ctr_access` — look up the counter line for a data block; a miss
  costs a CTR DRAM read plus the Merkle-tree authentication walk (traffic;
  the verification latency overlaps OTP generation per the paper, Sec. 5).
* :meth:`read_data` / :meth:`secure_write` — the data-side DRAM traffic,
  MAC accounting and, for writes, the counter increment with re-encryption
  handling (background 64B requests, per the paper's Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..mem.dram import DramModel
from ..mem.prefetchers import Prefetcher, make_prefetcher
from ..mem.replacement import ReplacementPolicy, make_policy
from ..mem.stats import TrafficStats
from .aes import AES_LATENCY_CYCLES, AUTH_LATENCY_CYCLES
from .counters import CounterScheme, MorphCtrCounters
from .ctr_cache import CtrCache
from .layout import SecureLayout
from .merkle import IntegrityTreeModel


@dataclass
class EngineConfig:
    """Sizing and latency knobs for the secure-memory engine.

    Defaults follow the paper's Table 3: 512KB LRU CTR cache, 40-cycle AES
    and authentication, 1-cycle CTR combination (MorphCtr major+minor).

    ``ctr_policy_name``/``ctr_prefetcher_name`` select the CTR-cache
    replacement policy and prefetcher by name (Figure 5's design space);
    an explicit policy object passed to the engine wins over the name.
    """

    ctr_cache_bytes: int = 512 * 1024
    ctr_cache_assoc: int = 16
    mt_cache_bytes: int = 128 * 1024
    aes_latency: int = AES_LATENCY_CYCLES
    auth_latency: int = AUTH_LATENCY_CYCLES
    ctr_lookup_latency: int = 3
    ctr_combine_latency: int = 1
    ctr_policy_name: Optional[str] = None
    ctr_prefetcher_name: Optional[str] = None
    #: Synergy-style MAC placement (Saileshwar et al., HPCA'18): the MAC
    #: rides in the ECC chip alongside the data, so authentication costs no
    #: separate DRAM accesses.  Used by the ``synergy``/``cosmos-synergy``
    #: designs — the paper's footnote notes COSMOS composes with such
    #: MT/MAC optimisations.
    mac_in_ecc: bool = False
    #: Name of a pinned DRAM calibration profile (``repro.mem.calibrate``,
    #: e.g. ``"ddr4-2400"`` or ``"ddr5-4800"``).  When set and no explicit
    #: ``dram`` model is passed to the engine, the channel is built from
    #: the profile's calibrated geometry and timings; ``None`` keeps the
    #: :class:`~repro.mem.dram.DramTimings` defaults.
    dram_profile: Optional[str] = None


@dataclass
class EngineCounters:
    """Event counters specific to the secure engine."""

    ctr_overflows: int = 0
    writes_seen: int = 0
    reads_seen: int = 0

    @property
    def reencryption_rate(self) -> float:
        """Overflows per write (paper Fig. 17 discussion)."""
        if self.writes_seen == 0:
            return 0.0
        return self.ctr_overflows / self.writes_seen


class SecureMemoryEngine:
    """Memory-controller model for an AES-CTR + MT protected memory."""

    def __init__(
        self,
        layout: SecureLayout,
        scheme: Optional[CounterScheme] = None,
        config: Optional[EngineConfig] = None,
        dram: Optional[DramModel] = None,
        ctr_policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.layout = layout
        self.scheme = scheme if scheme is not None else MorphCtrCounters()
        self.config = config if config is not None else EngineConfig()
        if dram is None:
            if self.config.dram_profile is not None:
                from ..mem.calibrate import load_profile

                dram = load_profile(self.config.dram_profile).build_model()
            else:
                dram = DramModel()
        self.dram = dram
        self.traffic = TrafficStats()
        self.events = EngineCounters()
        if ctr_policy is None and self.config.ctr_policy_name is not None:
            ctr_policy = make_policy(self.config.ctr_policy_name)
        self.prefetcher: Optional[Prefetcher] = None
        if self.config.ctr_prefetcher_name not in (None, "none"):
            self.prefetcher = make_prefetcher(self.config.ctr_prefetcher_name)
        self.ctr_cache = CtrCache(
            layout,
            self.scheme,
            size_bytes=self.config.ctr_cache_bytes,
            assoc=self.config.ctr_cache_assoc,
            policy=ctr_policy,
        )
        # Dirty counter lines evicted from the CTR cache are DRAM writes.
        self.ctr_cache.cache.writeback_sink = self._ctr_writeback
        self.integrity = IntegrityTreeModel(layout, cache_size_bytes=self.config.mt_cache_bytes)
        self._mac_pending = 0
        # Issue-time cursor for the current operation: the public entry
        # points stash their ``now`` here so internally-triggered requests
        # (CTR writebacks from cache fills, MT walks, MAC lines) are issued
        # at the same cycle and contend for banks/bus accordingly.
        self._now = 0
        # Optional hook set by COSMOS designs: maps a counter-line index to
        # a (locality_flag, locality_score) tag for write-path CTR accesses.
        self.ctr_classifier = None
        # Optional observability event ring (repro.obs).  None keeps the
        # write path free of any recording; when attached, only the rare
        # counter-overflow branch records an event.
        self.obs_events = None
        # Optional verification hook (repro.verify): called after every MT
        # authentication walk as on_authenticate(ctr_index, nodes_fetched).
        # The differential oracle uses it to cross-check, live, that every
        # counter-line DRAM fetch is authenticated exactly once.  None (the
        # default) keeps the counter path callback-free.
        self.on_authenticate = None

    # ------------------------------------------------------------------
    # Internal traffic helpers
    # ------------------------------------------------------------------
    def _ctr_writeback(self, ctr_block_address: int) -> None:
        self.traffic.ctr_writes += 1
        self.dram.request(ctr_block_address, is_write=True, now=self._now)

    def _charge_mac(self, data_block: int) -> None:
        """One MAC line access per 8 protected data accesses (paper Sec. 5).

        With Synergy-style MAC-in-ECC the MAC travels with the data burst,
        so no separate DRAM request is issued.
        """
        if self.config.mac_in_ecc:
            return
        self._mac_pending += 1
        if self._mac_pending >= 8:
            self._mac_pending = 0
            self.traffic.mac_accesses += 1
            self.dram.request(self.layout.mac_block_address(data_block), now=self._now)

    # ------------------------------------------------------------------
    # Counter path
    # ------------------------------------------------------------------
    def ctr_access(
        self,
        data_block: int,
        is_write: bool = False,
        locality_flag: Optional[int] = None,
        locality_score: Optional[int] = None,
        now: int = 0,
    ) -> Tuple[bool, int]:
        """Access the counter line covering ``data_block`` at cycle ``now``.

        Returns:
            ``(hit, latency)`` where latency covers the CTR-cache lookup
            plus, on a miss, the counter-line DRAM fetch (including any
            bank/bus queueing at ``now``).  The integrity walk's DRAM
            reads are charged as traffic and channel occupancy only — its
            latency overlaps OTP generation (paper Sec. 5).
        """
        self._now = now
        config = self.config
        latency = config.ctr_lookup_latency + config.ctr_combine_latency
        ctr_index = self.scheme.ctr_index(data_block)
        hit = self.ctr_cache.access_index(
            ctr_index, is_write, locality_flag, locality_score
        )
        if not hit:
            ctr_address = self.layout.ctr_block_address(ctr_index)
            latency += self.dram.request(ctr_address, now=now)
            self.traffic.ctr_reads += 1
            self._authenticate(ctr_index)
        if self.prefetcher is not None:
            self._prefetch_counters(ctr_index)
        return hit, latency

    def _authenticate(self, ctr_index: int) -> None:
        """MT walk for a counter line fetched from DRAM (traffic only)."""
        fetched, addresses = self.integrity.traverse(ctr_index)
        self.traffic.mt_reads += fetched
        now = self._now
        for node_address in addresses:
            self.dram.request(node_address, now=now)
        if self.on_authenticate is not None:
            self.on_authenticate(ctr_index, fetched)

    def _prefetch_counters(self, ctr_index: int) -> None:
        """Run the CTR-cache prefetcher (Figure 5's design space).

        Prefetched counter lines that miss are fetched from DRAM and must
        be authenticated like any other CTR fetch — the paper's point that
        "incorrect prefetches still trigger unnecessary integrity checks".
        """
        for candidate in self.prefetcher.observe(ctr_index):
            if not 0 <= candidate < self.layout.ctr_blocks:
                continue
            address = self.layout.ctr_block_address(candidate)
            if self.ctr_cache.cache.lookup(address):
                continue
            self.ctr_cache.cache.stats.prefetch_issued += 1
            self.ctr_cache.cache.fill(address, prefetched=True)
            self.dram.request(address, now=self._now)
            self.traffic.ctr_reads += 1
            self._authenticate(candidate)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def read_data(self, data_block: int, now: int = 0) -> int:
        """Fetch a 64B data block from DRAM at ``now``; returns its latency."""
        self._now = now
        self.events.reads_seen += 1
        latency = self.dram.request(data_block, now=now)
        self.traffic.data_reads += 1
        self._charge_mac(data_block)
        return latency

    def secure_write(self, data_block: int, now: int = 0) -> None:
        """Write a dirty block back to protected DRAM (background).

        Increments the block's counter (re-encrypting the covered page on
        minor overflow), touches the CTR cache, updates the MAC and issues
        the data write.  All of this happens off the critical path — the
        memory controller queues it — so no latency is returned, but every
        request is issued at ``now`` and occupies real bank/bus time that
        later demand reads queue behind.
        """
        self._now = now
        self.events.writes_seen += 1
        event = self.scheme.increment(data_block)
        if event is not None:
            self.events.ctr_overflows += 1
            self.traffic.reencryption_requests += event.dram_requests
            self.dram.add_background_occupancy(event.dram_requests)
            if self.obs_events is not None:
                self.obs_events.record(
                    "ctr_overflow",
                    ctr_index=self.scheme.ctr_index(data_block),
                    dram_requests=event.dram_requests,
                    writes_seen=self.events.writes_seen,
                )
        flag = score = None
        if self.ctr_classifier is not None:
            flag, score = self.ctr_classifier(self.scheme.ctr_index(data_block))
        self.ctr_access(
            data_block, is_write=True, locality_flag=flag, locality_score=score, now=now
        )
        self.traffic.data_writes += 1
        self.dram.request(data_block, is_write=True, now=now)
        self._charge_mac(data_block)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def ctr_miss_rate(self) -> float:
        """CTR-cache miss rate observed so far."""
        return self.ctr_cache.miss_rate

    def register_obs_metrics(self, registry, prefix: str) -> None:
        """Register live callback gauges under dotted ``prefix``.

        Callback gauges read the stats the engine maintains anyway, so the
        registration is the entire cost — nothing runs per access.
        """
        registry.gauge(f"{prefix}.ctr_hit_rate",
                       fn=lambda: self.ctr_cache.stats.hit_rate)
        registry.gauge(f"{prefix}.mt_avg_fetches",
                       fn=lambda: self.integrity.stats.average_fetches)
        registry.gauge(f"{prefix}.dram_row_hit_rate",
                       fn=lambda: self.dram.stats.row_hit_rate)
        registry.gauge(f"{prefix}.dram_avg_read_latency",
                       fn=lambda: self.dram.average_read_latency())
        registry.gauge(f"{prefix}.dram_avg_write_latency",
                       fn=lambda: self.dram.average_write_latency())
        registry.gauge(f"{prefix}.dram_activations",
                       fn=lambda: self.dram.stats.activations)
        registry.gauge(f"{prefix}.dram_max_row_activations",
                       fn=lambda: self.dram.stats.max_row_activations)
        registry.gauge(f"{prefix}.dram_act_window_resets",
                       fn=lambda: self.dram.stats.act_window_resets)
        registry.gauge(f"{prefix}.dram_queue_share",
                       fn=lambda: (
                           self.dram.stats.queue_cycles / self.dram.stats.busy_cycles
                           if self.dram.stats.busy_cycles else 0.0
                       ))
        registry.gauge(f"{prefix}.reencryption_rate",
                       fn=lambda: self.events.reencryption_rate)

    def decrypt_ready_latency(self, ctr_latency: int) -> int:
        """Cycles until the OTP is ready, given when the CTR arrived."""
        return ctr_latency + self.config.aes_latency
