"""Functional + timing model of AES-CTR one-time-pad encryption.

The paper's memory encryption engine computes ``OTP = AES_Enc(PA || CTR)``
and XORs it with the 64B line (Sec. 2.1).  We model this functionally with a
keyed SHA-256-based pseudorandom function — cryptographically different from
AES but behaviourally identical for the simulator's purposes: the pad is a
deterministic function of (key, physical address, counter), distinct
counters give distinct pads, and encrypt/decrypt round-trips.  The timing
side is a single constant: 40 cycles per AES operation (paper Table 3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: AES pipeline latency in cycles for one 128-bit block (paper Table 3).
AES_LATENCY_CYCLES = 40

#: MAC authentication latency in cycles (paper Table 3).
AUTH_LATENCY_CYCLES = 40

#: Bytes in one protected memory line.
LINE_BYTES = 64


@dataclass(frozen=True)
class AesCtrEngine:
    """Deterministic one-time-pad generator standing in for AES-CTR.

    Attributes:
        key: Secret key mixed into every pad. Two engines with different
            keys produce unrelated pads.
        latency_cycles: Cycles charged per OTP generation.
    """

    key: bytes = b"cosmos-repro-key"
    latency_cycles: int = AES_LATENCY_CYCLES

    def one_time_pad(self, physical_address: int, counter: int, length: int = LINE_BYTES) -> bytes:
        """Derive the OTP for (PA || CTR), ``length`` bytes long."""
        if length <= 0:
            raise ValueError("length must be positive")
        pad = b""
        block_index = 0
        seed = (
            self.key
            + physical_address.to_bytes(8, "little")
            + counter.to_bytes(16, "little", signed=False)
        )
        while len(pad) < length:
            pad += hashlib.sha256(seed + block_index.to_bytes(4, "little")).digest()
            block_index += 1
        return pad[:length]

    def encrypt(self, plaintext: bytes, physical_address: int, counter: int) -> bytes:
        """XOR ``plaintext`` with the OTP for (PA, CTR)."""
        pad = self.one_time_pad(physical_address, counter, len(plaintext))
        return bytes(p ^ k for p, k in zip(plaintext, pad))

    def decrypt(self, ciphertext: bytes, physical_address: int, counter: int) -> bytes:
        """Inverse of :meth:`encrypt` (XOR is an involution)."""
        return self.encrypt(ciphertext, physical_address, counter)
