"""Secure-memory substrate: AES-CTR, counters, MAC, Merkle tree, designs."""

from .aes import AES_LATENCY_CYCLES, AUTH_LATENCY_CYCLES, AesCtrEngine
from .counters import (
    CounterScheme,
    MonolithicCounters,
    MorphCtrCounters,
    ReencryptionEvent,
    SplitCounters,
    make_counter_scheme,
)
from .ctr_cache import CtrCache, CtrCacheStats
from .designs import (
    CosmosDesign,
    CosmosEarlyDesign,
    DesignStats,
    EarlyCtrDesign,
    EmccDesign,
    MorphCtrDesign,
    NonProtectedDesign,
    ProtectedDesign,
    RmccDesign,
    SecureDesign,
    make_design,
)
from .engine import EngineConfig, SecureMemoryEngine
from .functional import FunctionalSecureMemory, IntegrityViolation, SecureMemoryStats
from .layout import DEFAULT_MT_ARITY, SecureLayout
from .mac import MacStore, MacTrafficModel, compute_mac
from .merkle import IntegrityTreeModel, IntegrityTreeStats, MerkleTree

__all__ = [
    "AES_LATENCY_CYCLES",
    "AUTH_LATENCY_CYCLES",
    "AesCtrEngine",
    "CosmosDesign",
    "CosmosEarlyDesign",
    "CounterScheme",
    "CtrCache",
    "CtrCacheStats",
    "DEFAULT_MT_ARITY",
    "DesignStats",
    "EarlyCtrDesign",
    "EmccDesign",
    "EngineConfig",
    "FunctionalSecureMemory",
    "IntegrityTreeModel",
    "IntegrityViolation",
    "IntegrityTreeStats",
    "MacStore",
    "MacTrafficModel",
    "MerkleTree",
    "MonolithicCounters",
    "MorphCtrCounters",
    "MorphCtrDesign",
    "NonProtectedDesign",
    "ProtectedDesign",
    "ReencryptionEvent",
    "RmccDesign",
    "SecureDesign",
    "SecureMemoryStats",
    "SecureLayout",
    "SecureMemoryEngine",
    "SplitCounters",
    "compute_mac",
    "make_counter_scheme",
    "make_design",
]
