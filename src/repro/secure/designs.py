"""Secure-memory designs evaluated in the paper.

Each design owns a cache hierarchy plus (except for the non-protected
baseline) a :class:`~repro.secure.engine.SecureMemoryEngine`, and maps one
trace access to its end-to-end latency in cycles.  The designs differ in
*where* the counter is accessed and *how* the CTR cache is managed:

==================  ==========================  =======================
Design              CTR access point            CTR cache
==================  ==========================  =======================
``np``              none (no protection)        none
``morphctr``        after LLC miss              512KB LRU
``early``           after every L1 miss         512KB LRU (Fig. 4 ideal)
``emcc``            after every L1 miss         512KB LRU (at L2 level)
``rmcc``            after LLC miss              512KB LRU + hot-CTR memo
``cosmos-dp``       predicted-off L1 misses     512KB LRU
``cosmos-cp``       after LLC miss              LCR + RL tags
``cosmos``          predicted-off L1 misses     LCR + RL tags
``cosmos-early``    every L1 miss + bypass      LCR + RL tags (extension)
``synergy``         after LLC miss              512KB LRU, MAC-in-ECC
``cosmos-synergy``  predicted-off L1 misses     LCR, MAC-in-ECC
==================  ==========================  =======================

LCR-CTR capacity follows ``CosmosConfig.lcr_cache_bytes`` (512KB total
under the per-core reading of the paper's 128KB; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core.config import CosmosConfig
from ..core.cosmos import CosmosController, CosmosVariant
from ..core.hashing import hash_block_batch
from ..core.lcr_cache import FLAG_GOOD, LcrReplacementPolicy
from ..core.locality_predictor import GOOD_LOCALITY
from ..core.location_predictor import OFF_CHIP
from ..mem.access import MemoryAccess
from ..mem.cache import Cache
from ..mem.dram import DramModel
from ..mem.hierarchy import HierarchyConfig, MemoryHierarchy
from ..mem.stats import TrafficStats
from .counters import make_counter_scheme
from .engine import EngineConfig, SecureMemoryEngine
from .layout import SecureLayout

#: Sentinel tags for empty L1 ways in :meth:`SecureDesign.snapshot_tags`.
#: Real block addresses are non-negative, so the sentinels can never match
#: an access, and they are distinct so the (MRU, LRU) pair stays distinct.
BATCH_EMPTY_TOP = -1
BATCH_EMPTY_SECOND = -2

#: Hit runs at least this long go through the vectorised bulk application
#: in :meth:`SecureDesign.apply_hits_batch`; shorter runs use the scalar
#: loop (the numpy set-up cost dominates below this).
_BULK_HIT_RUN = 48


@dataclass(slots=True)
class DesignStats:
    """Per-design event counters beyond what substrates already track."""

    accesses: int = 0
    l1_misses: int = 0
    llc_misses: int = 0
    bypasses: int = 0
    killed_fetches: int = 0
    fallback_fetches: int = 0

    @property
    def bypass_fraction(self) -> float:
        """Fraction of L1 misses served by the L1->DRAM bypass (Sec. 6.1.3)."""
        if self.l1_misses == 0:
            return 0.0
        return self.bypasses / self.l1_misses


class SecureDesign:
    """Common scaffolding: hierarchy ownership and the access loop hook.

    Subclasses implement :meth:`process_fast`, the scalar hot path taking
    ``(block_address, is_write, core)`` directly; the object-based
    :meth:`process` API is a thin adapter kept for external callers and
    tests.  The simulator's array fast path calls ``process_fast`` with
    pre-shifted block addresses, so the dominant L1-hit case runs without
    any per-access heap allocation.
    """

    name = "base"
    is_protected = True

    def __init__(
        self,
        hierarchy_config: Optional[HierarchyConfig] = None,
        layout: Optional[SecureLayout] = None,
    ) -> None:
        self.hierarchy_config = (
            hierarchy_config if hierarchy_config is not None else HierarchyConfig()
        )
        self.layout = (
            layout if layout is not None else SecureLayout.for_memory_size(32 * 1024**3)
        )
        self.hierarchy = MemoryHierarchy(
            self.hierarchy_config,
            memory_write_sink=self._on_writeback,
            prefetch_fill_sink=self._on_prefetch_fill,
        )
        self.stats = DesignStats()
        self._l1_latency = self.hierarchy_config.l1.latency
        # Program-order issue clock: every access reads the cursor, issues
        # its DRAM requests at that cycle, and advances it by its own
        # latency.  Background requests (writebacks, MT walks, MAC lines)
        # issued mid-access therefore overlap across banks at the same
        # ``now`` and can keep banks/bus busy *past* it — the next access
        # queues behind them, which is the bank-level contention model.
        # Monotonic across reset_stats() (warmup keeps the clock running).
        self._now = 0

    def _on_writeback(self, block_address: int) -> None:
        raise NotImplementedError

    def _on_prefetch_fill(self, block_address: int) -> None:
        """Charge a hardware-prefetch fill from memory (traffic only)."""
        raise NotImplementedError

    def process(self, access: MemoryAccess) -> int:
        """Run one access through the design; returns latency in cycles."""
        return self.process_fast(access.block_address, access.is_write, access.core)

    def process_fast(self, block_address: int, is_write: bool, core: int) -> int:
        """Scalar hot path: one access as plain scalars; returns cycles."""
        raise NotImplementedError

    def traffic(self) -> TrafficStats:
        """DRAM traffic breakdown accumulated so far."""
        raise NotImplementedError

    def dram_model(self) -> Optional[DramModel]:
        """The DRAM channel this design drives (None when it has none).

        The simulator reads measured channel occupancy from here for the
        bandwidth-serialisation term of the IPC proxy.
        """
        return None

    def ctr_miss_rate(self) -> float:
        """CTR-cache miss rate (0.0 for unprotected designs)."""
        return 0.0

    def reset_stats(self) -> None:
        """Zero every statistic while keeping all learned/cached state.

        Used for warmup: caches stay populated, Q-tables stay trained, but
        the measurement window starts fresh.
        """
        self.stats = DesignStats()
        for cache in self.hierarchy.l1:
            cache.stats.reset()
        for cache in self.hierarchy.l2:
            cache.stats.reset()
        self.hierarchy.llc.stats.reset()

    # ------------------------------------------------------------------
    # Batched-kernel contract (repro.sim.batched)
    # ------------------------------------------------------------------
    def supports_batch_hits(self) -> bool:
        """True when the L1s satisfy the batched kernel's classifier model.

        The epoch classifier replays 2-way LRU with always-fill semantics,
        which is exactly what :class:`~repro.mem.cache.Cache` under the
        plain :class:`~repro.mem.replacement.LRUPolicy` does.  Any other
        associativity, a custom policy, or a cache subclass falls back to
        the scalar arrays path.
        """
        for cache in self.hierarchy.l1:
            if type(cache) is not Cache or cache.assoc != 2 or cache._lru is None:
                return False
        return True

    def snapshot_tags(self) -> Tuple[np.ndarray, np.ndarray]:
        """Snapshot per-set L1 state as (MRU tag, LRU tag) carry arrays.

        Indexed by ``core * num_sets + set_index``.  Empty ways hold the
        distinct negative sentinels so the classifier's two-way state is
        always a pair of unequal values that no real access can match.
        The batched kernel calls this to (re)seed its carry state — at the
        first epoch and after a split-on-first-invalidation fallback.
        """
        l1 = self.hierarchy.l1
        num_sets = l1[0].num_sets
        top = np.full(len(l1) * num_sets, BATCH_EMPTY_TOP, dtype=np.int64)
        second = np.full(len(l1) * num_sets, BATCH_EMPTY_SECOND, dtype=np.int64)
        for core, cache in enumerate(l1):
            base = core * num_sets
            for index, target_set in enumerate(cache._sets):
                if not target_set:
                    continue
                lines = list(target_set.values())
                if len(lines) == 1:
                    top[base + index] = lines[0].tag
                else:
                    first, other = lines
                    if first.lru_tick >= other.lru_tick:
                        top[base + index] = first.tag
                        second[base + index] = other.tag
                    else:
                        top[base + index] = other.tag
                        second[base + index] = first.tag
        return top, second

    def apply_hits_batch(
        self,
        blocks,
        writes,
        cores,
        start: int,
        stop: int,
        np_arrays=None,
    ) -> Tuple[int, int]:
        """Apply a run of pre-classified L1 hits ``[start, stop)`` in order.

        Replicates exactly what ``process_fast`` does for an L1 hit —
        ``stats.hits``/``referenced``/``dirty``/``lru_tick`` on the line,
        plus the design's access counter and program-order clock — without
        walking the hierarchy.  Long runs take a vectorised path that
        assigns the same final tick values (intermediate ticks on a line
        are unobservable: nothing reads L1 LRU state between two misses).

        Returns:
            ``(applied, latency_sum)``.  ``applied < stop - start`` means
            a classified hit was not resident (the defensive re-validation
            failed); the caller must fall back to scalar processing from
            ``start + applied`` and re-snapshot its carry state.
        """
        n = stop - start
        if n <= 0:
            return 0, 0
        l1 = self.hierarchy.l1
        l1_latency = self._l1_latency
        if (
            n >= _BULK_HIT_RUN
            and np_arrays is not None
            and self._apply_hits_bulk(np_arrays, start, stop)
        ):
            self.stats.accesses += n
            self._now += n * (1 + l1_latency)
            return n, n * l1_latency
        mask = l1[0]._set_mask
        applied = 0
        for i in range(start, stop):
            block = blocks[i]
            cache = l1[cores[i]]
            line = cache._sets[block & mask].get(block)
            if line is None:
                break
            cache.stats.hits += 1
            line.referenced = True
            if writes[i]:
                line.dirty = True
            lru = cache._lru
            lru._tick = tick = lru._tick + 1
            line.lru_tick = tick
            applied += 1
        if applied:
            self.stats.accesses += applied
            self._now += applied * (1 + l1_latency)
        return applied, applied * l1_latency

    def _apply_hits_bulk(self, np_arrays, start: int, stop: int) -> bool:
        """Vectorised hit application; all-or-nothing.

        Validates residency of every distinct line first and mutates
        nothing on failure, so the scalar loop can re-run the same span
        and stop at the exact first invalidation.
        """
        blocks_arr, writes_arr, cores_arr = np_arrays
        run_blocks = blocks_arr[start:stop]
        run_writes = writes_arr[start:stop]
        run_cores = cores_arr[start:stop]
        l1 = self.hierarchy.l1
        mask = l1[0]._set_mask
        staged = []
        for core in np.unique(run_cores).tolist():
            selector = run_cores == core
            core_blocks = run_blocks[selector]
            core_writes = run_writes[selector]
            cache = l1[core]
            sets = cache._sets
            reversed_blocks = core_blocks[::-1]
            uniq, first_rev, inverse = np.unique(
                reversed_blocks, return_index=True, return_inverse=True
            )
            lines = []
            for block in uniq.tolist():
                line = sets[block & mask].get(block)
                if line is None:
                    return False
                lines.append(line)
            k = len(core_blocks)
            # Last hit of each line in forward order gets the tick the
            # scalar loop would leave behind: base + position + 1.
            final_ticks = (k - first_rev).tolist()
            if core_writes.any():
                dirty = (
                    np.bincount(
                        inverse, weights=core_writes[::-1].astype(np.float64)
                    )
                    > 0
                ).tolist()
            else:
                dirty = None
            staged.append((cache, lines, final_ticks, dirty, k))
        for cache, lines, final_ticks, dirty, k in staged:
            lru = cache._lru
            base = lru._tick
            lru._tick = base + k
            cache.stats.hits += k
            if dirty is None:
                for line, tick in zip(lines, final_ticks):
                    line.referenced = True
                    line.lru_tick = base + tick
            else:
                for line, tick, is_dirty in zip(lines, final_ticks, dirty):
                    line.referenced = True
                    line.lru_tick = base + tick
                    if is_dirty:
                        line.dirty = True
        return True

    def stage_predictions(self, miss_blocks: np.ndarray) -> None:
        """Precompute per-miss RL state for an epoch's miss tail (no-op here).

        Designs with RL predictors override this to hash the whole miss
        tail vectorised; the scalar drain then consumes the staged values
        with a per-miss block-match check (the hash is a pure function of
        the address, so a match guarantees the same value).
        """

    def clear_staged(self) -> None:
        """Drop any staged predictions (end of epoch or fallback)."""

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def obs_counters(self) -> Dict[str, int]:
        """Cumulative counters snapshotted per observability window.

        Read by :class:`~repro.obs.timeseries.SimSampler` every N accesses
        — never from the per-access loop — so this can stay a plain dict
        build.  Subclasses extend with their substrate's counters.
        """
        stats = self.stats
        return {
            "accesses": stats.accesses,
            "l1_misses": stats.l1_misses,
            "llc_misses": stats.llc_misses,
            "bypasses": stats.bypasses,
        }

    def obs_probes(self) -> Dict[str, Callable[[], float]]:
        """Custom per-design gauges sampled once per observability window."""
        return {}


class NonProtectedDesign(SecureDesign):
    """Plain memory system: no encryption, no counters, no MT."""

    name = "np"
    is_protected = False

    def __init__(
        self,
        hierarchy_config: Optional[HierarchyConfig] = None,
        layout: Optional[SecureLayout] = None,
    ) -> None:
        super().__init__(hierarchy_config, layout)
        self.dram = DramModel()
        self._traffic = TrafficStats()

    def _on_writeback(self, block_address: int) -> None:
        self._traffic.data_writes += 1
        self.dram.request(block_address, is_write=True, now=self._now)

    def _on_prefetch_fill(self, block_address: int) -> None:
        self._traffic.data_reads += 1
        self.dram.request(block_address, now=self._now)

    def reset_stats(self) -> None:
        super().reset_stats()
        self._traffic.reset()
        self.dram.reset_stats()

    def obs_counters(self) -> Dict[str, int]:
        counters = super().obs_counters()
        dram = self.dram.stats
        counters["dram_requests"] = dram.requests
        counters["dram_row_hits"] = dram.row_hits
        counters["dram_writes"] = dram.writes
        counters["dram_queue_cycles"] = dram.queue_cycles
        return counters

    def process_fast(self, block_address: int, is_write: bool, core: int) -> int:
        stats = self.stats
        stats.accesses += 1
        now = self._now
        result = self.hierarchy.access_block(block_address, is_write, core)
        if result.l1_miss:
            stats.l1_misses += 1
        if not result.needs_memory:
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.llc_misses += 1
        self._traffic.data_reads += 1
        latency = result.lookup_latency + self.dram.request(block_address, now=now)
        self._now = now + 1 + latency
        return latency

    def traffic(self) -> TrafficStats:
        return self._traffic

    def dram_model(self) -> Optional[DramModel]:
        return self.dram


class ProtectedDesign(SecureDesign):
    """Base for every AES-CTR protected design; owns the engine."""

    name = "protected"

    def __init__(
        self,
        hierarchy_config: Optional[HierarchyConfig] = None,
        layout: Optional[SecureLayout] = None,
        engine_config: Optional[EngineConfig] = None,
        counter_scheme: str = "morphctr",
    ) -> None:
        super().__init__(hierarchy_config, layout)
        self.engine = SecureMemoryEngine(
            self.layout,
            scheme=make_counter_scheme(counter_scheme),
            config=engine_config,
            ctr_policy=self._make_ctr_policy(),
        )

    def _make_ctr_policy(self):
        """Policy for the CTR cache; None selects the default LRU."""
        return None

    def _on_writeback(self, block_address: int) -> None:
        self.engine.secure_write(block_address, now=self._now)

    def _on_prefetch_fill(self, block_address: int) -> None:
        # A prefetched line still needs its counter for decryption: the
        # fetch and the CTR path are charged as background traffic.
        self.engine.read_data(block_address, now=self._now)
        self._ctr_access(block_address, self._now)

    def reset_stats(self) -> None:
        super().reset_stats()
        engine = self.engine
        engine.traffic.reset()
        engine.events = type(engine.events)()
        engine.ctr_cache.stats = type(engine.ctr_cache.stats)()
        engine.ctr_cache.cache.stats.reset()
        engine.integrity.stats = type(engine.integrity.stats)()
        if engine.integrity.node_cache is not None:
            engine.integrity.node_cache.stats.reset()
        engine.dram.reset_stats()

    def traffic(self) -> TrafficStats:
        return self.engine.traffic

    def dram_model(self) -> Optional[DramModel]:
        return self.engine.dram

    def ctr_miss_rate(self) -> float:
        return self.engine.ctr_miss_rate

    def obs_counters(self) -> Dict[str, int]:
        counters = super().obs_counters()
        engine = self.engine
        ctr = engine.ctr_cache.stats
        mt = engine.integrity.stats
        dram = engine.dram.stats
        counters.update(
            ctr_hits=ctr.hits,
            ctr_misses=ctr.misses,
            mt_traversals=mt.traversals,
            mt_nodes_fetched=mt.nodes_fetched,
            dram_requests=dram.requests,
            dram_row_hits=dram.row_hits,
            dram_writes=dram.writes,
            dram_queue_cycles=dram.queue_cycles,
            ctr_overflows=engine.events.ctr_overflows,
            writes_seen=engine.events.writes_seen,
            reencryption_requests=engine.traffic.reencryption_requests,
        )
        return counters

    # ------------------------------------------------------------------
    # Shared latency formulas
    # ------------------------------------------------------------------
    def _memory_latency_sequential(self, block: int, lookup_latency: int, now: int) -> int:
        """Baseline path: CTR access starts only after the LLC miss."""
        _, ctr_latency = self._ctr_access(block, now)
        data_latency = self.engine.read_data(block, now=now)
        otp_ready = self.engine.decrypt_ready_latency(ctr_latency)
        return lookup_latency + max(data_latency, otp_ready) + self.engine.config.auth_latency

    def _ctr_access(self, block: int, now: int = 0):
        """CTR-cache access; subclasses add RL locality tags."""
        return self.engine.ctr_access(block, now=now)


class MorphCtrDesign(ProtectedDesign):
    """The paper's baseline: MorphCtr counters, CTR access after LLC miss."""

    name = "morphctr"

    def process_fast(self, block_address: int, is_write: bool, core: int) -> int:
        stats = self.stats
        stats.accesses += 1
        now = self._now
        result = self.hierarchy.access_block(block_address, is_write, core)
        if result.l1_miss:
            stats.l1_misses += 1
        if not result.needs_memory:
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.llc_misses += 1
        latency = self._memory_latency_sequential(
            block_address, result.lookup_latency, now
        )
        self._now = now + 1 + latency
        return latency


class EarlyCtrDesign(ProtectedDesign):
    """Ideal early access: CTR cache probed on *every* L1 miss (Fig. 4).

    The CTR access overlaps the L2/LLC walk, and the CTR cache fills with
    the locality-rich post-L1 stream.  CTR misses for data that turns out
    on-chip still fetch the counter (the paper's +5% read/write traffic).
    """

    name = "early"

    def process_fast(self, block_address: int, is_write: bool, core: int) -> int:
        stats = self.stats
        stats.accesses += 1
        now = self._now
        result = self.hierarchy.access_block(block_address, is_write, core)
        if not result.l1_miss:
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.l1_misses += 1
        _, ctr_latency = self._ctr_access(block_address, now)
        if not result.needs_memory:
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.llc_misses += 1
        engine = self.engine
        data_latency = engine.read_data(block_address, now=now)
        data_ready = result.lookup_latency + data_latency
        otp_ready = self._l1_latency + engine.decrypt_ready_latency(ctr_latency)
        latency = max(data_ready, otp_ready) + engine.config.auth_latency
        self._now = now + 1 + latency
        return latency


class EmccDesign(EarlyCtrDesign):
    """EMCC-like comparator: CTR caching embedded at the L2 level.

    Modelled at the same idealisation level as the paper's own EMCC
    implementation (Sec. 6.2): CTR access runs in parallel with L2/LLC/DRAM
    data access, with no extra AES-in-L2 or NoC latencies.
    """

    name = "emcc"


class RmccDesign(ProtectedDesign):
    """RMCC-like comparator: hot counters memoised near the MC.

    Keeps a small frequency-managed memo of the hottest counter lines that
    is probed before the CTR cache; remapping/retention happens only after
    LLC misses, as in RMCC (Sec. 6.2).
    """

    name = "rmcc"

    def __init__(
        self,
        hierarchy_config: Optional[HierarchyConfig] = None,
        layout: Optional[SecureLayout] = None,
        engine_config: Optional[EngineConfig] = None,
        counter_scheme: str = "morphctr",
        memo_entries: int = 1024,
    ) -> None:
        super().__init__(hierarchy_config, layout, engine_config, counter_scheme)
        self.memo_entries = memo_entries
        self._memo_counts: Dict[int, int] = {}
        self._memo: Dict[int, int] = {}
        self.memo_hits = 0

    def _memo_probe(self, block: int) -> bool:
        ctr_index = self.engine.scheme.ctr_index(block)
        count = self._memo_counts.get(ctr_index, 0) + 1
        self._memo_counts[ctr_index] = count
        if ctr_index in self._memo:
            self._memo[ctr_index] = count
            self.memo_hits += 1
            return True
        if len(self._memo) < self.memo_entries:
            self._memo[ctr_index] = count
        else:
            coldest = min(self._memo, key=self._memo.get)
            if count > self._memo[coldest]:
                del self._memo[coldest]
                self._memo[ctr_index] = count
        return False

    def process_fast(self, block_address: int, is_write: bool, core: int) -> int:
        stats = self.stats
        stats.accesses += 1
        now = self._now
        result = self.hierarchy.access_block(block_address, is_write, core)
        if result.l1_miss:
            stats.l1_misses += 1
        if not result.needs_memory:
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.llc_misses += 1
        block = block_address
        if self._memo_probe(block):
            # Memoised counter: the OTP can be produced immediately.
            data_latency = self.engine.read_data(block, now=now)
            otp_ready = self.engine.decrypt_ready_latency(self.engine.config.ctr_lookup_latency)
            latency = (
                result.lookup_latency
                + max(data_latency, otp_ready)
                + self.engine.config.auth_latency
            )
        else:
            latency = self._memory_latency_sequential(block, result.lookup_latency, now)
        self._now = now + 1 + latency
        return latency


class CosmosDesign(ProtectedDesign):
    """COSMOS and its ablations (Table 4), selected by ``variant``.

    With the data predictor active, off-chip-predicted L1 misses launch the
    DRAM fetch and the CTR access straight from L1 (bypassing L2/LLC on the
    data path); mispredictions either kill the speculative fetch (data was
    on-chip) or fall back to the sequential baseline path (data was
    off-chip).  With the CTR predictor active, every CTR access is tagged
    good/bad locality and the CTR cache uses the LCR replacement policy.
    """

    name = "cosmos"

    def __init__(
        self,
        hierarchy_config: Optional[HierarchyConfig] = None,
        layout: Optional[SecureLayout] = None,
        engine_config: Optional[EngineConfig] = None,
        counter_scheme: str = "morphctr",
        cosmos_config: Optional[CosmosConfig] = None,
        variant: Optional[CosmosVariant] = None,
    ) -> None:
        self.cosmos_config = cosmos_config if cosmos_config is not None else CosmosConfig()
        self.variant = variant if variant is not None else CosmosVariant.full()
        self.name = self.variant.name
        if engine_config is None:
            engine_config = EngineConfig()
        if self.variant.ctr_predictor:
            # The CTR cache becomes the LCR-CTR cache (sized per the
            # CosmosConfig; see EXPERIMENTS.md interpretation #1).
            engine_config = replace(
                engine_config,
                ctr_cache_bytes=self.cosmos_config.lcr_cache_bytes,
                ctr_cache_assoc=self.cosmos_config.lcr_cache_assoc,
            )
        super().__init__(hierarchy_config, layout, engine_config, counter_scheme)
        self.controller = CosmosController(self.cosmos_config, self.variant)
        # Predictor references hoisted for the hot path (None when the
        # variant disables them); reset_stats() swaps their stats objects,
        # never the predictors themselves, so these stay valid.
        self._location = self.controller.location
        self._locality = self.controller.locality
        if self.variant.ctr_predictor:
            self.engine.ctr_classifier = self._classify_ctr_index
        # Staged RL state for the batched kernel's miss tail: parallel
        # lists of (miss block, location-hash, ctr-hash) consumed in miss
        # order by process_fast with a block-match check per pop.  The
        # hint pair carries the current miss's CTR hash to _ctr_access,
        # which prefetch fills may also enter with unrelated blocks.
        self._staged_blocks = None
        self._staged_loc = None
        self._staged_ctr = None
        self._staged_pos = 0
        self._ctr_hint_block = -1
        self._ctr_hint_state = 0

    def _make_ctr_policy(self):
        if self.variant.ctr_predictor:
            return LcrReplacementPolicy()
        return None

    def _classify_ctr_index(self, ctr_index: int):
        return self.controller.classify_ctr(ctr_index)

    def reset_stats(self) -> None:
        super().reset_stats()
        controller = self.controller
        if controller.location is not None:
            controller.location.stats = type(controller.location.stats)()
        if controller.locality is not None:
            controller.locality.stats = type(controller.locality.stats)()

    def obs_counters(self) -> Dict[str, int]:
        counters = super().obs_counters()
        counters.update(self.controller.obs_counters())
        return counters

    def obs_probes(self) -> Dict[str, Callable[[], float]]:
        probes = super().obs_probes()
        probes.update(self.controller.obs_probes())
        return probes

    def stage_predictions(self, miss_blocks: np.ndarray) -> None:
        location = self._location
        if location is None or len(miss_blocks) == 0:
            return
        self._staged_blocks = miss_blocks.tolist()
        self._staged_loc = hash_block_batch(
            miss_blocks, location._num_states
        ).tolist()
        locality = self._locality
        if locality is not None:
            ctr_indices = miss_blocks // self.engine.scheme.blocks_per_ctr
            self._staged_ctr = hash_block_batch(
                ctr_indices, locality._num_states
            ).tolist()
        else:
            self._staged_ctr = None
        self._staged_pos = 0

    def clear_staged(self) -> None:
        self._staged_blocks = None
        self._staged_loc = None
        self._staged_ctr = None
        self._staged_pos = 0
        self._ctr_hint_block = -1

    def _ctr_access(self, block: int, now: int = 0):
        flag = score = None
        locality = self._locality
        if locality is not None:
            if block == self._ctr_hint_block:
                action, score = locality.predict(
                    self.engine.scheme.ctr_index(block), self._ctr_hint_state
                )
            else:
                action, score = locality.predict(self.engine.scheme.ctr_index(block))
            flag = FLAG_GOOD if action == GOOD_LOCALITY else 0
        return self.engine.ctr_access(
            block, locality_flag=flag, locality_score=score, now=now
        )

    def process_fast(self, block_address: int, is_write: bool, core: int) -> int:
        stats = self.stats
        stats.accesses += 1
        now = self._now
        result = self.hierarchy.access_block(block_address, is_write, core)
        if not result.l1_miss:
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.l1_misses += 1
        block = block_address
        location = self._location
        if location is not None:
            state = None
            staged = self._staged_blocks
            if staged is not None:
                pos = self._staged_pos
                if pos < len(staged) and staged[pos] == block:
                    state = self._staged_loc[pos]
                    staged_ctr = self._staged_ctr
                    if staged_ctr is not None:
                        self._ctr_hint_block = block
                        self._ctr_hint_state = staged_ctr[pos]
                    self._staged_pos = pos + 1
                else:
                    # Desynchronised (scalar fallback mid-epoch): the
                    # staged stream no longer lines up — recompute.
                    self.clear_staged()
            # Fused predict+train: the concurrent walk already revealed
            # the truth, so the prediction is graded in the same call.
            action = location.predict_and_train(block, not result.needs_memory, state)
            predicted_off = action == OFF_CHIP
        else:
            predicted_off = False
        engine = self.engine
        if predicted_off:
            _, ctr_latency = self._ctr_access(block, now)
            if result.needs_memory:
                # Correct off-chip prediction: bypass L2/LLC on the data path.
                stats.llc_misses += 1
                stats.bypasses += 1
                l1_latency = self._l1_latency
                data_latency = engine.read_data(block, now=now)
                data_ready = l1_latency + data_latency
                otp_ready = l1_latency + engine.decrypt_ready_latency(ctr_latency)
                latency = max(data_ready, otp_ready) + engine.config.auth_latency
                self._now = now + 1 + latency
                return latency
            # Wrong off-chip prediction: kill the speculative DRAM fetch;
            # the CTR access already happened (and usefully warms the
            # cache, Sec. 6.1.2).
            stats.killed_fetches += 1
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        if result.needs_memory:
            # Wrong (or absent) on-chip prediction: sequential fallback.
            stats.llc_misses += 1
            stats.fallback_fetches += 1
            _, ctr_latency = self._ctr_access(block, now)
            data_latency = engine.read_data(block, now=now)
            otp_ready = engine.decrypt_ready_latency(ctr_latency)
            latency = (
                result.lookup_latency
                + max(data_latency, otp_ready)
                + engine.config.auth_latency
            )
            self._now = now + 1 + latency
            return latency
        self._now = now + 1 + result.lookup_latency
        return result.lookup_latency


class CosmosEarlyDesign(CosmosDesign):
    """Extension beyond the paper: COSMOS + EMCC-style universal probing.

    The paper's COSMOS only touches the CTR cache for L1 misses the data
    predictor classifies off-chip, so on-chip-predicted hot data never
    warms the counter cache.  This hybrid (a natural future-work point:
    the paper notes COSMOS "can work with various designs") additionally
    probes the CTR cache on *every* L1 miss, as EMCC does, while keeping
    the bypass and the LCR-CTR cache.  Costs more CTR/MT traffic; wins
    when the warmed counters pay for it.
    """

    name = "cosmos-early"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("variant", CosmosVariant.full())
        super().__init__(**kwargs)
        self.name = "cosmos-early"

    def process_fast(self, block_address: int, is_write: bool, core: int) -> int:
        stats = self.stats
        stats.accesses += 1
        now = self._now
        result = self.hierarchy.access_block(block_address, is_write, core)
        if not result.l1_miss:
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.l1_misses += 1
        block = block_address
        location = self._location
        if location is not None:
            state = None
            staged = self._staged_blocks
            if staged is not None:
                pos = self._staged_pos
                if pos < len(staged) and staged[pos] == block:
                    state = self._staged_loc[pos]
                    staged_ctr = self._staged_ctr
                    if staged_ctr is not None:
                        self._ctr_hint_block = block
                        self._ctr_hint_state = staged_ctr[pos]
                    self._staged_pos = pos + 1
                else:
                    self.clear_staged()
            action = location.predict_and_train(block, not result.needs_memory, state)
            predicted_off = action == OFF_CHIP
        else:
            predicted_off = False
        l1_latency = self._l1_latency
        # Universal early probe: every L1 miss touches the CTR cache.
        _, ctr_latency = self._ctr_access(block, now)
        if not result.needs_memory:
            if predicted_off:
                stats.killed_fetches += 1
            self._now = now + 1 + result.lookup_latency
            return result.lookup_latency
        stats.llc_misses += 1
        engine = self.engine
        data_latency = engine.read_data(block, now=now)
        otp_ready = l1_latency + engine.decrypt_ready_latency(ctr_latency)
        if predicted_off:
            stats.bypasses += 1
            data_ready = l1_latency + data_latency
        else:
            stats.fallback_fetches += 1
            data_ready = result.lookup_latency + data_latency
        latency = max(data_ready, otp_ready) + engine.config.auth_latency
        self._now = now + 1 + latency
        return latency


_DESIGN_FACTORIES = {
    "np": NonProtectedDesign,
    "morphctr": MorphCtrDesign,
    "early": EarlyCtrDesign,
    "emcc": EmccDesign,
    "rmcc": RmccDesign,
}


def make_design(name: str, **kwargs) -> SecureDesign:
    """Instantiate a design by name.

    ``cosmos``, ``cosmos-dp`` and ``cosmos-cp`` map to :class:`CosmosDesign`
    with the corresponding variant; other names use the factory table.
    """
    if name == "cosmos":
        return CosmosDesign(variant=CosmosVariant.full(), **kwargs)
    if name == "cosmos-dp":
        return CosmosDesign(variant=CosmosVariant.dp_only(), **kwargs)
    if name == "cosmos-cp":
        return CosmosDesign(variant=CosmosVariant.cp_only(), **kwargs)
    if name == "cosmos-early":
        return CosmosEarlyDesign(**kwargs)
    if name in ("synergy", "cosmos-synergy"):
        engine_config = kwargs.pop("engine_config", None) or EngineConfig()
        kwargs["engine_config"] = replace(engine_config, mac_in_ecc=True)
        if name == "synergy":
            design = MorphCtrDesign(**kwargs)
            design.name = "synergy"
            return design
        design = CosmosDesign(variant=CosmosVariant.full(), **kwargs)
        design.name = "cosmos-synergy"
        return design
    try:
        factory = _DESIGN_FACTORIES[name]
    except KeyError:
        known = ", ".join(
            sorted(list(_DESIGN_FACTORIES) + ["cosmos", "cosmos-dp", "cosmos-cp", "cosmos-early"])
        )
        raise ValueError(f"unknown design {name!r}; expected one of: {known}")
    return factory(**kwargs)
