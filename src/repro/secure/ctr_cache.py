"""Counter (CTR) cache in the memory controller.

Maps a data block to its counter line (via the counter scheme + layout) and
caches counter lines on-chip.  The replacement policy is pluggable: LRU for
the MorphCtr baseline (paper Table 3) and COSMOS's locality-centric LCR
policy for the LCR-CTR cache (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mem.cache import Cache
from ..mem.replacement import ReplacementPolicy
from .counters import CounterScheme
from .layout import SecureLayout


@dataclass(slots=True)
class CtrCacheStats:
    """CTR-cache accounting, including locality tagging for COSMOS."""

    hits: int = 0
    misses: int = 0
    good_locality_tags: int = 0
    bad_locality_tags: int = 0

    @property
    def accesses(self) -> int:
        """Total CTR-cache lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """CTR-cache miss rate in [0, 1]."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """CTR-cache hit rate in [0, 1] — the obs layer's headline signal."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def as_dict(self) -> dict:
        """JSON-safe snapshot for obs artifacts and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "good_locality_tags": self.good_locality_tags,
            "bad_locality_tags": self.bad_locality_tags,
        }

    @property
    def good_locality_fraction(self) -> float:
        """Fraction of accesses tagged good-locality (paper Fig. 13)."""
        tagged = self.good_locality_tags + self.bad_locality_tags
        if tagged == 0:
            return 0.0
        return self.good_locality_tags / tagged


class CtrCache:
    """On-chip cache of counter lines.

    Args:
        layout: Address-space map (counter line -> DRAM block address).
        scheme: Counter organisation (data block -> counter line).
        size_bytes: Capacity (baseline 512KB, LCR-CTR 128KB; Table 3).
        assoc: Ways per set.
        policy: Replacement policy; None selects the cache's default LRU.
    """

    def __init__(
        self,
        layout: SecureLayout,
        scheme: CounterScheme,
        size_bytes: int = 512 * 1024,
        assoc: int = 16,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "ctr_cache",
    ) -> None:
        self.layout = layout
        self.scheme = scheme
        self.cache = Cache(size_bytes, assoc, policy=policy, name=name)
        self.stats = CtrCacheStats()

    def ctr_block_address(self, data_block: int) -> int:
        """DRAM block address of the counter line covering ``data_block``."""
        return self.layout.ctr_block_address(self.scheme.ctr_index(data_block))

    def access(
        self,
        data_block: int,
        is_write: bool = False,
        locality_flag: Optional[int] = None,
        locality_score: Optional[int] = None,
    ) -> bool:
        """Look up the counter line for ``data_block``; True on hit.

        On a miss the line is filled (the caller charges the DRAM fetch and
        MT traversal).  When COSMOS supplies a locality prediction, the
        resident line is tagged with the 1-bit flag and 8-bit score that the
        LCR replacement policy consumes (paper Sec. 4.3).
        """
        return self.access_index(
            self.scheme.ctr_index(data_block), is_write, locality_flag, locality_score
        )

    def access_index(
        self,
        ctr_index: int,
        is_write: bool = False,
        locality_flag: Optional[int] = None,
        locality_score: Optional[int] = None,
    ) -> bool:
        """Like :meth:`access` but keyed by an already-computed counter-line
        index — the engine's hot path resolves the index once and shares it
        between the cache lookup and the integrity walk."""
        ctr_address = self.layout.ctr_block_address(ctr_index)
        cache = self.cache
        stats = self.stats
        hit = cache.access(ctr_address, is_write)
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
            cache.fill(ctr_address, dirty=is_write)
        if locality_flag is not None:
            line = cache.get_line(ctr_address)
            if line is not None:
                line.locality_flag = locality_flag
                if locality_score is not None:
                    line.locality_score = locality_score
            if locality_flag:
                stats.good_locality_tags += 1
            else:
                stats.bad_locality_tags += 1
        return hit

    def contains(self, data_block: int) -> bool:
        """Non-destructive residency probe for the covering counter line."""
        return self.cache.lookup(self.ctr_block_address(data_block))

    @property
    def miss_rate(self) -> float:
        """Shortcut for ``stats.miss_rate``."""
        return self.stats.miss_rate
