"""Counter organisations for AES-CTR secure memory.

Three schemes from the paper's lineage are implemented from scratch:

* :class:`MonolithicCounters` — one 64-bit counter per 64B data block
  (8 counters per 64B counter line, so a 1:8 line-coverage ratio).
* :class:`SplitCounters` — Yan et al.'s split scheme: a shared 64-bit major
  counter plus 64 per-block 7-bit minor counters in one 64B line (1:64).
* :class:`MorphCtrCounters` — MorphCtr (Saileshwar et al.): a 57-bit major,
  7-bit format field and 128 minor counters per 64B line (1:128), morphing
  between a uniform 3-bit format and Zero-Counter-Compression (ZCC) for
  sparse usage.  Minor-counter overflow forces a page re-encryption that
  resets minors and bumps the major counter.

Every scheme exposes the same interface: map a data block to its counter
line, read the effective counter value (``major || minor``) and increment on
writes, reporting re-encryption events so the memory controller can charge
the background traffic (paper Sec. 5: overflows generate 64B requests
processed in the background).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class ReencryptionEvent:
    """A page re-encryption caused by minor-counter overflow.

    Attributes:
        ctr_index: Index of the counter line that overflowed.
        first_data_block: First data block covered by that line.
        num_blocks: Number of 64B data blocks that must be re-encrypted
            (each one costs a DRAM read + write in the background).
    """

    ctr_index: int
    first_data_block: int
    num_blocks: int

    @property
    def dram_requests(self) -> int:
        """Background 64B DRAM requests generated (read + write per block)."""
        return 2 * self.num_blocks


class CounterScheme:
    """Interface shared by every counter organisation."""

    #: Number of data blocks covered by one 64B counter line.
    blocks_per_ctr: int = 1
    name: str = "base"

    def ctr_index(self, data_block: int) -> int:
        """Index of the counter line covering ``data_block``."""
        return data_block // self.blocks_per_ctr

    def counter_value(self, data_block: int) -> int:
        """Effective counter (major concatenated with minor) for a block."""
        raise NotImplementedError

    def increment(self, data_block: int) -> Optional[ReencryptionEvent]:
        """Bump the block's counter for a write; report overflow if any."""
        raise NotImplementedError

    def updates_to(self, ctr_index: int) -> int:
        """Total increments that have landed on counter line ``ctr_index``."""
        raise NotImplementedError

    def storage_bits_per_data_block(self) -> float:
        """Counter storage cost in bits per protected data block."""
        return 512.0 / self.blocks_per_ctr

    # ------------------------------------------------------------------
    # Attack surface (for security testing)
    # ------------------------------------------------------------------
    def snapshot_line(self, ctr_index: int) -> object:
        """Copy one counter line's security state (for rollback attacks).

        The snapshot captures exactly the state that determines
        ``counter_value`` for the covered blocks — what an attacker with
        access to counter DRAM could record and later replay.
        """
        raise NotImplementedError

    def restore_line(self, ctr_index: int, snapshot: object) -> None:
        """Overwrite a counter line with an earlier :meth:`snapshot_line`."""
        raise NotImplementedError


class MonolithicCounters(CounterScheme):
    """One 64-bit counter per data block; eight counters per 64B line."""

    blocks_per_ctr = 8
    name = "monolithic"

    def __init__(self) -> None:
        self._counters: Dict[int, int] = {}
        self._line_updates: Dict[int, int] = {}

    def counter_value(self, data_block: int) -> int:
        return self._counters.get(data_block, 0)

    def increment(self, data_block: int) -> Optional[ReencryptionEvent]:
        self._counters[data_block] = self._counters.get(data_block, 0) + 1
        index = self.ctr_index(data_block)
        self._line_updates[index] = self._line_updates.get(index, 0) + 1
        return None  # a 64-bit counter never overflows in practice

    def updates_to(self, ctr_index: int) -> int:
        return self._line_updates.get(ctr_index, 0)

    def snapshot_line(self, ctr_index: int) -> object:
        base = ctr_index * self.blocks_per_ctr
        return tuple(
            self._counters.get(base + offset, 0)
            for offset in range(self.blocks_per_ctr)
        )

    def restore_line(self, ctr_index: int, snapshot: object) -> None:
        base = ctr_index * self.blocks_per_ctr
        for offset, value in enumerate(snapshot):
            if value:
                self._counters[base + offset] = value
            else:
                self._counters.pop(base + offset, None)


@dataclass
class _SplitLine:
    """State of one split/morphable counter line."""

    major: int = 0
    minors: Dict[int, int] = field(default_factory=dict)
    updates: int = 0
    max_minor: int = 0


class _SplitLineSnapshots:
    """Snapshot/restore over a ``_lines`` dict of :class:`_SplitLine`.

    Shared by the split and MorphCtr schemes; captures only the
    security-relevant state (major + minors), not the ``updates``
    bookkeeping, mirroring what lives in counter DRAM.
    """

    _lines: Dict[int, _SplitLine]

    def snapshot_line(self, ctr_index: int) -> object:
        line = self._lines.get(ctr_index)
        if line is None:
            return (0, {})
        return (line.major, dict(line.minors))

    def restore_line(self, ctr_index: int, snapshot: object) -> None:
        major, minors = snapshot
        line = self._line(ctr_index)  # type: ignore[attr-defined]
        line.major = major
        line.minors = dict(minors)
        line.max_minor = max(minors.values(), default=0)


class SplitCounters(_SplitLineSnapshots, CounterScheme):
    """Split counters: 64-bit major + 64 seven-bit minors per line (1:64)."""

    blocks_per_ctr = 64
    name = "split"
    minor_bits = 7

    def __init__(self) -> None:
        self._lines: Dict[int, _SplitLine] = {}

    def _line(self, ctr_index: int) -> _SplitLine:
        line = self._lines.get(ctr_index)
        if line is None:
            line = _SplitLine()
            self._lines[ctr_index] = line
        return line

    def counter_value(self, data_block: int) -> int:
        line = self._lines.get(self.ctr_index(data_block))
        if line is None:
            return 0
        offset = data_block % self.blocks_per_ctr
        return (line.major << self.minor_bits) | line.minors.get(offset, 0)

    def increment(self, data_block: int) -> Optional[ReencryptionEvent]:
        index = self.ctr_index(data_block)
        line = self._line(index)
        line.updates += 1
        offset = data_block % self.blocks_per_ctr
        new_minor = line.minors.get(offset, 0) + 1
        if new_minor >= (1 << self.minor_bits):
            line.major += 1
            line.minors = {}
            return ReencryptionEvent(
                ctr_index=index,
                first_data_block=index * self.blocks_per_ctr,
                num_blocks=self.blocks_per_ctr,
            )
        line.minors[offset] = new_minor
        return None

    def updates_to(self, ctr_index: int) -> int:
        line = self._lines.get(ctr_index)
        return line.updates if line is not None else 0


class MorphCtrCounters(_SplitLineSnapshots, CounterScheme):
    """MorphCtr: morphable 1:128 counter lines with ZCC.

    Line layout (512 bits): 57-bit major, 7-bit format field, 448 bits of
    minor storage.  Two format families are modelled:

    * **uniform**: 128 minors at a uniform width ``w`` with ``128*w <= 448``
      (so at most 3 bits, max minor value 7);
    * **ZCC** (zero counter compression): a 128-bit zero bitmap plus the
      non-zero minors at width ``w``, feasible while
      ``128 + nnz*w <= 448``.  Sparse lines can therefore hold much larger
      minors for their few written blocks.

    When neither format can represent the minors after an increment, the
    line overflows: the major advances, minors reset, and the covered page
    must be re-encrypted.  The paper's evaluation approximates this as "one
    re-encryption per 67 updates to the same counter" for its graph
    workloads; our functional model reproduces that regime for spread-out
    writes while also capturing the dense-write regime of Figure 17.
    """

    blocks_per_ctr = 128
    name = "morphctr"
    major_bits = 57
    format_bits = 7
    minor_storage_bits = 448
    uniform_minor_bits = 3

    def __init__(self) -> None:
        self._lines: Dict[int, _SplitLine] = {}

    def _line(self, ctr_index: int) -> _SplitLine:
        line = self._lines.get(ctr_index)
        if line is None:
            line = _SplitLine()
            self._lines[ctr_index] = line
        return line

    # ------------------------------------------------------------------
    # Format feasibility
    # ------------------------------------------------------------------
    @classmethod
    def _fits_uniform(cls, minors: Dict[int, int]) -> bool:
        if not minors:
            return True
        max_minor = max(minors.values())
        return max_minor < (1 << cls.uniform_minor_bits)

    @classmethod
    def _fits_zcc(cls, minors: Dict[int, int]) -> bool:
        nonzero = {k: v for k, v in minors.items() if v > 0}
        if not nonzero:
            return True
        width = max(v.bit_length() for v in nonzero.values())
        return cls.blocks_per_ctr + len(nonzero) * width <= cls.minor_storage_bits

    @classmethod
    def representable(cls, minors: Dict[int, int]) -> bool:
        """True when some MorphCtr format can encode ``minors``."""
        return cls._fits_uniform(minors) or cls._fits_zcc(minors)

    @classmethod
    def format_of(cls, minors: Dict[int, int]) -> str:
        """Name of the cheapest format encoding ``minors`` (for inspection)."""
        if cls._fits_uniform(minors):
            return "uniform"
        if cls._fits_zcc(minors):
            return "zcc"
        return "overflow"

    # ------------------------------------------------------------------
    # Bit-level line encoding (pack / unpack)
    # ------------------------------------------------------------------
    #: Format-field flag selecting the ZCC family; the low 6 bits carry the
    #: per-minor width.  A clear flag selects the uniform family.
    ZCC_FORMAT_FLAG = 0x40
    #: Widest per-minor field the 7-bit format field can describe.  The
    #: in-memory feasibility check (:meth:`representable`) is deliberately
    #: width-agnostic — reaching a 64-bit minor would take 2^63 writes to
    #: one block — but the bit-level image must fit the field.
    MAX_PACKED_MINOR_BITS = 0x3F
    #: Bytes in one packed counter line.
    LINE_BYTES = 64

    @classmethod
    def pack_line(cls, major: int, minors: Dict[int, int]) -> bytes:
        """Serialise one counter line into its 512-bit DRAM image.

        Layout (little-endian bit order): bits ``[0, 57)`` hold the major,
        bits ``[57, 64)`` the format field, bits ``[64, 512)`` the minor
        storage.  The uniform family stores all 128 minors at the fixed
        3-bit width; the ZCC family stores a 128-bit zero bitmap followed
        by the non-zero minors, ascending by offset, at the width written
        in the format field.  The cheapest feasible family is chosen —
        the same preference order :meth:`format_of` reports.

        Raises:
            OverflowError: If no format can represent ``minors`` (the
                condition that forces a page re-encryption).
            ValueError: If the major or an offset/minor is out of range.
        """
        if not 0 <= major < (1 << cls.major_bits):
            raise ValueError(f"major {major} exceeds {cls.major_bits} bits")
        for offset, value in minors.items():
            if not 0 <= offset < cls.blocks_per_ctr:
                raise ValueError(f"minor offset {offset} out of range")
            if value < 0:
                raise ValueError(f"minor value {value} is negative")
        nonzero = {k: v for k, v in minors.items() if v > 0}
        if cls._fits_uniform(minors):
            width = cls.uniform_minor_bits
            format_field = width
            area = 0
            for offset, value in nonzero.items():
                area |= value << (offset * width)
        elif cls._fits_zcc(minors):
            width = max(v.bit_length() for v in nonzero.values())
            if width > cls.MAX_PACKED_MINOR_BITS:
                raise OverflowError(
                    f"minor width {width} exceeds the {cls.format_bits}-bit "
                    "format field's capacity"
                )
            format_field = cls.ZCC_FORMAT_FLAG | width
            area = 0
            for offset in nonzero:
                area |= 1 << offset
            cursor = cls.blocks_per_ctr
            for offset in sorted(nonzero):
                area |= nonzero[offset] << cursor
                cursor += width
        else:
            raise OverflowError("minors are not representable in any format")
        word = major | (format_field << cls.major_bits) | (area << 64)
        return word.to_bytes(cls.LINE_BYTES, "little")

    @classmethod
    def unpack_line(cls, blob: bytes) -> tuple:
        """Inverse of :meth:`pack_line`: ``(major, minors, format_name)``.

        ``minors`` contains only the non-zero entries, matching the sparse
        dictionaries the scheme maintains in memory.
        """
        if len(blob) != cls.LINE_BYTES:
            raise ValueError(f"counter line must be {cls.LINE_BYTES} bytes")
        word = int.from_bytes(blob, "little")
        major = word & ((1 << cls.major_bits) - 1)
        format_field = (word >> cls.major_bits) & ((1 << cls.format_bits) - 1)
        area = word >> 64
        width = format_field & cls.MAX_PACKED_MINOR_BITS
        minors: Dict[int, int] = {}
        if format_field & cls.ZCC_FORMAT_FLAG:
            bitmap = area & ((1 << cls.blocks_per_ctr) - 1)
            cursor = cls.blocks_per_ctr
            mask = (1 << width) - 1
            for offset in range(cls.blocks_per_ctr):
                if bitmap & (1 << offset):
                    minors[offset] = (area >> cursor) & mask
                    cursor += width
            name = "zcc"
        else:
            mask = (1 << width) - 1
            for offset in range(cls.blocks_per_ctr):
                value = (area >> (offset * width)) & mask
                if value:
                    minors[offset] = value
            name = "uniform"
        return major, minors, name

    # ------------------------------------------------------------------
    # CounterScheme interface
    # ------------------------------------------------------------------
    def counter_value(self, data_block: int) -> int:
        line = self._lines.get(self.ctr_index(data_block))
        if line is None:
            return 0
        offset = data_block % self.blocks_per_ctr
        # Concatenate major with a minor wide enough for either format.
        return (line.major << 9) | line.minors.get(offset, 0)

    def increment(self, data_block: int) -> Optional[ReencryptionEvent]:
        index = self.ctr_index(data_block)
        line = self._line(index)
        line.updates += 1
        offset = data_block % self.blocks_per_ctr
        minors = line.minors
        old = minors.get(offset, 0)
        new = old + 1
        # Incremental feasibility check (no dict copy): the line stays in
        # the uniform format while every minor is below 2**3; otherwise the
        # ZCC constraint (zero bitmap + non-zero minors at the widest
        # width, within 448 bits) is re-evaluated.
        if new < (1 << self.uniform_minor_bits) and line.max_minor < (1 << self.uniform_minor_bits):
            minors[offset] = new
            if new > line.max_minor:
                line.max_minor = new
            return None
        nonzero = sum(1 for v in minors.values() if v > 0) + (1 if old == 0 else 0)
        width = max(new.bit_length(), line.max_minor.bit_length())
        if self.blocks_per_ctr + nonzero * width <= self.minor_storage_bits:
            minors[offset] = new
            if new > line.max_minor:
                line.max_minor = new
            return None
        line.major += 1
        line.minors = {}
        line.max_minor = 0
        return ReencryptionEvent(
            ctr_index=index,
            first_data_block=index * self.blocks_per_ctr,
            num_blocks=self.blocks_per_ctr,
        )

    def updates_to(self, ctr_index: int) -> int:
        line = self._lines.get(ctr_index)
        return line.updates if line is not None else 0

    def line_format(self, ctr_index: int) -> str:
        """Current format of a counter line (``uniform`` or ``zcc``)."""
        line = self._lines.get(ctr_index)
        if line is None:
            return "uniform"
        return self.format_of(line.minors)


_SCHEME_FACTORIES = {
    "monolithic": MonolithicCounters,
    "split": SplitCounters,
    "morphctr": MorphCtrCounters,
}


def make_counter_scheme(name: str) -> CounterScheme:
    """Instantiate a counter scheme by name."""
    try:
        factory = _SCHEME_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_SCHEME_FACTORIES))
        raise ValueError(f"unknown counter scheme {name!r}; expected one of: {known}")
    return factory()
