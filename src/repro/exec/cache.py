"""Content-addressed, on-disk cache of simulation results.

Entries are JSON files named by the job's content hash.  The cache is
safe for concurrent writers (atomic temp-file + ``os.replace`` writes;
racing writers of the same key keep the first winner instead of
clobbering it), tolerates corrupt or truncated entries (they read as
misses and are deleted best-effort), sweeps tempfiles torn off by
crashed writers, and carries a ``cache_version`` field so incompatible
layout changes invalidate old entries instead of mis-reading them.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from ..sim.results import SimulationResult
from .jobs import JobSpec

#: Bump whenever the entry layout (or the meaning of cached metrics)
#: changes; old entries then miss cleanly.
CACHE_VERSION = 1

#: A ``*.tmp`` file untouched for this long was torn off by a crashed
#: writer — a live ``write_json_atomic`` holds its tempfile for
#: milliseconds, so an hour is conservatively past any plausible write.
TMP_SWEEP_AGE_S = 3600.0


def write_json_atomic(path: Path, payload: object) -> None:
    """Write ``payload`` as JSON to ``path`` without exposing torn files.

    The data lands in a temporary file in the destination directory and is
    moved into place with :func:`os.replace`, which is atomic on POSIX —
    concurrent readers see either the old entry or the new one, never a
    partial write.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultCache:
    """Persist :class:`SimulationResult` records keyed by job content hash.

    Attributes:
        directory: Where entries live (created lazily on first write).
        hits / misses: Lookup counters for telemetry.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def path_for(self, job_hash: str) -> Path:
        """Entry path for ``job_hash``."""
        return self.directory / f"{job_hash}.json"

    def get(self, job_hash: str) -> Optional[SimulationResult]:
        """The cached result for ``job_hash``, or ``None`` on any miss.

        Unreadable, corrupt, mismatched-version or wrong-hash entries all
        count as misses; corrupt files are removed best-effort so they do
        not keep costing a failed parse.
        """
        path = self.path_for(job_hash)
        try:
            with open(path) as stream:
                entry = json.load(stream)
            if entry.get("cache_version") != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            if entry.get("job_hash") != job_hash:
                raise ValueError("entry/job hash mismatch")
            result = SimulationResult.from_dict(entry["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, spec: JobSpec, result: SimulationResult, job_hash: Optional[str] = None) -> bool:
        """Persist ``result`` for ``spec``; failures are non-fatal.

        Returns ``True`` when this call wrote the entry.  When several
        processes race on one key — two servers, or a server and a batch
        run, finishing the same deterministic job — the first writer wins
        and later writers leave the entry alone: readers holding the
        winner's file open are never swapped to a different inode, and a
        half-corrupt loser can never replace a good entry.  Caching is
        best-effort throughout: a read-only or full disk degrades to
        recomputation, never to an error.
        """
        job_hash = job_hash if job_hash is not None else spec.content_hash()
        path = self.path_for(job_hash)
        try:
            if path.exists():
                return False  # concurrent winner already on disk
        except OSError:
            pass
        entry = {
            "cache_version": CACHE_VERSION,
            "job_hash": job_hash,
            "spec": spec.describe(),
            "result": result.to_dict(),
        }
        try:
            write_json_atomic(path, entry)
        except OSError:
            return False
        return True

    def sweep_tmp(self, max_age_s: float = TMP_SWEEP_AGE_S) -> int:
        """Remove tempfiles abandoned by crashed writers; returns the count.

        :func:`write_json_atomic` cleans its tempfile on every failure it
        can observe, but a killed process (OOM, SIGKILL, power loss) leaves
        the ``*.tmp`` behind.  Entries younger than ``max_age_s`` are kept
        — they may belong to a write in progress.
        """
        removed = 0
        cutoff = time.time() - max_age_s
        try:
            candidates = list(self.directory.glob("*.tmp"))
        except OSError:
            return 0
        for path in candidates:
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # another sweeper won the race, or perms
        return removed

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups
