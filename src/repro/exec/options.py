"""Process-wide execution options (CLI flags and environment knobs).

The CLI sets these once per invocation; library entry points
(``bench.runner.run_design_matrix``) read them as defaults so every
experiment in a ``reproduce`` sweep inherits ``--jobs``/``--no-cache``
without threading parameters through each figure function.

Environment fallbacks::

    REPRO_JOBS         default worker count      (default 1 = serial)
    REPRO_JOBS_CAP     cap for auto-detected worker count (default 8)
    REPRO_NO_CACHE=1   disable the result cache
    REPRO_JOB_TIMEOUT  per-job timeout, seconds  (default: none)
    REPRO_SERVE        route matrix runs through a serve server (host:port)
    REPRO_SIM_PATH     simulator dispatch path for every run
                       (auto | arrays | objects | batched; default auto)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

_UNSET = object()

#: Ceiling for :func:`auto_jobs` — beyond this, per-process trace caches
#: and Python interpreter overhead eat the marginal core's contribution.
DEFAULT_JOBS_CAP = 8


def auto_jobs(cap: Optional[int] = None) -> int:
    """Worker count auto-detected from the machine: ``cpu_count`` capped.

    Used as the ``--jobs`` default when neither the flag nor ``REPRO_JOBS``
    picks a count; the cap (``REPRO_JOBS_CAP``, default
    :data:`DEFAULT_JOBS_CAP`) keeps a big box from forking dozens of
    workers for a handful of cells.
    """
    if cap is None:
        try:
            cap = int(os.environ.get("REPRO_JOBS_CAP", str(DEFAULT_JOBS_CAP)))
        except ValueError:
            cap = DEFAULT_JOBS_CAP
    return max(1, min(max(1, int(cap)), os.cpu_count() or 1))


@dataclass(frozen=True)
class ExecutionOptions:
    """Defaults applied by :func:`repro.bench.runner.run_design_matrix`.

    Attributes:
        jobs: Worker processes; 1 executes in-process (serial).
        use_cache: Consult/populate the on-disk result cache.
        timeout: Per-job timeout in seconds (parallel mode only).
        retries: Resubmissions allowed after a failure or timeout.
        jobs_source: Where ``jobs`` came from — ``"default"``, ``"env"``,
            ``"flag"`` or ``"auto"`` (cpu-count detection); recorded in
            run manifests so a sweep's parallelism is explainable later.
        serve: ``host:port`` of a ``repro serve`` server; when set, matrix
            runs submit their jobs there instead of running locally.
        sim_path: Simulator dispatch path forced on every run (``"auto"``,
            ``"arrays"``, ``"objects"`` or ``"batched"``).  All paths are
            metric-identical by contract, so this is purely a performance
            knob; it is recorded in run manifests but excluded from job
            content hashes.
    """

    jobs: int = 1
    use_cache: bool = True
    timeout: Optional[float] = None
    retries: int = 1
    jobs_source: str = "default"
    serve: Optional[str] = None
    sim_path: str = "auto"


#: Accepted values for ``sim_path`` / ``REPRO_SIM_PATH`` / ``--sim-path``.
SIM_PATHS = ("auto", "arrays", "objects", "batched")


def _sim_path_from_env() -> str:
    raw = os.environ.get("REPRO_SIM_PATH", "").strip().lower()
    return raw if raw in SIM_PATHS else "auto"


def options_from_env() -> ExecutionOptions:
    """Options derived purely from the environment."""
    timeout_raw = os.environ.get("REPRO_JOB_TIMEOUT")
    jobs_raw = os.environ.get("REPRO_JOBS")
    return ExecutionOptions(
        jobs=max(1, int(jobs_raw)) if jobs_raw else 1,
        use_cache=not os.environ.get("REPRO_NO_CACHE"),
        timeout=float(timeout_raw) if timeout_raw else None,
        jobs_source="env" if jobs_raw else "default",
        serve=os.environ.get("REPRO_SERVE") or None,
        sim_path=_sim_path_from_env(),
    )


_OPTIONS: Optional[ExecutionOptions] = None


def get_options() -> ExecutionOptions:
    """The active options (explicitly set, else environment-derived)."""
    if _OPTIONS is not None:
        return _OPTIONS
    return options_from_env()


def set_options(
    jobs: object = _UNSET,
    use_cache: object = _UNSET,
    timeout: object = _UNSET,
    retries: object = _UNSET,
    jobs_source: object = _UNSET,
    serve: object = _UNSET,
    sim_path: object = _UNSET,
) -> ExecutionOptions:
    """Override selected fields process-wide; unspecified fields keep
    their current (or environment-derived) values.  Returns the result."""
    global _OPTIONS
    current = get_options()
    updates = {}
    if jobs is not _UNSET:
        updates["jobs"] = max(1, int(jobs))  # type: ignore[arg-type]
        if jobs_source is _UNSET:
            updates["jobs_source"] = "explicit"
    if use_cache is not _UNSET:
        updates["use_cache"] = bool(use_cache)
    if timeout is not _UNSET:
        updates["timeout"] = timeout  # type: ignore[typeddict-item]
    if retries is not _UNSET:
        updates["retries"] = max(0, int(retries))  # type: ignore[arg-type]
    if jobs_source is not _UNSET:
        updates["jobs_source"] = str(jobs_source)
    if serve is not _UNSET:
        updates["serve"] = serve  # type: ignore[typeddict-item]
    if sim_path is not _UNSET:
        value = str(sim_path).strip().lower()
        if value not in SIM_PATHS:
            raise ValueError(
                f"sim_path must be one of {SIM_PATHS}, not {sim_path!r}"
            )
        updates["sim_path"] = value
    _OPTIONS = replace(current, **updates)  # type: ignore[arg-type]
    return _OPTIONS


def reset_options() -> None:
    """Drop explicit overrides; fall back to the environment."""
    global _OPTIONS
    _OPTIONS = None
