"""Process-wide execution options (CLI flags and environment knobs).

The CLI sets these once per invocation; library entry points
(``bench.runner.run_design_matrix``) read them as defaults so every
experiment in a ``reproduce`` sweep inherits ``--jobs``/``--no-cache``
without threading parameters through each figure function.

Environment fallbacks::

    REPRO_JOBS         default worker count      (default 1 = serial)
    REPRO_NO_CACHE=1   disable the result cache
    REPRO_JOB_TIMEOUT  per-job timeout, seconds  (default: none)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

_UNSET = object()


@dataclass(frozen=True)
class ExecutionOptions:
    """Defaults applied by :func:`repro.bench.runner.run_design_matrix`.

    Attributes:
        jobs: Worker processes; 1 executes in-process (serial).
        use_cache: Consult/populate the on-disk result cache.
        timeout: Per-job timeout in seconds (parallel mode only).
        retries: Resubmissions allowed after a failure or timeout.
    """

    jobs: int = 1
    use_cache: bool = True
    timeout: Optional[float] = None
    retries: int = 1


def options_from_env() -> ExecutionOptions:
    """Options derived purely from the environment."""
    timeout_raw = os.environ.get("REPRO_JOB_TIMEOUT")
    return ExecutionOptions(
        jobs=max(1, int(os.environ.get("REPRO_JOBS", "1"))),
        use_cache=not os.environ.get("REPRO_NO_CACHE"),
        timeout=float(timeout_raw) if timeout_raw else None,
    )


_OPTIONS: Optional[ExecutionOptions] = None


def get_options() -> ExecutionOptions:
    """The active options (explicitly set, else environment-derived)."""
    if _OPTIONS is not None:
        return _OPTIONS
    return options_from_env()


def set_options(
    jobs: object = _UNSET,
    use_cache: object = _UNSET,
    timeout: object = _UNSET,
    retries: object = _UNSET,
) -> ExecutionOptions:
    """Override selected fields process-wide; unspecified fields keep
    their current (or environment-derived) values.  Returns the result."""
    global _OPTIONS
    current = get_options()
    updates = {}
    if jobs is not _UNSET:
        updates["jobs"] = max(1, int(jobs))  # type: ignore[arg-type]
    if use_cache is not _UNSET:
        updates["use_cache"] = bool(use_cache)
    if timeout is not _UNSET:
        updates["timeout"] = timeout  # type: ignore[typeddict-item]
    if retries is not _UNSET:
        updates["retries"] = max(0, int(retries))  # type: ignore[arg-type]
    _OPTIONS = replace(current, **updates)  # type: ignore[arg-type]
    return _OPTIONS


def reset_options() -> None:
    """Drop explicit overrides; fall back to the environment."""
    global _OPTIONS
    _OPTIONS = None
