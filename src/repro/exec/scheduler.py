"""Shared scheduling primitives for batch runs and the serve layer.

Both front-ends that execute :class:`~repro.exec.jobs.JobSpec` jobs — the
batch :class:`~repro.exec.runner.ParallelRunner` and the long-running
:class:`~repro.serve.server.ExperimentServer` — need the same two pieces
of bookkeeping:

* **submission dedupe** (:func:`dedupe_specs`): identical specs inside one
  submission collapse to a single job whose result fans out to every
  requester;
* **in-flight dedupe** (:class:`InflightTable`): a spec that is *already
  executing* (submitted by another client, or an earlier overlapping
  batch) is joined as a follower instead of being executed again — N
  submitters of the same cell pay for exactly one simulation.

The table is deliberately transport-agnostic: it records who leads and
who follows and hands results (or failures) to every waiter, but does not
know about sockets, pools or event loops.  The runner drives it
synchronously; the server drives it from its event loop and layers its
own per-connection fan-out on top.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from .jobs import JobSpec


def dedupe_specs(specs: Iterable[JobSpec]) -> List[Tuple[str, JobSpec]]:
    """Collapse duplicate specs (same content hash), preserving order.

    Returns the ordered unique ``(content_hash, spec)`` pairs.  The number
    of collapsed duplicates is ``len(specs) - len(returned)``.
    """
    ordered: List[Tuple[str, JobSpec]] = []
    seen = set()
    for spec in specs:
        job_hash = spec.content_hash()
        if job_hash not in seen:
            seen.add(job_hash)
            ordered.append((job_hash, spec))
    return ordered


class InflightJob:
    """One executing job: its spec, outcome slot and completion signal."""

    __slots__ = ("job_hash", "spec", "followers", "result", "error", "_done")

    def __init__(self, job_hash: str, spec: JobSpec) -> None:
        self.job_hash = job_hash
        self.spec = spec
        #: Requesters (beyond the leader) joined while the job was running.
        self.followers = 0
        self.result: Optional[object] = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the leader resolves the job; ``False`` on timeout."""
        return self._done.wait(timeout)


class InflightTable:
    """Thread-safe registry of currently-executing job hashes.

    Usage contract: :meth:`claim` returns ``(True, job)`` to exactly one
    caller per hash — the **leader**, who must eventually call
    :meth:`resolve` or :meth:`fail` — and ``(False, job)`` to everyone
    else (**followers**), who wait on the returned entry.  Resolution
    removes the entry, so a later claim of the same hash starts a fresh
    execution (by then the result cache answers it anyway).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, InflightJob] = {}
        #: Lifetime counters for telemetry.
        self.led = 0
        self.joined = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def get(self, job_hash: str) -> Optional[InflightJob]:
        """The in-flight entry for ``job_hash``, if any."""
        return self._jobs.get(job_hash)

    def claim(self, job_hash: str, spec: JobSpec) -> Tuple[bool, InflightJob]:
        """Claim ``job_hash`` for execution, or join the executing entry."""
        with self._lock:
            job = self._jobs.get(job_hash)
            if job is not None:
                job.followers += 1
                self.joined += 1
                return False, job
            job = InflightJob(job_hash, spec)
            self._jobs[job_hash] = job
            self.led += 1
            return True, job

    def _finish(self, job_hash: str, result, error) -> InflightJob:
        with self._lock:
            job = self._jobs.pop(job_hash, None)
        if job is None:
            raise KeyError(f"job {job_hash!r} is not in flight")
        job.result, job.error = result, error
        job._done.set()
        return job

    def resolve(self, job_hash: str, result) -> InflightJob:
        """Leader hands the finished result to every waiter."""
        return self._finish(job_hash, result, None)

    def fail(self, job_hash: str, error: BaseException) -> InflightJob:
        """Leader reports a terminal failure to every waiter."""
        return self._finish(job_hash, None, error)
