"""Progress and telemetry for experiment runs.

Two consumers, two shapes:

* a **live stderr ticker** for humans watching a long sweep — jobs
  done/total, cache hit rate, running workers, elapsed wall time — which
  stays silent when stderr is not a terminal (or ``REPRO_NO_TICKER`` is
  set); the closing summary line is emitted through the ``repro.exec``
  logger, so even fully silent runs end with their totals;
* a **machine-readable run manifest** (JSON, version 2) recording per-job
  status, attempts, wall time and cache provenance, run-level aggregates,
  and — when observability is on — the run's phase-span tree and top-level
  metrics.  Written atomically next to the result cache so later tooling
  can mine sweep history; :func:`RunReport.from_dict` still reads
  version-1 manifests.
"""

from __future__ import annotations

import os
import shutil
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import log as obs_log

#: Manifest layout version.  v2 added the ``spans`` and ``metrics`` keys;
#: v1 manifests (no such keys) are still accepted by :func:`RunReport.from_dict`.
#: The ``run_id``/``pid``/``trace`` keys are additive within v2: readers
#: treat their absence as ``None``, so no version bump was needed.
MANIFEST_VERSION = 2

#: Fallback ticker width when the terminal size cannot be determined.
_FALLBACK_COLUMNS = 80


@dataclass
class JobRecord:
    """Telemetry for a single job in one run."""

    job_hash: str
    design: str
    workload: str
    status: str  # "cached" | "ok" | "failed" | "timeout"
    attempts: int = 0
    wall_time: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "job_hash": self.job_hash,
            "design": self.design,
            "workload": self.workload,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_s": round(self.wall_time, 4),
        }
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        """Inverse of :meth:`to_dict` (both manifest versions)."""
        return cls(
            job_hash=str(data["job_hash"]),
            design=str(data["design"]),
            workload=str(data["workload"]),
            status=str(data["status"]),
            attempts=int(data.get("attempts", 0)),
            wall_time=float(data.get("wall_time_s", 0.0)),
            error=data.get("error"),  # type: ignore[arg-type]
        )


@dataclass
class RunReport:
    """Aggregated telemetry for one :class:`~repro.exec.runner.ParallelRunner` run."""

    jobs_requested: int = 1
    workers: int = 1
    mode: str = "serial"  # "serial" | "pool" | "pool+serial" | "serve"
    #: Where the worker count came from ("default", "env", "flag", "auto",
    #: "explicit") — makes a manifest's parallelism explainable later.
    jobs_source: str = "explicit"
    #: Simulator dispatch path forced on this run's jobs ("auto", "arrays",
    #: "objects" or "batched") — metric-identical by contract, recorded so
    #: a sweep's performance profile is explainable later.
    sim_path: str = "auto"
    #: Submitted cells that collapsed onto another cell's content hash and
    #: fanned out that job's result instead of executing again.
    duplicates: int = 0
    records: List[JobRecord] = field(default_factory=list)
    wall_time: float = 0.0
    manifest_path: Optional[Path] = None
    #: Trace-context identity of the run — set by the orchestrator when
    #: observability is on, carried into workers (see
    #: :mod:`repro.obs.tracectx`) and used by ``repro obs merge`` to match
    #: per-job artifacts to this manifest.
    run_id: Optional[str] = None
    #: File name of the merged run-level Chrome trace (a sibling of the
    #: manifest), once :mod:`repro.obs.merge` has stitched it.
    trace: Optional[str] = None
    #: Span tree of the run (``SpanRecorder.to_dict()``), when observability
    #: recorded one.
    spans: Optional[Dict[str, object]] = None
    #: Flat top-level metrics embedded in the manifest (registry snapshot
    #: plus run aggregates).
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.status == "cached")

    @property
    def completed(self) -> int:
        return sum(1 for record in self.records if record.status in ("ok", "cached"))

    @property
    def failed(self) -> int:
        return self.total - self.completed

    @property
    def cache_hit_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.cache_hits / self.total

    @property
    def simulated_time(self) -> float:
        """Summed wall time of jobs that actually simulated."""
        return sum(r.wall_time for r in self.records if r.status != "cached")

    @property
    def worker_utilisation(self) -> float:
        """Busy-time over capacity: ``sum(job time) / (workers * elapsed)``."""
        if self.wall_time <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.simulated_time / (self.workers * self.wall_time))

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "manifest_version": MANIFEST_VERSION,
            "jobs_requested": self.jobs_requested,
            "workers": self.workers,
            "mode": self.mode,
            "jobs_source": self.jobs_source,
            "sim_path": self.sim_path,
            "run_id": self.run_id,
            "pid": os.getpid(),
            "trace": self.trace,
            "totals": {
                "jobs": self.total,
                "duplicates": self.duplicates,
                "completed": self.completed,
                "failed": self.failed,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": round(self.cache_hit_rate, 4),
                "wall_time_s": round(self.wall_time, 4),
                "simulated_time_s": round(self.simulated_time, 4),
                "worker_utilisation": round(self.worker_utilisation, 4),
            },
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "spans": self.spans,
            "jobs": [record.to_dict() for record in self.records],
        }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        """Read a manifest payload — version 2 or the spans-less version 1.

        Raises:
            ValueError: For a manifest version newer than this reader.
        """
        version = int(data.get("manifest_version", 1))
        if version > MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {version} is newer than supported "
                f"({MANIFEST_VERSION})"
            )
        totals = data.get("totals", {})
        report = cls(
            jobs_requested=int(data.get("jobs_requested", 1)),
            workers=int(data.get("workers", 1)),
            mode=str(data.get("mode", "serial")),
            jobs_source=str(data.get("jobs_source", "explicit")),
            sim_path=str(data.get("sim_path", "auto")),
            duplicates=int(totals.get("duplicates", 0)),
            records=[JobRecord.from_dict(j) for j in data.get("jobs", [])],
            wall_time=float(totals.get("wall_time_s", 0.0)),
            run_id=data.get("run_id"),  # type: ignore[arg-type]
            trace=data.get("trace"),  # type: ignore[arg-type]
            spans=data.get("spans"),  # absent (None) in v1 manifests
            metrics={str(k): float(v)
                     for k, v in data.get("metrics", {}).items()},
        )
        return report

    def write_manifest(self, directory: Path) -> Optional[Path]:
        """Atomically write the manifest into ``directory``; best-effort."""
        from .cache import write_json_atomic

        stamp = time.strftime("%Y%m%d-%H%M%S")
        path = Path(directory) / f"run-{stamp}-{os.getpid()}-{id(self) & 0xFFFF:04x}.json"
        try:
            write_json_atomic(path, self.to_dict())
        except OSError:
            return None
        self.manifest_path = path
        return path

    def summary_line(self) -> str:
        """One human-readable line describing the run."""
        parts = [
            f"{self.total} jobs in {self.wall_time:.1f}s",
            f"{self.total - self.cache_hits} simulated",
            f"{self.cache_hits} cache hits ({100 * self.cache_hit_rate:.0f}%)",
            f"{self.workers} worker{'s' if self.workers != 1 else ''} ({self.mode})",
        ]
        if self.duplicates:
            parts.insert(1, f"{self.duplicates} deduped")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        if self.manifest_path is not None:
            parts.append(f"manifest {self.manifest_path}")
        return " · ".join(parts)


def load_manifest(path: Path) -> RunReport:
    """Read a run manifest (version 1 or 2) back into a :class:`RunReport`."""
    import json

    report = RunReport.from_dict(json.loads(Path(path).read_text()))
    report.manifest_path = Path(path)
    return report


class ProgressTicker:
    """Single-line live progress display on stderr.

    Enabled only when stderr is a TTY and ``REPRO_NO_TICKER`` is unset;
    otherwise the drawing methods are no-ops, making the ticker safe to
    drive unconditionally from the runner.  The line is clamped to the
    terminal width (re-read on every draw, so resizes are honoured), and
    :meth:`close` always emits the final summary through the ``repro.exec``
    logger — silent runs still end with their totals.
    """

    def __init__(self, total: int, enabled: Optional[bool] = None,
                 min_interval: float = 0.1) -> None:
        if enabled is None:
            enabled = sys.stderr.isatty() and not os.environ.get("REPRO_NO_TICKER")
        self.total = total
        self.enabled = enabled
        self.min_interval = min_interval
        self._started = time.monotonic()
        self._last_draw = 0.0
        self._last_width = 0
        self._dirty = False
        if self.enabled:
            obs_log.register_ticker(self)

    @staticmethod
    def _columns() -> int:
        """Current terminal width (safe fallback when undetectable)."""
        try:
            columns = shutil.get_terminal_size(fallback=(_FALLBACK_COLUMNS, 24)).columns
        except (OSError, ValueError):  # pragma: no cover - degenerate env
            columns = _FALLBACK_COLUMNS
        return max(20, columns)

    def update(self, done: int, cache_hits: int, running: int, force: bool = False) -> None:
        """Redraw the ticker line (rate-limited unless ``force``)."""
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_draw < self.min_interval:
            self._dirty = True
            return
        self._last_draw = now
        self._dirty = False
        elapsed = now - self._started
        line = (
            f"[repro.exec] {done}/{self.total} jobs"
            f" · {cache_hits} cached · {running} running · {elapsed:.1f}s"
        )
        # Clamp to the terminal: an overlong line would wrap and leave
        # stale fragments that \r can no longer overwrite.
        width = self._columns() - 1
        if len(line) > width:
            line = line[: max(0, width - 1)] + "…"
        self._last_width = max(self._last_width, len(line))
        sys.stderr.write("\r" + line.ljust(min(self._last_width, width)))
        sys.stderr.flush()

    def clear_line(self) -> None:
        """Erase the current ticker line (log handler hook)."""
        if self.enabled and self._last_width:
            sys.stderr.write("\r" + " " * min(self._last_width, self._columns() - 1) + "\r")
            sys.stderr.flush()

    def close(self, summary: Optional[str] = None) -> None:
        """Terminate the ticker line and emit the final summary.

        The summary goes through the ``repro.exec`` logger, so it appears
        whether or not the live ticker was enabled — a run can be silent
        while in flight but never ends without its totals.
        """
        self.clear_line()
        if self.enabled:
            obs_log.unregister_ticker(self)
        if summary is not None:
            obs_log.setup_logging()
            obs_log.get_logger("exec").info("%s", summary)
