"""Progress and telemetry for experiment runs.

Two consumers, two shapes:

* a **live stderr ticker** for humans watching a long sweep — jobs
  done/total, cache hit rate, running workers, elapsed wall time — which
  stays silent when stderr is not a terminal (or ``REPRO_NO_TICKER`` is
  set), so test output and shell pipelines stay clean;
* a **machine-readable run manifest** (JSON) recording per-job status,
  attempts, wall time and cache provenance plus run-level aggregates —
  written atomically next to the result cache so later tooling can mine
  sweep history.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Manifest layout version.
MANIFEST_VERSION = 1


@dataclass
class JobRecord:
    """Telemetry for a single job in one run."""

    job_hash: str
    design: str
    workload: str
    status: str  # "cached" | "ok" | "failed" | "timeout"
    attempts: int = 0
    wall_time: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "job_hash": self.job_hash,
            "design": self.design,
            "workload": self.workload,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_s": round(self.wall_time, 4),
        }
        if self.error is not None:
            data["error"] = self.error
        return data


@dataclass
class RunReport:
    """Aggregated telemetry for one :class:`~repro.exec.runner.ParallelRunner` run."""

    jobs_requested: int = 1
    workers: int = 1
    mode: str = "serial"  # "serial" | "pool"
    records: List[JobRecord] = field(default_factory=list)
    wall_time: float = 0.0
    manifest_path: Optional[Path] = None

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.status == "cached")

    @property
    def completed(self) -> int:
        return sum(1 for record in self.records if record.status in ("ok", "cached"))

    @property
    def failed(self) -> int:
        return self.total - self.completed

    @property
    def cache_hit_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.cache_hits / self.total

    @property
    def simulated_time(self) -> float:
        """Summed wall time of jobs that actually simulated."""
        return sum(r.wall_time for r in self.records if r.status != "cached")

    @property
    def worker_utilisation(self) -> float:
        """Busy-time over capacity: ``sum(job time) / (workers * elapsed)``."""
        if self.wall_time <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.simulated_time / (self.workers * self.wall_time))

    def to_dict(self) -> Dict[str, object]:
        return {
            "manifest_version": MANIFEST_VERSION,
            "jobs_requested": self.jobs_requested,
            "workers": self.workers,
            "mode": self.mode,
            "totals": {
                "jobs": self.total,
                "completed": self.completed,
                "failed": self.failed,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": round(self.cache_hit_rate, 4),
                "wall_time_s": round(self.wall_time, 4),
                "simulated_time_s": round(self.simulated_time, 4),
                "worker_utilisation": round(self.worker_utilisation, 4),
            },
            "jobs": [record.to_dict() for record in self.records],
        }

    def write_manifest(self, directory: Path) -> Optional[Path]:
        """Atomically write the manifest into ``directory``; best-effort."""
        from .cache import write_json_atomic

        stamp = time.strftime("%Y%m%d-%H%M%S")
        path = Path(directory) / f"run-{stamp}-{os.getpid()}-{id(self) & 0xFFFF:04x}.json"
        try:
            write_json_atomic(path, self.to_dict())
        except OSError:
            return None
        self.manifest_path = path
        return path

    def summary_line(self) -> str:
        """One human-readable line describing the run."""
        parts = [
            f"{self.total} jobs in {self.wall_time:.1f}s",
            f"{self.total - self.cache_hits} simulated",
            f"{self.cache_hits} cache hits ({100 * self.cache_hit_rate:.0f}%)",
            f"{self.workers} worker{'s' if self.workers != 1 else ''} ({self.mode})",
        ]
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        if self.manifest_path is not None:
            parts.append(f"manifest {self.manifest_path}")
        return "[repro.exec] " + " · ".join(parts)


class ProgressTicker:
    """Single-line live progress display on stderr.

    Enabled only when stderr is a TTY and ``REPRO_NO_TICKER`` is unset;
    otherwise every method is a no-op, making the ticker safe to drive
    unconditionally from the runner.
    """

    def __init__(self, total: int, enabled: Optional[bool] = None,
                 min_interval: float = 0.1) -> None:
        if enabled is None:
            enabled = sys.stderr.isatty() and not os.environ.get("REPRO_NO_TICKER")
        self.total = total
        self.enabled = enabled
        self.min_interval = min_interval
        self._started = time.monotonic()
        self._last_draw = 0.0
        self._dirty = False

    def update(self, done: int, cache_hits: int, running: int, force: bool = False) -> None:
        """Redraw the ticker line (rate-limited unless ``force``)."""
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_draw < self.min_interval:
            self._dirty = True
            return
        self._last_draw = now
        self._dirty = False
        elapsed = now - self._started
        line = (
            f"\r[repro.exec] {done}/{self.total} jobs"
            f" · {cache_hits} cached · {running} running · {elapsed:.1f}s"
        )
        sys.stderr.write(line.ljust(70))
        sys.stderr.flush()

    def close(self) -> None:
        """Terminate the ticker line so subsequent output starts cleanly."""
        if self.enabled:
            sys.stderr.write("\r" + " " * 70 + "\r")
            sys.stderr.flush()
