"""Parallel job execution with caching, per-job timeout and bounded retry.

:class:`ParallelRunner` takes a list of :class:`~repro.exec.jobs.JobSpec`
and returns ``{content_hash: SimulationResult}``:

1. duplicate cells (same content hash) collapse to one job;
2. the :class:`~repro.exec.cache.ResultCache` (when attached) answers
   hashes it has seen before — a warm sweep does near-zero simulation;
3. remaining jobs run on a ``multiprocessing`` pool (``jobs > 1``) or
   inline in the parent process (``jobs == 1``, or when pool creation
   fails — e.g. a sandbox forbids subprocesses — in which case the runner
   degrades gracefully to serial execution);
4. a job that raises is resubmitted up to ``retries`` times; a job that
   exceeds ``timeout`` seconds is abandoned, its (possibly hung) worker
   pool is rebuilt, and the job is retried like a failure;
5. progress is surfaced on a live stderr ticker and collected into a
   :class:`~repro.exec.telemetry.RunReport`, optionally persisted as a
   JSON run manifest.

Simulation is deterministic given a spec, so serial and parallel execution
produce metric-identical results — the property the determinism test in
``tests/test_exec_runner.py`` pins down.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..sim.results import SimulationResult
from .cache import ResultCache
from .jobs import JobSpec
from .options import get_options
from .scheduler import dedupe_specs
from .telemetry import JobRecord, ProgressTicker, RunReport
from .worker import run_job

#: Seconds between scheduler polls while jobs are in flight.
_POLL_INTERVAL = 0.02


class ExecutionError(RuntimeError):
    """Raised when jobs are still failing after every allowed retry."""

    def __init__(self, failures: List[JobRecord]) -> None:
        self.failures = failures
        lines = ", ".join(
            f"{record.design}/{record.workload} ({record.status}: {record.error})"
            for record in failures[:5]
        )
        more = f" and {len(failures) - 5} more" if len(failures) > 5 else ""
        super().__init__(f"{len(failures)} job(s) failed: {lines}{more}")


class ParallelRunner:
    """Execute a batch of simulation jobs with caching and retries.

    Args:
        jobs: Worker processes; ``1`` runs everything in-process.
        cache: Optional :class:`ResultCache` consulted before execution
            and populated after.
        timeout: Per-job wall-clock limit in seconds.  Enforced in pool
            mode only — an in-process job cannot be preempted.
        retries: Resubmissions allowed per job after failure/timeout.
        fn: The job function (defaults to :func:`run_job`); injectable so
            tests can exercise retry/timeout machinery with stub jobs.
        manifest_dir: When set, a JSON run manifest is written here.
        ticker: Force the progress ticker on/off (default: auto-detect).
        strict: Raise :class:`ExecutionError` if any job exhausts its
            retries; with ``strict=False`` failed hashes are simply absent
            from the returned mapping.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        fn: Callable[[JobSpec], SimulationResult] = run_job,
        manifest_dir: Optional[Path] = None,
        ticker: Optional[bool] = None,
        strict: bool = True,
        jobs_source: str = "explicit",
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.fn = fn
        self.manifest_dir = manifest_dir
        self.ticker_enabled = ticker
        self.strict = strict
        self.jobs_source = jobs_source
        self.report = RunReport()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, specs: List[JobSpec]) -> Dict[str, SimulationResult]:
        """Execute ``specs``; returns ``{content_hash: result}``."""
        started = time.monotonic()
        # In-matrix dedupe: identical cells execute once; every requester
        # reads the one result out of the returned mapping by hash.
        ordered = dedupe_specs(specs)

        report = RunReport(jobs_requested=self.jobs, jobs_source=self.jobs_source,
                           sim_path=get_options().sim_path,
                           duplicates=len(specs) - len(ordered))
        self.report = report
        if self.cache is not None:
            self.cache.sweep_tmp()
        results: Dict[str, SimulationResult] = {}
        ticker = ProgressTicker(len(ordered), enabled=self.ticker_enabled)
        recorder = obs.SpanRecorder("exec.run") if obs.enabled() else None
        # Trace context: one run_id for the whole sweep, propagated into
        # worker processes (fork inherits the active context; spawn reads
        # the env mirror) so per-job artifacts can be merged back into one
        # run-level Chrome trace.  Obs off → no context, no artifacts.
        context = None
        if recorder is not None:
            context = obs.TraceContext(run_id=obs.new_run_id(),
                                       origin="exec.run", root_pid=os.getpid())
            report.run_id = context.run_id

        with obs.propagated(context), obs.recording(recorder):
            # Phase 1: answer what the cache already knows.
            misses: List[Tuple[str, JobSpec]] = []
            with obs.span("cache_probe", jobs=len(ordered)):
                for job_hash, spec in ordered:
                    cached = self.cache.get(job_hash) if self.cache is not None else None
                    if cached is not None:
                        results[job_hash] = cached
                        report.records.append(JobRecord(
                            job_hash=job_hash, design=spec.design, workload=spec.workload,
                            status="cached",
                        ))
                    else:
                        misses.append((job_hash, spec))
                    ticker.update(len(results), report.cache_hits, 0)

            # Phase 2: simulate the rest.  Pool mode is chosen by the requested
            # job count (not the pending count): even a single job benefits from
            # a worker process when a timeout must be enforceable.
            workers = min(self.jobs, max(1, len(misses)))
            with obs.span("execute", pending=len(misses)):
                if misses:
                    if self.jobs > 1:
                        pool_results = self._run_pool(
                            misses, workers, report, ticker, len(ordered))
                    else:
                        pool_results = None
                    if pool_results is None:
                        report.workers, report.mode = 1, "serial"
                        self._run_serial(misses, report, ticker, results, len(ordered))
                    else:
                        results.update(pool_results)
                else:
                    report.workers, report.mode = (
                        workers, "serial" if workers == 1 else "pool")

        report.wall_time = time.monotonic() - started
        self._finalize_obs(report, recorder)
        if self.manifest_dir is not None:
            report.write_manifest(self.manifest_dir)
            if recorder is not None and report.manifest_path is not None:
                self._merge_trace(report)
        ticker.close(summary=report.summary_line())
        failures = [record for record in report.records
                    if record.status not in ("ok", "cached")]
        if failures and self.strict:
            raise ExecutionError(failures)
        return results

    def _merge_trace(self, report: RunReport) -> None:
        """Stitch orchestrator and worker spans into the manifest's merged
        Chrome trace (the ``.trace.json`` sibling); best-effort."""
        from ..bench.runner import cache_dir
        from ..obs.merge import merge_manifest

        try:
            trace_path, _ = merge_manifest(report.manifest_path,
                                           cache_root=cache_dir())
        except (OSError, ValueError):
            return
        report.trace = trace_path.name

    def _finalize_obs(self, report: RunReport, recorder) -> None:
        """Fold the span tree and registry snapshot into the report."""
        if recorder is None:
            return
        report.spans = recorder.to_dict()
        registry = obs.registry()
        histogram = registry.histogram(
            "exec.job_wall_time_s", bounds=obs.WALL_TIME_BUCKETS_S)
        for record in report.records:
            if record.status != "cached":
                histogram.observe(record.wall_time)
        registry.counter("exec.jobs_total").inc(report.total)
        registry.counter("exec.jobs_cached").inc(report.cache_hits)
        registry.counter("exec.jobs_failed").inc(report.failed)
        report.metrics = registry.snapshot()
        report.metrics["exec.wall_time_s"] = round(report.wall_time, 4)
        report.metrics["exec.worker_utilisation"] = round(
            report.worker_utilisation, 4)

    # ------------------------------------------------------------------
    # Serial fallback
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        misses: List[Tuple[str, JobSpec]],
        report: RunReport,
        ticker: ProgressTicker,
        results: Dict[str, SimulationResult],
        total: int,
    ) -> None:
        for job_hash, spec in misses:
            record = JobRecord(job_hash=job_hash, design=spec.design,
                               workload=spec.workload, status="failed")
            for attempt in range(1, self.retries + 2):
                record.attempts = attempt
                job_started = time.monotonic()
                try:
                    with obs.span("job", design=spec.design,
                                  workload=spec.workload, attempt=attempt):
                        result = self.fn(spec)
                except Exception as exc:  # noqa: BLE001 - retried, then reported
                    record.wall_time += time.monotonic() - job_started
                    record.error = f"{type(exc).__name__}: {exc}"
                    continue
                record.wall_time += time.monotonic() - job_started
                record.status, record.error = "ok", None
                results[job_hash] = result
                if self.cache is not None:
                    self.cache.put(spec, result, job_hash=job_hash)
                break
            report.records.append(record)
            ticker.update(len(report.records), report.cache_hits, 0)

    # ------------------------------------------------------------------
    # Pool execution
    # ------------------------------------------------------------------
    def _make_pool(self, workers: int):
        """A worker pool, or ``None`` when the platform cannot provide one."""
        try:
            if "fork" in multiprocessing.get_all_start_methods():
                ctx = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context()
            return ctx.Pool(processes=workers)
        except (OSError, ValueError, ImportError):  # pragma: no cover - sandboxed
            return None

    def _run_pool(
        self,
        misses: List[Tuple[str, JobSpec]],
        workers: int,
        report: RunReport,
        ticker: ProgressTicker,
        total: int,
    ) -> Optional[Dict[str, SimulationResult]]:
        """Run ``misses`` on a pool; ``None`` means "fall back to serial"."""
        pool = self._make_pool(workers)
        if pool is None:
            return None
        report.workers, report.mode = workers, "pool"
        results: Dict[str, SimulationResult] = {}
        records: Dict[str, JobRecord] = {
            job_hash: JobRecord(job_hash=job_hash, design=spec.design,
                                workload=spec.workload, status="failed")
            for job_hash, spec in misses
        }
        queue = deque((job_hash, spec, 1) for job_hash, spec in misses)
        inflight: Dict[str, Tuple[JobSpec, int, object, float]] = {}
        try:
            while queue or inflight:
                while queue and len(inflight) < workers and pool is not None:
                    job_hash, spec, attempt = queue.popleft()
                    records[job_hash].attempts = attempt
                    async_result = pool.apply_async(self.fn, (spec,))
                    inflight[job_hash] = (spec, attempt, async_result, time.monotonic())
                if pool is None and not inflight:
                    # The pool died and could not be rebuilt: finish serially.
                    remaining = [(job_hash, spec) for job_hash, spec, _ in queue]
                    queue.clear()
                    for job_hash, _ in remaining:
                        records.pop(job_hash, None)  # serial path records these
                    report.mode = "pool+serial"
                    self._run_serial(remaining, report, ticker, results, total)
                    break

                progressed = False
                now = time.monotonic()
                for job_hash in list(inflight):
                    spec, attempt, async_result, job_started = inflight[job_hash]
                    record = records[job_hash]
                    if async_result.ready():
                        del inflight[job_hash]
                        progressed = True
                        record.wall_time += time.monotonic() - job_started
                        try:
                            result = async_result.get()
                        except Exception as exc:  # noqa: BLE001 - retried below
                            record.error = f"{type(exc).__name__}: {exc}"
                            if attempt <= self.retries:
                                queue.append((job_hash, spec, attempt + 1))
                            continue
                        record.status, record.error = "ok", None
                        results[job_hash] = result
                        if self.cache is not None:
                            self.cache.put(spec, result, job_hash=job_hash)
                    elif self.timeout is not None and now - job_started > self.timeout:
                        # The worker may be wedged: drop the job, requeue the
                        # rest, and rebuild the pool to reclaim the process.
                        del inflight[job_hash]
                        progressed = True
                        record.wall_time += time.monotonic() - job_started
                        record.error = f"timeout after {self.timeout:.1f}s"
                        record.status = "timeout"
                        if attempt <= self.retries:
                            record.status = "failed"
                            queue.append((job_hash, spec, attempt + 1))
                        for other_hash in list(inflight):
                            other_spec, other_attempt, _, _ = inflight.pop(other_hash)
                            queue.appendleft((other_hash, other_spec, other_attempt))
                        pool.terminate()
                        pool.join()
                        pool = self._make_pool(workers)
                        break

                done = total - len(queue) - len(inflight)
                ticker.update(done, report.cache_hits, len(inflight))
                if not progressed:
                    time.sleep(_POLL_INTERVAL)
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()
        for job_hash, record in records.items():
            if record.status == "failed" and record.error is None:
                record.error = "not executed"
        report.records.extend(records.values())
        return results
