"""Worker-side job execution.

:func:`run_job` is the function the process pool ships to workers; it must
stay a top-level importable so it pickles by reference.  A job is entirely
self-describing (see :class:`~repro.exec.jobs.JobSpec`), so execution never
consults environment knobs — the same spec produces the same result in a
worker process, a thread, or inline in the parent.
"""

from __future__ import annotations

from ..sim.results import SimulationResult
from ..sim.simulator import simulate
from .jobs import JobSpec


def run_job(spec: JobSpec) -> SimulationResult:
    """Execute one simulation cell described by ``spec``.

    Trace generation goes through the shared trace cache
    (``bench.runner.get_trace``), so concurrent workers converging on one
    workload pay the generation cost at most once per process and reuse
    the on-disk ``.npz`` across processes.
    """
    from ..bench.runner import get_trace

    trace = get_trace(
        spec.workload,
        num_cores=spec.num_cores,
        max_accesses=spec.trace_length,
        seed=spec.seed,
        scale=spec.graph_scale,
    )
    return simulate(spec.design, trace, spec.config, workload=spec.workload)
