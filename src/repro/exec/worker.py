"""Worker-side job execution.

:func:`run_job` is the function the process pool ships to workers; it must
stay a top-level importable so it pickles by reference.  A job is entirely
self-describing (see :class:`~repro.exec.jobs.JobSpec`), so the *metrics*
never depend on the environment — the same spec produces the same result in
a worker process, a thread, or inline in the parent.  Observability
(``REPRO_OBS``) is the one environment knob consulted, and it only adds
side artifacts: phase spans, a windowed time-series and an event log per
job, written under ``<cache_dir>/obs/<hash16>/``.
"""

from __future__ import annotations

from .. import obs
from ..obs import tracectx
from ..obs.artifacts import obs_root, write_job_artifacts
from ..sim.results import SimulationResult
from ..sim.simulator import Simulator, build_design
from .jobs import JobSpec
from .options import get_options


def _sim_path():
    """The dispatch path every job run should force (None = auto)."""
    path = get_options().sim_path
    return None if path == "auto" else path


def run_job(spec: JobSpec) -> SimulationResult:
    """Execute one simulation cell described by ``spec``.

    Trace generation goes through the shared trace cache
    (``bench.runner.get_trace``), so concurrent workers converging on one
    workload pay the generation cost at most once per process and reuse
    the on-disk ``.npz`` across processes.
    """
    from ..bench.runner import cache_dir, get_trace

    if not obs.enabled():
        trace = get_trace(
            spec.workload,
            num_cores=spec.num_cores,
            max_accesses=spec.trace_length,
            seed=spec.seed,
            scale=spec.graph_scale,
        )
        return simulate_spec(spec, trace)

    # Observability path: a fresh recorder per job (a pool worker has no
    # run-level recorder; inline the per-job tree nests under the runner's
    # "job" span only in the manifest, while the artifact keeps its own).
    job_hash = spec.content_hash()
    recorder = obs.SpanRecorder(f"job {spec.design}/{spec.workload}")
    with obs.recording(recorder):
        with obs.span("trace_gen", workload=spec.workload):
            trace = get_trace(
                spec.workload,
                num_cores=spec.num_cores,
                max_accesses=spec.trace_length,
                seed=spec.seed,
                scale=spec.graph_scale,
            )
        with obs.span("simulate", design=spec.design):
            simulator = Simulator(
                build_design(spec.design, spec.config), spec.config,
                workload=spec.workload,
            )
            result = simulator.run(trace, path=_sim_path())
    # Stamp the propagated trace context (run_id + this worker's pid) so
    # ``repro obs merge`` can attribute this job's span tree to the right
    # process under the orchestrator's run.
    meta = {
        "design": spec.design,
        "workload": spec.workload,
        "accesses": result.accesses,
        "cycles": result.cycles,
    }
    meta.update(tracectx.job_annotations())
    write_job_artifacts(
        obs_root(cache_dir()),
        job_hash,
        recorder=recorder,
        sampler=simulator.sampler,
        meta=meta,
    )
    return result


def simulate_spec(spec: JobSpec, trace) -> SimulationResult:
    """The bare simulation of a spec over an already-generated trace.

    The dispatch path comes from the process-wide execution options
    (``--sim-path`` / ``REPRO_SIM_PATH``); paths are metric-identical by
    contract, so this never changes what a spec produces — only how fast.
    """
    from ..sim.simulator import simulate

    return simulate(
        spec.design, trace, spec.config, workload=spec.workload,
        path=_sim_path(),
    )
