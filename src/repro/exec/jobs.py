"""Job specifications: one job = one ``simulate(design, workload, config)`` cell.

A :class:`JobSpec` is a fully-resolved, picklable description of a single
simulation: the environment knobs (trace length, graph scale) and the
default configuration are captured at *spec-creation* time, so a worker
process can execute the job without consulting any ambient state.

Every spec has a stable **content hash** — a SHA-256 over the design name,
workload, seed and the canonicalised :class:`~repro.sim.config.SimulationConfig`
— which keys the on-disk :class:`~repro.exec.cache.ResultCache` and
deduplicates identical cells inside one run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.config import SimulationConfig

#: Bump when the hash inputs or the simulation semantics they describe
#: change incompatibly; stale cache entries then miss instead of lying.
SPEC_VERSION = 1


def canonical_config_dict(config: SimulationConfig) -> Dict[str, object]:
    """A plain nested dictionary capturing every field of ``config``.

    ``SimulationConfig`` is a tree of dataclasses holding only primitives,
    so :func:`dataclasses.asdict` is a faithful canonical form; JSON with
    sorted keys then gives a stable byte representation for hashing.
    """
    return dataclasses.asdict(config)


#: Resolved ``{field_name: type}`` hints per dataclass — ``get_type_hints``
#: walks string annotations and is too slow to re-run per wire message.
_HINT_CACHE: Dict[type, Dict[str, object]] = {}


def _dataclass_from_dict(cls: type, data: Dict[str, object]):
    """Rebuild a (possibly nested) config dataclass from its ``asdict`` form.

    Unknown keys are rejected rather than dropped: a spec that arrives over
    the wire with fields this build does not understand would otherwise
    hash differently from what it executes as.

    Raises:
        ValueError: If ``data`` is not a dict or carries unknown fields.
    """
    if not isinstance(data, dict):
        raise ValueError(f"{cls.__name__}: expected an object, got {type(data).__name__}")
    hints = _HINT_CACHE.get(cls)
    if hints is None:
        hints = typing.get_type_hints(cls)
        _HINT_CACHE[cls] = hints
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ValueError(f"{cls.__name__}: unknown field(s) {sorted(unknown)}")
    kwargs = {}
    for field_obj in dataclasses.fields(cls):
        if field_obj.name not in data:
            continue
        value = data[field_obj.name]
        field_type = hints.get(field_obj.name)
        if dataclasses.is_dataclass(field_type) and isinstance(value, dict):
            value = _dataclass_from_dict(field_type, value)  # type: ignore[arg-type]
        kwargs[field_obj.name] = value
    return cls(**kwargs)


def config_from_dict(data: Dict[str, object]) -> SimulationConfig:
    """Inverse of :func:`canonical_config_dict`.

    The round trip is exact: every config field is a primitive or a nested
    dataclass of primitives, JSON preserves ints and ``repr``-precision
    floats, so ``config_from_dict(canonical_config_dict(c)) == c`` and the
    rebuilt config hashes to the same :meth:`JobSpec.content_hash`.
    """
    return _dataclass_from_dict(SimulationConfig, data)


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell, fully resolved and ready to execute anywhere.

    Attributes:
        design: Design name (``np``, ``morphctr``, ``cosmos``...).
        workload: Workload name (any name ``bench.runner.get_trace`` accepts).
        config: The *resolved* simulation configuration (never ``None`` —
            callers substitute the harness default before building a spec).
        num_cores: Cores the trace is generated for.
        trace_length: Accesses in the trace (env knobs already applied).
        graph_scale: Graph-size multiplier (env knob already applied).
        seed: Optional trace-generator seed override.
    """

    design: str
    workload: str
    config: SimulationConfig
    num_cores: int = 4
    trace_length: int = 150_000
    graph_scale: float = 4.0
    seed: Optional[int] = None

    def content_hash(self) -> str:
        """Stable SHA-256 identifying this cell's inputs."""
        payload = {
            "spec_version": SPEC_VERSION,
            "design": self.design,
            "workload": self.workload,
            "num_cores": self.num_cores,
            "trace_length": self.trace_length,
            "graph_scale": self.graph_scale,
            "seed": self.seed,
            "config": canonical_config_dict(self.config),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> Dict[str, object]:
        """Small JSON-safe summary for manifests and error messages."""
        return {
            "design": self.design,
            "workload": self.workload,
            "num_cores": self.num_cores,
            "trace_length": self.trace_length,
            "graph_scale": self.graph_scale,
            "seed": self.seed,
        }

    def to_wire(self) -> Dict[str, object]:
        """Full JSON-safe form for the serve protocol (lossless).

        Unlike :meth:`describe` this includes the resolved configuration,
        so the receiving side rebuilds a spec with the *same* content hash
        — the property the server's dedupe and cache lookups rely on.
        """
        return {
            "spec_version": SPEC_VERSION,
            "design": self.design,
            "workload": self.workload,
            "num_cores": self.num_cores,
            "trace_length": self.trace_length,
            "graph_scale": self.graph_scale,
            "seed": self.seed,
            "config": canonical_config_dict(self.config),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "JobSpec":
        """Inverse of :meth:`to_wire`.

        Raises:
            ValueError: On a malformed payload or a ``spec_version`` this
                build does not understand (executing it could silently
                mean something different from what the sender hashed).
        """
        if not isinstance(data, dict):
            raise ValueError(f"spec: expected an object, got {type(data).__name__}")
        version = data.get("spec_version")
        if version != SPEC_VERSION:
            raise ValueError(f"spec version {version!r} != supported {SPEC_VERSION}")
        try:
            seed = data.get("seed")
            return cls(
                design=str(data["design"]),
                workload=str(data["workload"]),
                config=config_from_dict(data["config"]),  # type: ignore[arg-type]
                num_cores=int(data["num_cores"]),
                trace_length=int(data["trace_length"]),
                graph_scale=float(data["graph_scale"]),
                seed=int(seed) if seed is not None else None,
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed spec payload: {exc}") from exc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.design}/{self.workload}"


def make_spec(
    design: str,
    workload: str,
    config: Optional[SimulationConfig] = None,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
    seed: Optional[int] = None,
) -> JobSpec:
    """Resolve harness defaults and environment knobs into a :class:`JobSpec`.

    Mirrors the argument conventions of ``bench.runner.run_design``: a
    ``None`` config means the standard scaled-paper configuration, a
    ``None`` ``max_accesses`` means the environment-controlled default
    trace length.
    """
    from ..bench.runner import default_config, graph_scale, trace_length

    return JobSpec(
        design=design,
        workload=workload,
        config=config if config is not None else default_config(num_cores),
        num_cores=num_cores,
        trace_length=max_accesses if max_accesses is not None else trace_length(),
        graph_scale=graph_scale(),
        seed=seed,
    )
