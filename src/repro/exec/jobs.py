"""Job specifications: one job = one ``simulate(design, workload, config)`` cell.

A :class:`JobSpec` is a fully-resolved, picklable description of a single
simulation: the environment knobs (trace length, graph scale) and the
default configuration are captured at *spec-creation* time, so a worker
process can execute the job without consulting any ambient state.

Every spec has a stable **content hash** — a SHA-256 over the design name,
workload, seed and the canonicalised :class:`~repro.sim.config.SimulationConfig`
— which keys the on-disk :class:`~repro.exec.cache.ResultCache` and
deduplicates identical cells inside one run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.config import SimulationConfig

#: Bump when the hash inputs or the simulation semantics they describe
#: change incompatibly; stale cache entries then miss instead of lying.
SPEC_VERSION = 1


def canonical_config_dict(config: SimulationConfig) -> Dict[str, object]:
    """A plain nested dictionary capturing every field of ``config``.

    ``SimulationConfig`` is a tree of dataclasses holding only primitives,
    so :func:`dataclasses.asdict` is a faithful canonical form; JSON with
    sorted keys then gives a stable byte representation for hashing.
    """
    return dataclasses.asdict(config)


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell, fully resolved and ready to execute anywhere.

    Attributes:
        design: Design name (``np``, ``morphctr``, ``cosmos``...).
        workload: Workload name (any name ``bench.runner.get_trace`` accepts).
        config: The *resolved* simulation configuration (never ``None`` —
            callers substitute the harness default before building a spec).
        num_cores: Cores the trace is generated for.
        trace_length: Accesses in the trace (env knobs already applied).
        graph_scale: Graph-size multiplier (env knob already applied).
        seed: Optional trace-generator seed override.
    """

    design: str
    workload: str
    config: SimulationConfig
    num_cores: int = 4
    trace_length: int = 150_000
    graph_scale: float = 4.0
    seed: Optional[int] = None

    def content_hash(self) -> str:
        """Stable SHA-256 identifying this cell's inputs."""
        payload = {
            "spec_version": SPEC_VERSION,
            "design": self.design,
            "workload": self.workload,
            "num_cores": self.num_cores,
            "trace_length": self.trace_length,
            "graph_scale": self.graph_scale,
            "seed": self.seed,
            "config": canonical_config_dict(self.config),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> Dict[str, object]:
        """Small JSON-safe summary for manifests and error messages."""
        return {
            "design": self.design,
            "workload": self.workload,
            "num_cores": self.num_cores,
            "trace_length": self.trace_length,
            "graph_scale": self.graph_scale,
            "seed": self.seed,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.design}/{self.workload}"


def make_spec(
    design: str,
    workload: str,
    config: Optional[SimulationConfig] = None,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
    seed: Optional[int] = None,
) -> JobSpec:
    """Resolve harness defaults and environment knobs into a :class:`JobSpec`.

    Mirrors the argument conventions of ``bench.runner.run_design``: a
    ``None`` config means the standard scaled-paper configuration, a
    ``None`` ``max_accesses`` means the environment-controlled default
    trace length.
    """
    from ..bench.runner import default_config, graph_scale, trace_length

    return JobSpec(
        design=design,
        workload=workload,
        config=config if config is not None else default_config(num_cores),
        num_cores=num_cores,
        trace_length=max_accesses if max_accesses is not None else trace_length(),
        graph_scale=graph_scale(),
        seed=seed,
    )
