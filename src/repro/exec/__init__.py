"""``repro.exec`` — parallel experiment orchestration with result caching.

Turns an experiment's (design × workload × config) cells into independent
:class:`JobSpec` jobs, executes them on a process pool with per-job
timeout, bounded retry and graceful serial fallback, and persists every
:class:`~repro.sim.results.SimulationResult` in a content-addressed
on-disk :class:`ResultCache` so repeated sweeps cost near-zero simulation
time.  See ``docs/architecture.md`` ("Execution & caching") for the full
picture.
"""

from .cache import CACHE_VERSION, ResultCache, write_json_atomic
from .jobs import JobSpec, canonical_config_dict, config_from_dict, make_spec
from .options import (
    ExecutionOptions,
    auto_jobs,
    get_options,
    options_from_env,
    reset_options,
    set_options,
)
from .runner import ExecutionError, ParallelRunner
from .scheduler import InflightJob, InflightTable, dedupe_specs
from .telemetry import (
    MANIFEST_VERSION,
    JobRecord,
    ProgressTicker,
    RunReport,
    load_manifest,
)
from .worker import run_job

__all__ = [
    "CACHE_VERSION",
    "ExecutionError",
    "ExecutionOptions",
    "InflightJob",
    "InflightTable",
    "JobRecord",
    "JobSpec",
    "MANIFEST_VERSION",
    "ParallelRunner",
    "ProgressTicker",
    "ResultCache",
    "RunReport",
    "auto_jobs",
    "load_manifest",
    "canonical_config_dict",
    "config_from_dict",
    "dedupe_specs",
    "get_options",
    "make_spec",
    "options_from_env",
    "reset_options",
    "run_job",
    "set_options",
    "write_json_atomic",
]
