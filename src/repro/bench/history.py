"""Perf-regression observatory: append-only benchmark history.

``BENCH_hotpath.json`` is a single overwritten snapshot — good for a diff,
blind to slow drift.  This module keeps the longitudinal record:
:func:`append_history` distils each perf-harness payload into one JSONL
line (git sha, timestamp, per-``design@path`` throughput, the DRAM and
serve microbench rates) appended to ``BENCH_history.jsonl``, and
:func:`analyze_trend` compares the newest entry against the **median of
the last N comparable runs** — flagging drifts well below the blunt ≤3%
CI gate before they compound into one.

Entries are only comparable when the workload is identical, so the trend
analyzer partitions on the ``trace`` block (n/seed/write fraction) and the
Python minor version before computing medians.  ``repro obs bench-trend``
is the CLI surface.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

#: Default history file name (repo root, next to BENCH_hotpath.json).
HISTORY_FILENAME = "BENCH_history.jsonl"

#: History record schema; bump on incompatible shape changes.
HISTORY_SCHEMA = "repro.bench.history/v1"

#: Comparable previous runs folded into the trend median.
DEFAULT_WINDOW = 5

#: Relative drop below the median that gets flagged (1% — a third of the
#: hard CI gate, so drift is visible long before it trips the gate).
DEFAULT_THRESHOLD = 0.01


def git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """The current commit's short sha, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def history_entry(payload: Dict[str, object],
                  sha: Optional[str] = None,
                  now: Optional[int] = None) -> Dict[str, object]:
    """Distil one perf-harness payload into a history record."""
    throughput: Dict[str, float] = {}
    for key, entry in (payload.get("results") or {}).items():
        rate = entry.get("accesses_per_sec") if isinstance(entry, dict) else None
        if rate:
            throughput[str(key)] = round(float(rate), 1)
    record: Dict[str, object] = {
        "schema": HISTORY_SCHEMA,
        "ts": int(now if now is not None else time.time()),
        "sha": sha if sha is not None else git_sha(),
        "python": platform.python_version(),
        "trace": payload.get("trace") or {},
        "throughput": throughput,
    }
    dram = payload.get("dram_microbench")
    if isinstance(dram, dict) and dram.get("requests_per_sec"):
        record["dram_rps"] = round(float(dram["requests_per_sec"]), 1)
    serve = payload.get("serve_microbench")
    if isinstance(serve, dict) and serve.get("requests_per_sec"):
        record["serve_rps"] = round(float(serve["requests_per_sec"]), 1)
    return record


def append_history(payload: Dict[str, object], path: Path,
                   sha: Optional[str] = None) -> Optional[Dict[str, object]]:
    """Append one record for ``payload`` to ``path``; best-effort.

    Returns the appended record, or ``None`` when the file could not be
    written (history must never fail a benchmark run).
    """
    record = history_entry(payload, sha=sha)
    try:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
    except OSError:
        return None
    return record


def load_history(path: Path) -> List[Dict[str, object]]:
    """Every readable record in ``path``, oldest first."""
    records: List[Dict[str, object]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # a torn append must not poison the whole history
        if isinstance(record, dict):
            records.append(record)
    return records


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _comparable(a: Dict[str, object], b: Dict[str, object]) -> bool:
    """Same workload and interpreter generation → rates are comparable."""
    if a.get("trace") != b.get("trace"):
        return False
    pa, pb = str(a.get("python", "")), str(b.get("python", ""))
    return pa.rsplit(".", 1)[0] == pb.rsplit(".", 1)[0]


def _rates(record: Dict[str, object]) -> Dict[str, float]:
    rates = {str(k): float(v)
             for k, v in (record.get("throughput") or {}).items() if v}
    for key in ("dram_rps", "serve_rps"):
        value = record.get(key)
        if value:
            rates[key] = float(value)
    return rates


def analyze_trend(
    records: Iterable[Dict[str, object]],
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Latest run vs. the median of the last ``window`` comparable runs.

    Returns ``{"latest": record, "baseline_runs": n, "keys": {key: {...}}}``
    where each key entry carries ``latest``, ``median``, ``drift`` (signed
    relative change) and ``flag`` (drift below ``-threshold``).  With no
    comparable history, ``keys`` is empty and nothing is flagged.
    """
    history = [r for r in records if isinstance(r, dict)]
    if not history:
        return {"latest": None, "baseline_runs": 0, "keys": {}, "flags": []}
    latest = history[-1]
    baseline = [r for r in history[:-1] if _comparable(latest, r)][-window:]
    latest_rates = _rates(latest)
    keys: Dict[str, Dict[str, object]] = {}
    flags: List[str] = []
    for key in sorted(latest_rates):
        samples = [_rates(r).get(key) for r in baseline]
        samples = [s for s in samples if s]
        if not samples:
            continue
        median = _median(samples)
        drift = latest_rates[key] / median - 1.0 if median else 0.0
        flagged = drift < -threshold
        keys[key] = {
            "latest": latest_rates[key],
            "median": round(median, 1),
            "runs": len(samples),
            "drift": round(drift, 4),
            "flag": flagged,
        }
        if flagged:
            flags.append(key)
    return {"latest": latest, "baseline_runs": len(baseline),
            "keys": keys, "flags": flags}


def format_trend(analysis: Dict[str, object],
                 threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable trend table, flagged keys marked."""
    latest = analysis.get("latest")
    if not latest:
        return "no history recorded yet"
    lines = [
        f"latest: sha={latest.get('sha') or '?'}"
        f" ts={latest.get('ts')} python={latest.get('python')}"
        f" · baseline: median of {analysis.get('baseline_runs', 0)}"
        f" comparable run(s)"
    ]
    keys: Dict[str, Dict[str, object]] = analysis.get("keys", {})
    if not keys:
        lines.append("no comparable baseline runs — nothing to compare")
        return "\n".join(lines)
    for key, entry in keys.items():
        marker = " ⚠ DRIFT" if entry["flag"] else ""
        lines.append(
            f"{key:>18}: {entry['latest']:>12,.0f} /s"
            f"  median {entry['median']:>12,.0f}"
            f"  drift {100 * entry['drift']:+.2f}%"
            f" (n={entry['runs']}){marker}"
        )
    flags = analysis.get("flags", [])
    if flags:
        lines.append(
            f"{len(flags)} key(s) drifted more than {threshold:.1%} below "
            f"their median: {', '.join(flags)}")
    else:
        lines.append(f"all keys within {threshold:.1%} of their medians")
    return "\n".join(lines)
