"""Export experiment results to CSV / JSON / Markdown.

The benchmarks print text tables; this module persists the same rows in
machine-readable form so downstream plotting (outside this offline repo)
can regenerate the paper's figures.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

PathLike = Union[str, Path]


def _columns(rows: List[Dict[str, object]]) -> List[str]:
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def write_csv(rows: List[Dict[str, object]], path: PathLike) -> Path:
    """Write rows as CSV (header = union of keys, first-seen order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = _columns(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def write_json(rows: List[Dict[str, object]], path: PathLike, experiment: str = "") -> Path:
    """Write rows as a JSON document with a small metadata envelope."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"experiment": experiment, "rows": rows}
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, default=str)
    return path


def write_markdown(rows: List[Dict[str, object]], path: PathLike, title: str = "") -> Path:
    """Write rows as a GitHub-flavoured Markdown table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = _columns(rows)
    lines: List[str] = []
    if title:
        lines.append(f"# {title}")
        lines.append("")
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("| " + " | ".join("---" for _ in columns) + " |")
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    path.write_text("\n".join(lines) + "\n")
    return path


def read_json(path: PathLike) -> List[Dict[str, object]]:
    """Load rows written by :func:`write_json`."""
    with open(Path(path)) as handle:
        document = json.load(handle)
    return document["rows"]


def export_experiment(
    rows: List[Dict[str, object]],
    output_dir: PathLike,
    name: str,
    formats: Sequence[str] = ("csv", "json"),
) -> List[Path]:
    """Persist one experiment's rows in the requested formats.

    Args:
        rows: Rows returned by an ``repro.bench.experiments`` function.
        output_dir: Directory to write into (created if missing).
        name: File stem, e.g. ``fig10``.
        formats: Any of ``csv``, ``json``, ``md``.
    """
    output_dir = Path(output_dir)
    written: List[Path] = []
    for fmt in formats:
        if fmt == "csv":
            written.append(write_csv(rows, output_dir / f"{name}.csv"))
        elif fmt == "json":
            written.append(write_json(rows, output_dir / f"{name}.json", experiment=name))
        elif fmt == "md":
            written.append(write_markdown(rows, output_dir / f"{name}.md", title=name))
        else:
            raise ValueError(f"unknown export format {fmt!r}; expected csv/json/md")
    return written
