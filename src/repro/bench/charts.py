"""Terminal charts: render experiment series without a plotting stack.

This offline repository cannot ship matplotlib figures, so the harness
renders the paper's *figure-shaped* results (bars per workload, curves
over sweeps) as Unicode bar charts and sparklines directly in the
terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Eighth-block ramp used by sparklines.
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values`` (empty string for no data)."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _SPARKS[3] * len(values)
    ramp: List[str] = []
    for value in values:
        index = int((value - low) / span * (len(_SPARKS) - 1))
        ramp.append(_SPARKS[index])
    return "".join(ramp)


def bar_chart(
    items: Dict[str, float],
    width: int = 40,
    max_value: Optional[float] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not items:
        return "(no data)"
    limit = max_value if max_value is not None else max(items.values())
    if limit <= 0:
        limit = 1.0
    label_width = max(len(label) for label in items)
    lines: List[str] = []
    for label, value in items.items():
        filled = int(round(min(value, limit) / limit * width))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{label.ljust(label_width)}  {bar}  {value:.3g}{unit}")
    return "\n".join(lines)


def series_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 8,
    width: Optional[int] = None,
) -> str:
    """Multi-series scatter chart over a shared x-axis.

    Each series gets a marker; rows are value buckets from high to low.
    Good enough to see crossovers and trends in sweep results.
    """
    if not series or not x_values:
        return "(no data)"
    markers = "ox+*#@%&"
    width = width if width is not None else len(x_values)
    all_values = [v for values in series.values() for v in values]
    low, high = min(all_values), max(all_values)
    span = (high - low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for column, value in enumerate(values[:width]):
            row = height - 1 - int((value - low) / span * (height - 1))
            grid[row][column] = marker
    lines = []
    for row_index, row in enumerate(grid):
        level = high - span * row_index / (height - 1) if height > 1 else high
        lines.append(f"{level:8.3g} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
