"""Per-figure/table experiment reproductions.

One function per table and figure in the paper's evaluation.  Every
function returns the rows it prints, so tests and benchmarks can assert on
the reproduced shapes.  EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core.config import CosmosConfig
from ..core.overhead import compute_overhead
from ..core.tuning import extract_footprint, tune_hyperparameters, tune_rewards
from ..mem.hierarchy import HierarchyConfig
from ..secure.engine import EngineConfig
from ..sim.config import SimulationConfig
from ..sim.simulator import Simulator, build_design
from ..workloads.graph_algos import GRAPH_WORKLOADS
from ..workloads.ml import ML_WORKLOADS
from ..workloads.spec import SPEC_WORKLOADS
from .report import geometric_mean, print_experiment
from .runner import default_config, get_trace, run_design, run_design_matrix, run_matrix

#: Default workload sets (paper Sec. 5).
DEFAULT_GRAPHS = list(GRAPH_WORKLOADS)
DEFAULT_IRREGULAR = DEFAULT_GRAPHS + list(SPEC_WORKLOADS)
FIG15_GRAPHS = ["bfs", "dfs", "tc", "gc", "cc", "sp", "dc"]  # paper Fig. 15


def _with_engine(config: SimulationConfig, engine: EngineConfig) -> SimulationConfig:
    return SimulationConfig(
        hierarchy=config.hierarchy,
        memory_bytes=config.memory_bytes,
        counter_scheme=config.counter_scheme,
        engine=engine,
        cosmos=config.cosmos,
        cpu=config.cpu,
    )


def _with_cosmos(config: SimulationConfig, cosmos: CosmosConfig) -> SimulationConfig:
    return SimulationConfig(
        hierarchy=config.hierarchy,
        memory_bytes=config.memory_bytes,
        counter_scheme=config.counter_scheme,
        engine=config.engine,
        cosmos=cosmos,
        cpu=config.cpu,
    )


# ----------------------------------------------------------------------
# Figure 2 — memory traffic: non-protected vs secure (MorphCtr)
# ----------------------------------------------------------------------
def figure2(workloads: Optional[List[str]] = None, quiet: bool = False) -> List[Dict[str, object]]:
    """Traffic breakdown and CTR miss rate, NP vs secure memory."""
    workloads = workloads if workloads is not None else DEFAULT_GRAPHS
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        np_result = run_design("np", workload)
        secure = run_design("morphctr", workload)
        np_total = max(np_result.traffic.total, 1)
        traffic = secure.traffic
        rows.append(
            {
                "workload": workload,
                "np_traffic": 1.0,
                "secure_traffic": traffic.total / np_total,
                "data_frac": (traffic.data_reads + traffic.data_writes) / max(traffic.total, 1),
                "mt_frac": traffic.mt_reads / max(traffic.total, 1),
                "reenc_frac": traffic.reencryption_requests / max(traffic.total, 1),
                "ctr_miss_rate": secure.ctr_miss_rate,
            }
        )
    if not quiet:
        print_experiment(
            "Figure 2: memory traffic NP vs secure (MorphCtr)",
            rows,
            notes=[
                "paper shape: MT-node reads dominate secure traffic;"
                " re-encryption negligible; CTR miss ~90% on graph workloads",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 3 — CTR cache size sweep
# ----------------------------------------------------------------------
def figure3(
    workloads: Optional[List[str]] = None,
    sizes_kb: Optional[List[int]] = None,
    quiet: bool = False,
) -> List[Dict[str, object]]:
    """CTR-cache miss rate as capacity scales 128KB -> 2MB (scaled /16)."""
    workloads = workloads if workloads is not None else ["dfs", "pr", "gc"]
    sizes_kb = sizes_kb if sizes_kb is not None else [8, 16, 32, 64, 128]
    rows: List[Dict[str, object]] = []
    for size_kb in sizes_kb:
        row: Dict[str, object] = {"ctr_cache_kb": size_kb, "paper_equiv_kb": size_kb * 16}
        for workload in workloads:
            config = default_config().with_ctr_cache_bytes(size_kb * 1024)
            result = run_design("morphctr", workload, config)
            row[f"{workload}_miss"] = result.ctr_miss_rate
        rows.append(row)
    if not quiet:
        print_experiment(
            "Figure 3: CTR cache size vs miss rate",
            rows,
            notes=["paper shape: 8x more capacity buys only ~5pp lower miss rate"],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 4 — CTR access after L1 vs after LLC
# ----------------------------------------------------------------------
def figure4(workloads: Optional[List[str]] = None, quiet: bool = False) -> List[Dict[str, object]]:
    """Early (post-L1) vs baseline (post-LLC) CTR access."""
    workloads = workloads if workloads is not None else DEFAULT_GRAPHS
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        after_llc = run_design("morphctr", workload)
        after_l1 = run_design("early", workload)
        base_rw = max(
            after_llc.traffic.data_reads + after_llc.traffic.data_writes
            + after_llc.traffic.ctr_reads + after_llc.traffic.ctr_writes, 1
        )
        early_rw = (
            after_l1.traffic.data_reads + after_l1.traffic.data_writes
            + after_l1.traffic.ctr_reads + after_l1.traffic.ctr_writes
        )
        rows.append(
            {
                "workload": workload,
                "miss_after_llc": after_llc.ctr_miss_rate,
                "miss_after_l1": after_l1.ctr_miss_rate,
                "rw_traffic_ratio": early_rw / base_rw,
                "mt_reads_ratio": after_l1.traffic.mt_reads / max(after_llc.traffic.mt_reads, 1),
            }
        )
    if not quiet:
        print_experiment(
            "Figure 4: CTR access after L1 vs after LLC",
            rows,
            notes=[
                "paper shape: post-L1 access lowers CTR miss rate ~25%,"
                " raises read/write traffic slightly (~5%), cuts MT reads ~25%",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 5 — classic cache optimizations on the CTR cache
# ----------------------------------------------------------------------
def figure5(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Prefetchers and replacement policies on the (post-L1) CTR cache."""
    config = default_config()
    variants = [
        ("baseline-lru", None, None),
        ("next_line", "next_line", None),
        ("stride", "stride", None),
        ("berti", "berti", None),
        ("rrip", None, "rrip"),
        ("ship", None, "ship"),
        ("mockingjay", None, "mockingjay"),
    ]
    rows: List[Dict[str, object]] = []
    baseline_ipc = None
    for label, prefetcher, policy in variants:
        engine = replace(
            config.engine, ctr_prefetcher_name=prefetcher, ctr_policy_name=policy
        )
        result = run_design("early", workload, _with_engine(config, engine))
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        rows.append(
            {
                "variant": label,
                "ctr_miss_rate": result.ctr_miss_rate,
                "ipc_vs_lru": result.ipc / baseline_ipc,
                "dram_requests": result.traffic.total,
            }
        )
    if not quiet:
        print_experiment(
            f"Figure 5: classic CTR-cache optimizations ({workload})",
            rows,
            notes=[
                "paper shape: neither prefetching nor smart replacement helps;"
                " prefetch accuracy ~1-5%, IPC flat or lower than LRU",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 8 — online-learning convergence (BFS vs MLP)
# ----------------------------------------------------------------------
def figure8(
    workloads: Optional[List[str]] = None,
    snapshots: int = 5,
    quiet: bool = False,
) -> List[Dict[str, object]]:
    """Prediction correctness + CTR miss rate as accesses accumulate."""
    workloads = workloads if workloads is not None else ["bfs", "mlp"]
    config = default_config()
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        trace = get_trace(workload)
        interval = max(1, len(trace) // snapshots)
        design = build_design("cosmos", config)
        simulator = Simulator(design, config, workload)
        series: List[Dict[str, object]] = []

        def snap(done: int, sim: Simulator, workload=workload, series=series) -> None:
            snapshot = sim.result()
            series.append(
                {
                    "workload": workload,
                    "accesses": done,
                    "prediction_correctness": snapshot.extra.get("prediction_accuracy", 0.0),
                    "ctr_miss_rate": snapshot.ctr_miss_rate,
                }
            )

        simulator.run(trace, progress_hook=snap, progress_interval=interval)
        snap(simulator.accesses, simulator)
        rows.extend(series)
    if not quiet:
        from .charts import sparkline

        print_experiment(
            "Figure 8: RL convergence on BFS (graph) vs MLP (non-graph)",
            rows,
            notes=[
                "paper shape: BFS converges quickly (~83% correct); MLP starts"
                " lower but keeps improving via online learning",
            ],
        )
        for workload in workloads:
            series = [
                row["prediction_correctness"] for row in rows if row["workload"] == workload
            ]
            print(f"  correctness({workload}): {sparkline(series)}")
    return rows


# ----------------------------------------------------------------------
# Figure 9 — CET size exploration
# ----------------------------------------------------------------------
def figure9(
    workload: str = "dfs",
    cet_sizes: Optional[List[int]] = None,
    quiet: bool = False,
) -> List[Dict[str, object]]:
    """CET entries vs %good-locality tags and LCR-CTR miss rate."""
    config = default_config()
    cet_sizes = cet_sizes if cet_sizes is not None else [128, 256, 512, 1024, 2048, 4096]
    rows: List[Dict[str, object]] = []
    for entries in cet_sizes:
        cosmos = replace(config.cosmos, cet_entries=entries)
        result = run_design("cosmos", workload, _with_cosmos(config, cosmos))
        rows.append(
            {
                "cet_entries": entries,
                "paper_equiv_entries": entries * 16,
                "good_locality_pct": 100 * result.extra.get("good_locality_fraction", 0.0),
                "lcr_miss_rate": result.ctr_miss_rate,
            }
        )
    if not quiet:
        print_experiment(
            f"Figure 9: CET size exploration ({workload})",
            rows,
            notes=[
                "paper shape: larger CETs tag more accesses good-locality; the"
                " LCR miss rate falls, bottoms out, then rises when too much"
                " is tagged good",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 10 — headline performance
# ----------------------------------------------------------------------
def figure10(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """MorphCtr / COSMOS-DP / COSMOS-CP / COSMOS normalised to NP."""
    workloads = workloads if workloads is not None else DEFAULT_IRREGULAR
    designs = ["np", "morphctr", "cosmos-dp", "cosmos-cp", "cosmos"]
    # One job per (design, workload) cell: the whole figure fans out
    # through repro.exec and lands in the result cache.
    matrix = run_design_matrix(designs, workloads)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        np_result = matrix[workload]["np"]
        row: Dict[str, object] = {"workload": workload}
        for design in designs[1:]:
            row[design] = matrix[workload][design].normalized_to(np_result)
        rows.append(row)
    mean_row: Dict[str, object] = {"workload": "geomean"}
    for design in designs[1:]:
        mean_row[design] = geometric_mean([float(row[design]) for row in rows])
    rows.append(mean_row)
    if not quiet:
        from .charts import bar_chart

        print_experiment(
            "Figure 10: performance normalised to non-protected memory",
            rows,
            notes=[
                "paper shape: COSMOS-DP ~+15%, COSMOS-CP ~+5%, full COSMOS"
                " ~+25% over MorphCtr; ~33% residual overhead vs NP",
            ],
        )
        geomean = rows[-1]
        print()
        print(bar_chart(
            {design: float(geomean[design]) for design in designs[1:]},
            max_value=1.0,
        ))
    return rows


# ----------------------------------------------------------------------
# Figure 11 — CTR cache miss rates per design
# ----------------------------------------------------------------------
def figure11(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """CTR-cache miss rate across MorphCtr and the COSMOS variants."""
    workloads = workloads if workloads is not None else DEFAULT_GRAPHS
    designs = ["morphctr", "cosmos-dp", "cosmos-cp", "cosmos"]
    matrix = run_matrix(designs, workloads)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        row: Dict[str, object] = {"workload": workload}
        for design in designs:
            row[design] = matrix[workload][design].ctr_miss_rate
        rows.append(row)
    if not quiet:
        print_experiment(
            "Figure 11: CTR cache miss rate by design",
            rows,
            notes=[
                "paper shape: early access (DP, full) lowers the miss rate;"
                " full COSMOS sits below COSMOS-DP; CP-only changes little",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 12 — data-location prediction quality
# ----------------------------------------------------------------------
def figure12(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """Prediction outcome distribution + accuracy for the data predictor."""
    workloads = workloads if workloads is not None else DEFAULT_GRAPHS
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        result = run_design("cosmos", workload)
        rows.append(
            {
                "workload": workload,
                "correct_on_chip": result.extra.get("pred_correct_on_chip", 0.0),
                "correct_off_chip": result.extra.get("pred_correct_off_chip", 0.0),
                "wrong_on_chip": result.extra.get("pred_wrong_on_chip", 0.0),
                "wrong_off_chip": result.extra.get("pred_wrong_off_chip", 0.0),
                "accuracy": result.extra.get("prediction_accuracy", 0.0),
            }
        )
    if not quiet:
        print_experiment(
            "Figure 12: data-location prediction distribution and accuracy",
            rows,
            notes=["paper shape: ~85% average accuracy, dominated by correct off-chip"],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 13 — %CTR accesses classified good locality
# ----------------------------------------------------------------------
def figure13(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """Good-locality fraction: full COSMOS vs COSMOS-CP."""
    workloads = workloads if workloads is not None else DEFAULT_GRAPHS
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        full = run_design("cosmos", workload)
        cp = run_design("cosmos-cp", workload)
        rows.append(
            {
                "workload": workload,
                "cosmos_good_pct": 100 * full.extra.get("good_locality_fraction", 0.0),
                "cosmos_cp_good_pct": 100 * cp.extra.get("good_locality_fraction", 0.0),
            }
        )
    if not quiet:
        print_experiment(
            "Figure 13: CTR accesses classified good locality",
            rows,
            notes=[
                "paper shape: ~5% good at the post-LLC point (COSMOS-CP) vs"
                " ~20% at the post-L1 point (full COSMOS)",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 14 — SMAT
# ----------------------------------------------------------------------
def figure14(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """Secure Memory Access Time across the designs (Eq. 1-2)."""
    workloads = workloads if workloads is not None else DEFAULT_GRAPHS
    config = default_config()
    designs = ["morphctr", "cosmos-cp", "cosmos-dp", "cosmos"]
    matrix = run_matrix(designs, workloads)
    dram_latency = 96.0  # row-miss latency + queueing of the DDR4 model
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        row: Dict[str, object] = {"workload": workload}
        for design in designs:
            result = matrix[workload][design]
            row[design] = result.smat(
                l1_latency=config.hierarchy.l1.latency,
                l2_latency=config.hierarchy.l2.latency,
                llc_latency=config.hierarchy.llc.latency,
                dram_latency=dram_latency,
                ctr_hit_latency=config.engine.ctr_lookup_latency
                + config.engine.ctr_combine_latency,
                ctr_dram_latency=dram_latency,
                ctr_verify_latency=config.engine.aes_latency,
            )
        rows.append(row)
    if not quiet:
        print_experiment(
            "Figure 14: Secure Memory Access Time (cycles)",
            rows,
            notes=["paper shape: COSMOS achieves the lowest SMAT of all designs"],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 15 — multi-core scaling
# ----------------------------------------------------------------------
def figure15(
    workloads: Optional[List[str]] = None,
    core_counts: Optional[List[int]] = None,
    quiet: bool = False,
) -> List[Dict[str, object]]:
    """COSMOS vs MorphCtr at 4 and 8 cores (LLC scaled 2MB/core)."""
    workloads = workloads if workloads is not None else FIG15_GRAPHS
    core_counts = core_counts if core_counts is not None else [4, 8]
    rows: List[Dict[str, object]] = []
    for cores in core_counts:
        config = default_config(num_cores=cores)
        if cores != 4:
            hierarchy = HierarchyConfig(
                num_cores=cores,
                l1=config.hierarchy.l1,
                l2=config.hierarchy.l2,
                llc=config.hierarchy.llc,
            ).scaled_llc_for_cores()
            config = SimulationConfig(
                hierarchy=hierarchy,
                memory_bytes=config.memory_bytes,
                counter_scheme=config.counter_scheme,
                engine=config.engine,
                cosmos=config.cosmos,
                cpu=config.cpu,
            )
        # All (design, workload) cells for this core count fan out as one
        # job matrix through repro.exec.
        matrix = run_design_matrix(
            ["np", "morphctr", "cosmos"], workloads, config=config, num_cores=cores
        )
        gains: List[float] = []
        for workload in workloads:
            np_result = matrix[workload]["np"]
            base = matrix[workload]["morphctr"]
            cosmos = matrix[workload]["cosmos"]
            gains.append(cosmos.speedup_over(base))
            rows.append(
                {
                    "cores": cores,
                    "workload": workload,
                    "morphctr_norm": base.normalized_to(np_result),
                    "cosmos_norm": cosmos.normalized_to(np_result),
                    "cosmos_gain": cosmos.speedup_over(base),
                }
            )
        rows.append(
            {
                "cores": cores,
                "workload": "geomean",
                "morphctr_norm": "",
                "cosmos_norm": "",
                "cosmos_gain": geometric_mean(gains),
            }
        )
    if not quiet:
        print_experiment(
            "Figure 15: multi-core scaling (4 vs 8 cores)",
            rows,
            notes=["paper shape: ~25% gain at 4 cores, ~26% at 8 cores"],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 16 — COSMOS vs EMCC (and RMCC)
# ----------------------------------------------------------------------
def figure16(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """COSMOS vs the idealised EMCC implementation, normalised to NP."""
    workloads = workloads if workloads is not None else DEFAULT_GRAPHS
    designs = ["np", "morphctr", "emcc", "rmcc", "cosmos"]
    matrix = run_matrix(designs, workloads)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        np_result = matrix[workload]["np"]
        rows.append(
            {
                "workload": workload,
                "morphctr": matrix[workload]["morphctr"].normalized_to(np_result),
                "emcc": matrix[workload]["emcc"].normalized_to(np_result),
                "rmcc": matrix[workload]["rmcc"].normalized_to(np_result),
                "cosmos": matrix[workload]["cosmos"].normalized_to(np_result),
            }
        )
    mean_row = {"workload": "geomean"}
    for design in ("morphctr", "emcc", "rmcc", "cosmos"):
        mean_row[design] = geometric_mean([float(row[design]) for row in rows])
    rows.append(mean_row)
    if not quiet:
        print_experiment(
            "Figure 16: COSMOS vs EMCC (normalised to NP)",
            rows,
            notes=[
                "paper shape: EMCC ~+12% over MorphCtr; COSMOS ~+10% over EMCC",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Figure 17 — regular (ML) workloads
# ----------------------------------------------------------------------
def figure17(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """COSMOS vs MorphCtr on regular-pattern ML inference workloads."""
    workloads = workloads if workloads is not None else list(ML_WORKLOADS)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        np_result = run_design("np", workload)
        base = run_design("morphctr", workload)
        cosmos = run_design("cosmos", workload)
        reenc = base.traffic.reencryption_requests
        rows.append(
            {
                "workload": workload,
                "morphctr_norm": base.normalized_to(np_result),
                "cosmos_norm": cosmos.normalized_to(np_result),
                "cosmos_gain": cosmos.speedup_over(base),
                "reenc_frac_of_traffic": reenc / max(base.traffic.total, 1),
            }
        )
    if not quiet:
        print_experiment(
            "Figure 17: regular ML workloads",
            rows,
            notes=[
                "paper shape: only ~3% gain (no regression); re-encryption"
                " becomes the dominant secure-memory cost",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Table 1 — hyperparameter/reward tuning
# ----------------------------------------------------------------------
def table1(
    workload: str = "dfs",
    n_combinations: int = 20,
    footprint_len: int = 60_000,
    quiet: bool = False,
) -> List[Dict[str, object]]:
    """Reproduce the two-stage tuning flow on a DFS footprint."""
    config = default_config()
    trace = get_trace(workload)
    footprint = extract_footprint(
        trace.truncated(footprint_len), hierarchy_config=config.hierarchy
    )
    stage1 = tune_hyperparameters(footprint, n_combinations=n_combinations)
    best_hyper = stage1.best.config.hyper
    stage2 = tune_rewards(footprint, best_hyper, n_combinations=n_combinations)
    best = stage2.best
    rows = [
        {
            "stage": "stage1-best-hyper",
            "alpha_d": best_hyper.alpha_d,
            "gamma_d": best_hyper.gamma_d,
            "epsilon_d": best_hyper.epsilon_d,
            "alpha_c": best_hyper.alpha_c,
            "gamma_c": best_hyper.gamma_c,
            "epsilon_c": best_hyper.epsilon_c,
            "lcr_hit_rate": stage1.best.hit_rate,
        },
        {
            "stage": "paper-table1-hyper",
            "alpha_d": 0.09,
            "gamma_d": 0.88,
            "epsilon_d": 0.1,
            "alpha_c": 0.05,
            "gamma_c": 0.35,
            "epsilon_c": 0.001,
            "lcr_hit_rate": "",
        },
        {
            "stage": "stage2-best-rewards",
            "alpha_d": round(best.config.data_rewards.r_hi, 1),
            "gamma_d": round(best.config.data_rewards.r_mo, 1),
            "epsilon_d": round(best.config.data_rewards.r_ho, 1),
            "alpha_c": round(best.config.data_rewards.r_mi, 1),
            "gamma_c": round(best.config.ctr_rewards.r_hg, 1),
            "epsilon_c": round(best.config.ctr_rewards.r_mb, 1),
            "lcr_hit_rate": best.hit_rate,
        },
    ]
    if not quiet:
        print_experiment(
            "Table 1: hyperparameter and reward tuning (random search)",
            rows,
            notes=[
                f"{n_combinations} combinations per stage (paper used 1000);"
                " stage-2 columns show r_hi/r_mo/r_ho/r_mi/r_hg/r_mb",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Table 2 — storage overhead
# ----------------------------------------------------------------------
def table2(quiet: bool = False) -> List[Dict[str, object]]:
    """COSMOS storage/area/power overhead (computed from first principles)."""
    report = compute_overhead()
    rows = report.as_rows()
    if not quiet:
        print_experiment(
            "Table 2: COSMOS storage overhead",
            rows,
            notes=[
                f"total = {report.total_kilobytes:.1f}KB,"
                f" {100 * report.fraction_of_llc():.2f}% of an 8MB LLC"
                " (paper reports 147KB / 1.84%)",
            ],
        )
    return rows


# ----------------------------------------------------------------------
# Table 4 — design variations (exercised as a smoke matrix)
# ----------------------------------------------------------------------
def table4(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Run every design variation once and summarise."""
    designs = ["np", "morphctr", "early", "emcc", "rmcc", "cosmos-dp", "cosmos-cp", "cosmos"]
    # The whole design sweep is one job matrix (8 independent cells).
    matrix = run_design_matrix(designs, [workload])
    rows: List[Dict[str, object]] = []
    for design in designs:
        result = matrix[workload][design]
        rows.append(
            {
                "design": design,
                "ipc": result.ipc,
                "ctr_miss_rate": result.ctr_miss_rate,
                "dram_requests": result.traffic.total,
            }
        )
    if not quiet:
        print_experiment(f"Table 4: design variations on {workload}", rows)
    return rows


# ----------------------------------------------------------------------
# Ablations beyond the paper's figures
# ----------------------------------------------------------------------
def ablation_counter_schemes(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Monolithic vs split vs MorphCtr counters under the baseline design."""
    rows: List[Dict[str, object]] = []
    for scheme in ("monolithic", "split", "morphctr"):
        config = default_config()
        config = SimulationConfig(
            hierarchy=config.hierarchy,
            memory_bytes=config.memory_bytes,
            counter_scheme=scheme,
            engine=config.engine,
            cosmos=config.cosmos,
            cpu=config.cpu,
        )
        result = run_design("morphctr", workload, config)
        rows.append(
            {
                "scheme": scheme,
                "ctr_miss_rate": result.ctr_miss_rate,
                "ipc": result.ipc,
                "ctr_reads": result.traffic.ctr_reads,
                "reenc_requests": result.traffic.reencryption_requests,
            }
        )
    if not quiet:
        print_experiment(
            f"Ablation: counter organisation ({workload})",
            rows,
            notes=["denser counters (MorphCtr 1:128) cache better than 1:8/1:64"],
        )
    return rows


def ablation_mt_cache(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """MT-node cache capacity vs MT read traffic."""
    rows: List[Dict[str, object]] = []
    for size_kb in (0, 2, 8, 32, 128):
        config = default_config()
        engine = replace(config.engine, mt_cache_bytes=size_kb * 1024)
        result = run_design("morphctr", workload, _with_engine(config, engine))
        rows.append(
            {
                "mt_cache_kb": size_kb,
                "mt_reads": result.traffic.mt_reads,
                "ipc": result.ipc,
            }
        )
    if not quiet:
        print_experiment(
            f"Ablation: MT-node cache size ({workload})",
            rows,
            notes=["a small verified-node cache collapses the leaf-to-root walk"],
        )
    return rows


def ablation_hybrid(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Extension: COSMOS + universal early probing (``cosmos-early``).

    The paper hints COSMOS composes with other designs; this measures the
    natural hybrid that also probes the CTR cache on on-chip-predicted L1
    misses (like EMCC), trading extra CTR/MT traffic for warmer counters.
    """
    rows: List[Dict[str, object]] = []
    # Baseline plus the hybrid sweep submitted as one job matrix.
    matrix = run_design_matrix(
        ["np", "morphctr", "emcc", "cosmos", "cosmos-early"], [workload]
    )
    np_result = matrix[workload]["np"]
    for design in ("morphctr", "emcc", "cosmos", "cosmos-early"):
        result = matrix[workload][design]
        rows.append(
            {
                "design": design,
                "normalized_perf": result.normalized_to(np_result),
                "ctr_miss_rate": result.ctr_miss_rate,
                "mt_reads": result.traffic.mt_reads,
            }
        )
    if not quiet:
        print_experiment(
            f"Ablation: COSMOS + universal early probe ({workload})",
            rows,
            notes=["extension beyond the paper; see EXPERIMENTS.md"],
        )
    return rows


def ablation_lcr_policy(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Algorithm 2 interpretation study (EXPERIMENTS.md choice #3).

    Compares the literal pseudo-code (score-based bad-line selection, no
    aging) against our recency-aware reading, plus plain LRU at the same
    capacity, all on the full-COSMOS stream.
    """
    from ..core.lcr_cache import LcrReplacementPolicy
    from ..sim.simulator import build_design, Simulator

    config = default_config()
    trace = get_trace(workload)
    variants = [
        ("lru-plain", None),
        ("lcr-literal", LcrReplacementPolicy(aging=0, bad_selection="score")),
        ("lcr-score+aging", LcrReplacementPolicy(aging=1, aging_period=8, bad_selection="score")),
        ("lcr-recency+aging", LcrReplacementPolicy()),  # our default
    ]
    rows: List[Dict[str, object]] = []
    for label, policy in variants:
        design = build_design("cosmos", config)
        if policy is not None:
            # Swap the CTR cache's policy before any accesses land.
            design.engine.ctr_cache.cache.policy = policy
        else:
            from ..mem.replacement import LRUPolicy

            design.engine.ctr_cache.cache.policy = LRUPolicy()
        simulator = Simulator(design, config, workload)
        result = simulator.run(trace)
        rows.append(
            {
                "policy": label,
                "ctr_miss_rate": result.ctr_miss_rate,
                "ipc": result.ipc,
            }
        )
    if not quiet:
        print_experiment(
            f"Ablation: LCR policy interpretations ({workload})",
            rows,
            notes=[
                "the literal Algorithm 2 (permanent good tags, score-only"
                " bad selection) underperforms; see EXPERIMENTS.md #3",
            ],
        )
    return rows


def ablation_synergy(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Extension: COSMOS composed with Synergy-style MAC-in-ECC.

    The paper's footnote 1 says COSMOS "could also be applied to other
    designs, such as ... Synergy".  With the MAC riding the ECC chip,
    authentication costs no DRAM accesses; COSMOS's CTR-side gains stack
    on top.
    """
    rows: List[Dict[str, object]] = []
    np_result = run_design("np", workload)
    for design in ("morphctr", "synergy", "cosmos", "cosmos-synergy"):
        result = run_design(design, workload)
        rows.append(
            {
                "design": design,
                "normalized_perf": result.normalized_to(np_result),
                "mac_accesses": result.traffic.mac_accesses,
                "dram_requests": result.traffic.total,
            }
        )
    if not quiet:
        print_experiment(
            f"Ablation: Synergy-style MAC-in-ECC composition ({workload})",
            rows,
            notes=["extension beyond the paper (footnote 1)"],
        )
    return rows


def generality_db(
    workloads: Optional[List[str]] = None, quiet: bool = False
) -> List[Dict[str, object]]:
    """Extension: does COSMOS generalise to database kernels?

    COSMOS was tuned once on graph DFS (paper Sec. 4.5); the paper checks
    generalisation on BFS and MLP (Fig. 8).  This experiment pushes
    further: hash join, B+-tree lookups and a YCSB-like key-value mix —
    irregular workloads from a domain the tuning never saw.
    """
    from ..workloads.db import DB_WORKLOADS

    workloads = workloads if workloads is not None else list(DB_WORKLOADS)
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        np_result = run_design("np", workload)
        base = run_design("morphctr", workload)
        cosmos = run_design("cosmos", workload)
        rows.append(
            {
                "workload": workload,
                "morphctr_norm": base.normalized_to(np_result),
                "cosmos_norm": cosmos.normalized_to(np_result),
                "cosmos_gain": cosmos.speedup_over(base),
                "prediction_accuracy": cosmos.extra.get("prediction_accuracy", 0.0),
            }
        )
    if not quiet:
        print_experiment(
            "Generality: database kernels (untuned domain)",
            rows,
            notes=["extension beyond the paper; COSMOS tuned on graph DFS only"],
        )
    return rows


def ablation_cpu_model(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Sensitivity of the headline conclusion to the IPC-proxy constants.

    Our substitute for Gem5's OoO core has two free parameters: the MLP
    overlap factor and the DRAM-channel serialisation cost.  This sweep
    shows the COSMOS > MorphCtr ordering is not an artefact of one
    calibration point.
    """
    from ..sim.config import CpuModel

    rows: List[Dict[str, object]] = []
    base = default_config()
    trace = get_trace(workload)
    from ..sim.simulator import simulate as _simulate

    for mlp in (2.0, 4.0, 8.0):
        for bandwidth in (2.0, 6.0, 12.0):
            cpu = CpuModel(mlp_factor=mlp, dram_bandwidth_cycles_per_request=bandwidth)
            config = SimulationConfig(
                hierarchy=base.hierarchy,
                memory_bytes=base.memory_bytes,
                counter_scheme=base.counter_scheme,
                engine=base.engine,
                cosmos=base.cosmos,
                cpu=cpu,
            )
            morphctr = _simulate("morphctr", trace, config, workload=workload)
            cosmos = _simulate("cosmos", trace, config, workload=workload)
            rows.append(
                {
                    "mlp_factor": mlp,
                    "bandwidth_cycles": bandwidth,
                    "cosmos_gain": cosmos.speedup_over(morphctr),
                }
            )
    if not quiet:
        print_experiment(
            f"Ablation: IPC-proxy sensitivity ({workload})",
            rows,
            notes=["COSMOS's gain over MorphCtr must survive every corner"],
        )
    return rows


def ablation_paging(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Extension: physical page placement vs COSMOS's benefit.

    MorphCtr counters cover 8KB of *physical* address space, so OS page
    placement shapes the spatial CTR locality COSMOS leans on.  Randomised
    placement splits every counter granule across unrelated pages.
    """
    from ..mem.paging import (
        PAGE_SIZE,
        FirstTouchPageMapper,
        IdentityPageMapper,
        RandomizedPageMapper,
        remap_accesses,
    )
    from ..sim.simulator import simulate as _simulate

    config = default_config()
    trace = get_trace(workload)
    rows: List[Dict[str, object]] = []
    frame_space = config.memory_bytes // PAGE_SIZE
    for mapper in (
        IdentityPageMapper(),
        FirstTouchPageMapper(),
        RandomizedPageMapper(seed=3, frame_space=frame_space),
    ):
        accesses = remap_accesses(trace.accesses, mapper)
        base = _simulate("morphctr", accesses, config, workload=workload)
        cosmos = _simulate("cosmos", accesses, config, workload=workload)
        rows.append(
            {
                "page_mapping": mapper.name,
                "morphctr_ctr_miss": base.ctr_miss_rate,
                "cosmos_ctr_miss": cosmos.ctr_miss_rate,
                "cosmos_gain": cosmos.speedup_over(base),
            }
        )
    if not quiet:
        print_experiment(
            f"Ablation: physical page placement ({workload})",
            rows,
            notes=[
                "randomised placement fragments 8KB counter granules;"
                " extension beyond the paper",
            ],
        )
    return rows


def ablation_exploration(workload: str = "dfs", quiet: bool = False) -> List[Dict[str, object]]:
    """Epsilon sweep for the data-location predictor."""
    rows: List[Dict[str, object]] = []
    config = default_config()
    for epsilon in (0.0, 0.01, 0.1, 0.3, 0.6):
        hyper = replace(config.cosmos.hyper, epsilon_d=epsilon)
        cosmos = replace(config.cosmos, hyper=hyper)
        result = run_design("cosmos-dp", workload, _with_cosmos(config, cosmos))
        rows.append(
            {
                "epsilon_d": epsilon,
                "prediction_accuracy": result.extra.get("prediction_accuracy", 0.0),
                "ipc": result.ipc,
            }
        )
    if not quiet:
        print_experiment(
            f"Ablation: exploration rate ({workload})",
            rows,
            notes=["some exploration adapts to phase changes; too much hurts"],
        )
    return rows
