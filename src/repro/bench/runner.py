"""Shared machinery for the per-figure experiment harness.

Centralises the evaluation methodology so every figure/table reproduction
uses identical settings:

* the scaled paper configuration (``scaled_paper_config(16)``; see
  EXPERIMENTS.md for the scaling substitution),
* deterministic trace generation with an on-disk cache (numpy ``.npz``),
* environment knobs for quick runs::

      REPRO_TRACE_LEN     total accesses per trace (default 150000)
      REPRO_GRAPH_SCALE   graph size multiplier     (default 4.0)
      REPRO_QUICK=1       shrink traces 5x for smoke runs
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

from .. import obs
from ..sim.config import SimulationConfig, scaled_paper_config
from ..sim.results import SimulationResult
from ..sim.simulator import simulate
from ..workloads.db import DB_WORKLOADS, generate_db_trace
from ..workloads.graph_algos import GRAPH_WORKLOADS, generate_graph_trace
from ..workloads.hammer import HAMMER_WORKLOADS, generate_hammer_trace
from ..workloads.ml import ML_WORKLOADS, generate_ml_trace
from ..workloads.spec import SPEC_WORKLOADS, generate_spec_trace
from ..workloads.trace import Trace

#: Override for the cache root (tests monkeypatch this); ``None`` means
#: "resolve lazily from ``REPRO_CACHE_DIR`` / the current directory".
#: Resolved lazily so importing the module never captures a stale CWD and
#: the environment knob can change between runs in one process.
CACHE_DIR: Optional[Path] = None


def cache_dir() -> Path:
    """The cache root: ``CACHE_DIR`` override, else env, else CWD-relative.

    Generated traces live directly under this directory; the result cache
    and run manifests of :mod:`repro.exec` use the ``results/`` and
    ``manifests/`` subdirectories.  Safe to delete at any time.
    """
    if CACHE_DIR is not None:
        return Path(CACHE_DIR)
    return Path(os.environ.get("REPRO_CACHE_DIR", Path.cwd() / ".trace_cache"))


def trace_length() -> int:
    """Trace length honouring the environment knobs."""
    length = int(os.environ.get("REPRO_TRACE_LEN", "150000"))
    if os.environ.get("REPRO_QUICK"):
        length //= 5
    return length


def graph_scale() -> float:
    """Graph scale honouring the environment knob."""
    return float(os.environ.get("REPRO_GRAPH_SCALE", "4.0"))


def default_config(num_cores: int = 4) -> SimulationConfig:
    """The harness's standard configuration (scaled Table 3)."""
    return scaled_paper_config(scale=16, num_cores=num_cores)


# ----------------------------------------------------------------------
# Trace generation with caching
# ----------------------------------------------------------------------
_MEMORY_CACHE: Dict[str, Trace] = {}


def get_trace(
    workload: str,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
) -> Trace:
    """Deterministic trace for ``workload``, cached in memory and on disk.

    ``workload`` may be any graph kernel, SPEC benchmark, ML model or
    ``mlp``.  ``seed`` overrides the generator's default seed — used by
    the multi-seed statistics helpers.  ``scale`` overrides the
    environment-derived graph scale — used by ``repro.exec`` workers so a
    job resolved in the parent process replays identically anywhere.
    """
    from ..workloads.serialization import load_trace, save_trace

    if workload.startswith("trace:"):
        # External request trace (Ramulator / gem5 export): the file is
        # already a materialised trace, so the npz generation cache is
        # skipped — only the in-memory cache applies.  ``num_cores``,
        # ``seed`` and ``scale`` do not affect a recorded stream.
        from ..workloads.ingest import load_external_trace

        source = workload[len("trace:"):]
        limit = max_accesses if max_accesses is not None else trace_length()
        key = f"{workload}-n{limit}"
        cached = _MEMORY_CACHE.get(key)
        if cached is None:
            with obs.span("trace_ingest", workload=workload, key=key):
                cached = load_external_trace(source, max_accesses=limit)
            _MEMORY_CACHE[key] = cached
        return cached

    length = max_accesses if max_accesses is not None else trace_length()
    scale = scale if scale is not None else graph_scale()
    key = f"{workload}-c{num_cores}-n{length}-g{scale}"
    if seed is not None:
        key += f"-s{seed}"
    cached = _MEMORY_CACHE.get(key)
    if cached is not None:
        return cached
    path = cache_dir() / f"{key}.npz"
    if path.exists():
        try:
            with obs.span("trace_load", workload=workload, key=key):
                trace = load_trace(path)
        except (ValueError, OSError):
            # Corrupt or truncated archive (interrupted copy, bad disk):
            # treat it as a cache miss — drop the file and regenerate.
            try:
                path.unlink()
            except OSError:
                pass
        else:
            _MEMORY_CACHE[key] = trace
            return trace
    with obs.span("trace_generate", workload=workload, key=key):
        trace = _generate(workload, num_cores, length, scale, seed)
    _MEMORY_CACHE[key] = trace
    try:
        save_trace(trace, path)
    except OSError:
        pass  # caching is best-effort; generation stays deterministic
    return trace


def _generate(
    workload: str, num_cores: int, length: int, scale: float, seed: Optional[int] = None
) -> Trace:
    seeds = {} if seed is None else {"seed": seed}
    if workload in GRAPH_WORKLOADS:
        return generate_graph_trace(
            workload, num_cores=num_cores, max_accesses=length, graph_scale=scale, **seeds
        )
    if workload in SPEC_WORKLOADS:
        return generate_spec_trace(workload, num_cores=num_cores, max_accesses=length, **seeds)
    if workload in ML_WORKLOADS or workload == "mlp":
        return generate_ml_trace(workload, num_cores=num_cores, max_accesses=length, **seeds)
    if workload in DB_WORKLOADS:
        return generate_db_trace(workload, num_cores=num_cores, max_accesses=length, **seeds)
    if workload in HAMMER_WORKLOADS:
        return generate_hammer_trace(workload, num_cores=num_cores, max_accesses=length, **seeds)
    raise ValueError(f"unknown workload {workload!r}")


# ----------------------------------------------------------------------
# Runs
# ----------------------------------------------------------------------
_RESULT_CACHE: Dict[tuple, SimulationResult] = {}


def run_design(
    design: str,
    workload: str,
    config: Optional[SimulationConfig] = None,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
) -> SimulationResult:
    """Simulate one (design, workload) pair under the standard methodology.

    Runs under the *default* configuration are memoised for the lifetime of
    the process — several figures (10, 11, 12, 13) report different metrics
    of the same runs, exactly as the paper does.
    """
    cache_key = None
    if config is None:
        cache_key = (design, workload, num_cores,
                     max_accesses if max_accesses is not None else trace_length(),
                     graph_scale())
        cached = _RESULT_CACHE.get(cache_key)
        if cached is not None:
            return cached
        config = default_config(num_cores)
    trace = get_trace(workload, num_cores=num_cores, max_accesses=max_accesses)
    result = simulate(design, trace, config, workload=workload)
    if cache_key is not None:
        _RESULT_CACHE[cache_key] = result
    return result


def run_design_matrix(
    designs: List[str],
    workloads: List[str],
    config: Optional[SimulationConfig] = None,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    timeout: Optional[float] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every (design × workload) cell through :mod:`repro.exec`.

    This is the fan-out entry point the figure/table reproductions use:
    cells become independent :class:`~repro.exec.jobs.JobSpec` jobs,
    deduplicated, answered from the on-disk result cache where possible,
    and executed on a worker pool when ``jobs > 1``.

    ``jobs``/``use_cache``/``timeout`` default to the process-wide
    execution options (CLI ``--jobs``/``--no-cache`` flags, else the
    ``REPRO_JOBS``/``REPRO_NO_CACHE``/``REPRO_JOB_TIMEOUT`` environment).

    Returns results indexed as ``matrix[workload][design]``, exactly like
    :func:`run_matrix`.
    """
    from ..exec import ParallelRunner, ResultCache, get_options, make_spec

    options = get_options()
    jobs_source = "explicit" if jobs is not None else options.jobs_source
    jobs = jobs if jobs is not None else options.jobs
    use_cache = use_cache if use_cache is not None else options.use_cache
    timeout = timeout if timeout is not None else options.timeout

    # Default-configuration cells share the in-process memo with
    # run_design(): figures 10-13 intentionally re-read the same runs.
    def memo_key(design: str, workload: str) -> Optional[tuple]:
        if config is not None or max_accesses is not None:
            return None
        return (design, workload, num_cores, trace_length(), graph_scale())

    matrix: Dict[str, Dict[str, SimulationResult]] = {w: {} for w in workloads}
    cells: List[tuple] = []  # (workload, design, job_hash)
    specs = []
    # Submit design-major: concurrent workers then start on *different*
    # workloads, so each trace is generated once and cached (.npz) before
    # the remaining designs need it, instead of every worker racing to
    # generate the same trace.
    for design in designs:
        for workload in workloads:
            key = memo_key(design, workload)
            memoised = _RESULT_CACHE.get(key) if key is not None else None
            if memoised is not None:
                matrix[workload][design] = memoised
                continue
            spec = make_spec(design, workload, config=config, num_cores=num_cores,
                             max_accesses=max_accesses)
            cells.append((workload, design, spec.content_hash()))
            specs.append(spec)

    if specs:
        if options.serve:
            # Route the cells through a running experiment service
            # instead of a local pool (REPRO_SERVE / --serve).
            results = _run_via_service(options.serve, specs)
        else:
            root = cache_dir()
            runner = ParallelRunner(
                jobs=jobs,
                cache=ResultCache(root / "results") if use_cache else None,
                timeout=timeout,
                manifest_dir=root / "manifests",
                jobs_source=jobs_source,
            )
            results = runner.run(specs)
        for workload, design, job_hash in cells:
            result = results[job_hash]
            matrix[workload][design] = result
            key = memo_key(design, workload)
            if key is not None:
                _RESULT_CACHE[key] = result
    return matrix


def _run_via_service(address: str, specs) -> Dict[str, SimulationResult]:
    """Execute ``specs`` on a ``repro serve`` instance at ``address``.

    Returns results keyed by content hash, mirroring
    :meth:`~repro.exec.runner.ParallelRunner.run` so callers cannot tell
    a served run from a local one.
    """
    from ..serve.client import ServeClient
    from ..serve.protocol import parse_address

    host, port = parse_address(address)
    with ServeClient(host=host, port=port) as client:
        results, _manifest = client.submit(specs)
    return results


def run_matrix(
    designs: List[str],
    workloads: List[str],
    config: Optional[SimulationConfig] = None,
    num_cores: int = 4,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Results indexed as ``matrix[workload][design]``.

    Thin wrapper over :func:`run_design_matrix` kept for its original
    signature; inherits the process-wide parallelism/caching options.
    """
    return run_design_matrix(designs, workloads, config=config, num_cores=num_cores)
