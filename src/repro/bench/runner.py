"""Shared machinery for the per-figure experiment harness.

Centralises the evaluation methodology so every figure/table reproduction
uses identical settings:

* the scaled paper configuration (``scaled_paper_config(16)``; see
  EXPERIMENTS.md for the scaling substitution),
* deterministic trace generation with an on-disk cache (numpy ``.npz``),
* environment knobs for quick runs::

      REPRO_TRACE_LEN     total accesses per trace (default 150000)
      REPRO_GRAPH_SCALE   graph size multiplier     (default 4.0)
      REPRO_QUICK=1       shrink traces 5x for smoke runs
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

from ..sim.config import SimulationConfig, scaled_paper_config
from ..sim.results import SimulationResult
from ..sim.simulator import simulate
from ..workloads.db import DB_WORKLOADS, generate_db_trace
from ..workloads.graph_algos import GRAPH_WORKLOADS, generate_graph_trace
from ..workloads.ml import ML_WORKLOADS, generate_ml_trace
from ..workloads.spec import SPEC_WORKLOADS, generate_spec_trace
from ..workloads.trace import Trace

#: Cache directory for generated traces (safe to delete at any time).
CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", Path.cwd() / ".trace_cache"))


def trace_length() -> int:
    """Trace length honouring the environment knobs."""
    length = int(os.environ.get("REPRO_TRACE_LEN", "150000"))
    if os.environ.get("REPRO_QUICK"):
        length //= 5
    return length


def graph_scale() -> float:
    """Graph scale honouring the environment knob."""
    return float(os.environ.get("REPRO_GRAPH_SCALE", "4.0"))


def default_config(num_cores: int = 4) -> SimulationConfig:
    """The harness's standard configuration (scaled Table 3)."""
    return scaled_paper_config(scale=16, num_cores=num_cores)


# ----------------------------------------------------------------------
# Trace generation with caching
# ----------------------------------------------------------------------
_MEMORY_CACHE: Dict[str, Trace] = {}


def get_trace(
    workload: str,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
    seed: Optional[int] = None,
) -> Trace:
    """Deterministic trace for ``workload``, cached in memory and on disk.

    ``workload`` may be any graph kernel, SPEC benchmark, ML model or
    ``mlp``.  ``seed`` overrides the generator's default seed — used by
    the multi-seed statistics helpers.
    """
    from ..workloads.serialization import load_trace, save_trace

    length = max_accesses if max_accesses is not None else trace_length()
    scale = graph_scale()
    key = f"{workload}-c{num_cores}-n{length}-g{scale}"
    if seed is not None:
        key += f"-s{seed}"
    cached = _MEMORY_CACHE.get(key)
    if cached is not None:
        return cached
    path = CACHE_DIR / f"{key}.npz"
    if path.exists():
        trace = load_trace(path)
        _MEMORY_CACHE[key] = trace
        return trace
    trace = _generate(workload, num_cores, length, scale, seed)
    _MEMORY_CACHE[key] = trace
    try:
        save_trace(trace, path)
    except OSError:
        pass  # caching is best-effort; generation stays deterministic
    return trace


def _generate(
    workload: str, num_cores: int, length: int, scale: float, seed: Optional[int] = None
) -> Trace:
    seeds = {} if seed is None else {"seed": seed}
    if workload in GRAPH_WORKLOADS:
        return generate_graph_trace(
            workload, num_cores=num_cores, max_accesses=length, graph_scale=scale, **seeds
        )
    if workload in SPEC_WORKLOADS:
        return generate_spec_trace(workload, num_cores=num_cores, max_accesses=length, **seeds)
    if workload in ML_WORKLOADS or workload == "mlp":
        return generate_ml_trace(workload, num_cores=num_cores, max_accesses=length, **seeds)
    if workload in DB_WORKLOADS:
        return generate_db_trace(workload, num_cores=num_cores, max_accesses=length, **seeds)
    raise ValueError(f"unknown workload {workload!r}")


# ----------------------------------------------------------------------
# Runs
# ----------------------------------------------------------------------
_RESULT_CACHE: Dict[tuple, SimulationResult] = {}


def run_design(
    design: str,
    workload: str,
    config: Optional[SimulationConfig] = None,
    num_cores: int = 4,
    max_accesses: Optional[int] = None,
) -> SimulationResult:
    """Simulate one (design, workload) pair under the standard methodology.

    Runs under the *default* configuration are memoised for the lifetime of
    the process — several figures (10, 11, 12, 13) report different metrics
    of the same runs, exactly as the paper does.
    """
    cache_key = None
    if config is None:
        cache_key = (design, workload, num_cores,
                     max_accesses if max_accesses is not None else trace_length(),
                     graph_scale())
        cached = _RESULT_CACHE.get(cache_key)
        if cached is not None:
            return cached
        config = default_config(num_cores)
    trace = get_trace(workload, num_cores=num_cores, max_accesses=max_accesses)
    result = simulate(design, trace, config, workload=workload)
    if cache_key is not None:
        _RESULT_CACHE[cache_key] = result
    return result


def run_matrix(
    designs: List[str],
    workloads: List[str],
    config: Optional[SimulationConfig] = None,
    num_cores: int = 4,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Results indexed as ``matrix[workload][design]``."""
    matrix: Dict[str, Dict[str, SimulationResult]] = {}
    for workload in workloads:
        matrix[workload] = {}
        for design in designs:
            matrix[workload][design] = run_design(design, workload, config, num_cores)
    return matrix
