"""Tracked hot-path performance harness.

Measures end-to-end simulator throughput (accesses/second) per design on a
fixed, seeded microbenchmark trace and writes a machine-readable report —
``BENCH_hotpath.json`` at the repo root — so hot-path regressions show up
as a number in the diff rather than as a vague "it feels slower".

The measured path is the same one every experiment takes:
``Simulator.run`` over an array-native :class:`~repro.workloads.trace.Trace`
via ``design.process_fast``.  The workload is a Zipf-popularity trace
(``zipf_trace``) under the harness's standard scaled paper configuration,
so cache/CTR behaviour is representative of the figure reproductions.

Usage::

    python -m repro.bench.perf                    # measure, write report
    python -m repro.bench.perf --designs cosmos   # subset of designs
    python -m repro.bench.perf --profile cosmos   # cProfile top-N instead
    python -m repro.bench.perf --obs-check        # obs on/off overhead ratio
    python -m repro.bench.perf --serve            # serve fast-path microbench

or via the pytest-benchmark wrapper ``benchmarks/bench_hotpath.py``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import platform
import pstats
import random
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .. import obs
from ..mem.dram import DramModel
from ..sim.config import SimulationConfig
from ..sim.simulator import Simulator, build_design
from ..workloads.micro import zipf_trace
from ..workloads.trace import Trace
from .runner import default_config

#: Report schema identifier; bump on incompatible payload changes.
#: v2: per-path entries — keys are ``design`` (arrays path) or
#: ``design@path``, and every entry carries a ``path`` key.
SCHEMA = "repro.bench.perf/v2"

#: Designs tracked by default: the unprotected bound, the secure baseline
#: and the full COSMOS design (slowest hot path — RL + predictor on top).
DEFAULT_DESIGNS = ("np", "morphctr", "cosmos")

#: Fixed trace parameters — the report is only comparable run-to-run
#: because these never drift silently.
TRACE_N = 100_000
TRACE_SEED = 42
TRACE_WRITE_FRACTION = 0.3

#: Default report location: the repository root (two levels above src/).
DEFAULT_OUTPUT = "BENCH_hotpath.json"

#: Requests in the DRAM-only microbenchmark (the bank-state model is the
#: innermost hot-path call, so it gets its own tracked number).
DRAM_BENCH_N = 200_000

#: Single-spec submits timed against a warm cache in the serve microbench.
SERVE_BENCH_REQUESTS = 300


def hotpath_trace(
    n: int = TRACE_N,
    seed: int = TRACE_SEED,
    write_fraction: float = TRACE_WRITE_FRACTION,
) -> Trace:
    """The harness's fixed seeded workload (Zipf popularity, mixed R/W)."""
    return zipf_trace(n=n, seed=seed, write_fraction=write_fraction)


def measure_design(
    design_name: str,
    trace: Trace,
    config: Optional[SimulationConfig] = None,
    repeats: int = 3,
    path: str = "arrays",
) -> Dict[str, object]:
    """Time ``design_name`` over ``trace``; returns one report entry.

    Each repeat builds a fresh design (designs are stateful) and runs the
    whole trace; the *best* wall-clock time is reported, which is the
    standard way to suppress scheduler noise in throughput benchmarks.
    Key simulation metrics ride along so a perf change that accidentally
    shifts behaviour is visible in the same diff — and because every
    dispatch ``path`` is metric-identical by contract, those riders also
    catch a batched-kernel divergence the moment it appears in a report.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config = config if config is not None else default_config()
    arrays = trace.arrays()  # materialise outside the timed region
    runs: List[float] = []
    result = None
    # Observability is force-disabled for the timed region so the tracked
    # baseline never silently includes instrumentation cost; the obs-check
    # mode below measures the enabled path explicitly.
    with obs.overridden(False):
        for _ in range(repeats):
            design = build_design(design_name, config)
            simulator = Simulator(design, config, workload=trace.name)
            started = time.perf_counter()
            result = simulator.run(arrays, path=path)
            runs.append(time.perf_counter() - started)
    best = min(runs)
    assert result is not None
    return {
        "accesses": result.accesses,
        "best_seconds": best,
        "runs_seconds": runs,
        "accesses_per_sec": result.accesses / best if best > 0 else 0.0,
        "cycles": result.cycles,
        "total_latency": result.total_latency,
        "ctr_miss_rate": result.ctr_miss_rate,
        "path": path,
    }


def measure_dram(
    n: int = DRAM_BENCH_N,
    seed: int = TRACE_SEED,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time bare ``DramModel.request`` over a seeded mixed stream.

    Every protected-memory access fans out into several DRAM requests
    (data, CTR, MT nodes, MAC), so :meth:`DramModel.request` is the
    innermost hot-path call; tracking it in isolation separates "the bank
    state machine got slower" from "a design got slower".  The stream
    mixes short sequential runs (row hits) with random jumps (row misses)
    and the standard write fraction, advancing ``now`` in program order
    like the designs do.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    rng = random.Random(seed)
    blocks: List[int] = []
    writes: List[bool] = []
    block = 0
    while len(blocks) < n:
        block = rng.randrange(1 << 24)
        for offset in range(rng.randrange(1, 8)):
            blocks.append(block + offset)
            writes.append(rng.random() < TRACE_WRITE_FRACTION)
    del blocks[n:], writes[n:]
    best = float("inf")
    model = DramModel()
    for _ in range(repeats):
        model = DramModel()
        request = model.request
        now = 0
        started = time.perf_counter()
        for address, is_write in zip(blocks, writes):
            now += 1 + request(address, is_write, now)
        best = min(best, time.perf_counter() - started)
    stats = model.stats
    return {
        "requests": n,
        "best_seconds": best,
        "requests_per_sec": n / best if best > 0 else 0.0,
        "row_hit_rate": stats.row_hit_rate,
        "avg_read_latency": model.average_read_latency(),
        "avg_write_latency": model.average_write_latency(),
    }


def measure_serve(
    requests: int = SERVE_BENCH_REQUESTS,
    warm_specs: int = 8,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the experiment service's cache-hit fast path, requests/second.

    Boots a real ``repro.serve`` server in-process (thread executor, real
    TCP sockets) over a throwaway result cache, warms it with
    ``warm_specs`` stub jobs, then times single-spec submits answered
    entirely from the cache — wire protocol, dedupe bookkeeping and cache
    lookup included, worker pool excluded.  ``jobs_executed`` in the entry
    must equal ``warm_specs``: more would mean the timed phase leaked onto
    a worker and the number is not the fast path.
    """
    import shutil
    import tempfile

    from ..exec.cache import ResultCache
    from ..exec.jobs import JobSpec
    from ..serve.client import ServeClient
    from ..serve.server import ExperimentServer, ServerThread
    from ..sim.config import small_test_config

    if repeats < 1 or requests < 1:
        raise ValueError("repeats and requests must be >= 1")
    config = small_test_config()
    trace = hotpath_trace(n=2000)
    with obs.overridden(False):
        simulator = Simulator(build_design("np", config), config,
                              workload=trace.name)
        payload_result = simulator.run(trace.arrays())
    specs = [JobSpec(design="np", workload="serve-bench", config=config,
                     num_cores=1, trace_length=2000, graph_scale=1.0,
                     seed=seed)
             for seed in range(warm_specs)]
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
    best = float("inf")
    try:
        server = ExperimentServer(
            cache=ResultCache(tmp / "results"), jobs=2, executor="thread",
            fn=lambda spec: payload_result)
        with ServerThread(server):
            with ServeClient(port=server.port, timeout=60) as client:
                client.submit(specs)  # cold pass: run the stubs, fill the cache
                for _ in range(repeats):
                    started = time.perf_counter()
                    for index in range(requests):
                        client.submit([specs[index % warm_specs]])
                    best = min(best, time.perf_counter() - started)
        executed = server.registry.counter("serve.jobs_executed").value
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "requests": requests,
        "warm_specs": warm_specs,
        "best_seconds": best,
        "requests_per_sec": requests / best if best > 0 else 0.0,
        "jobs_executed": int(executed),
    }


def run_benchmark(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    n: int = TRACE_N,
    seed: int = TRACE_SEED,
    repeats: int = 3,
    config: Optional[SimulationConfig] = None,
    serve: bool = True,
    paths: Sequence[str] = ("arrays",),
) -> Dict[str, object]:
    """Measure every design (per dispatch path) and assemble the payload.

    The arrays path keeps the bare design name as its entry key so
    reports stay comparable across the schema bump; any other path gets a
    ``design@path`` key (e.g. ``cosmos@batched``).
    """
    trace = hotpath_trace(n=n, seed=seed)
    results: Dict[str, object] = {}
    for name in designs:
        for path in paths:
            key = name if path == "arrays" else f"{name}@{path}"
            results[key] = measure_design(
                name, trace, config=config, repeats=repeats, path=path
            )
    payload: Dict[str, object] = {
        "schema": SCHEMA,
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "trace": {
            "kind": "zipf",
            "n": n,
            "seed": seed,
            "write_fraction": TRACE_WRITE_FRACTION,
        },
        "repeats": repeats,
        "results": results,
        "dram_microbench": measure_dram(seed=seed, repeats=repeats),
    }
    if serve:
        payload["serve_microbench"] = measure_serve(repeats=repeats)
    return payload


def write_report(payload: Dict[str, object], path: Path) -> None:
    """Write the report as stable, diff-friendly JSON."""
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def format_report(payload: Dict[str, object]) -> str:
    """Human-readable one-line-per-design summary of a report payload."""
    lines = []
    for name, entry in payload["results"].items():  # type: ignore[union-attr]
        lines.append(
            f"{name:>10}: {entry['accesses_per_sec']:>12,.0f} accesses/sec"
            f"  (best of {len(entry['runs_seconds'])}:"
            f" {entry['best_seconds']:.3f}s for {entry['accesses']:,} accesses)"
        )
    dram = payload.get("dram_microbench")
    if dram:
        lines.append(
            f"{'dram':>10}: {dram['requests_per_sec']:>12,.0f} requests/sec"
            f"  (row hit {dram['row_hit_rate']:.2f},"
            f" read {dram['avg_read_latency']:.1f}cyc,"
            f" write {dram['avg_write_latency']:.1f}cyc)"
        )
    serve = payload.get("serve_microbench")
    if serve:
        lines.append(
            f"{'serve':>10}: {serve['requests_per_sec']:>12,.0f} requests/sec"
            f"  (cache-hit fast path, {serve['requests']} submits over"
            f" {serve['warm_specs']} warm specs)"
        )
    return "\n".join(lines)


def obs_overhead_check(
    design_name: str = "cosmos",
    n: int = TRACE_N,
    seed: int = TRACE_SEED,
    repeats: int = 3,
    config: Optional[SimulationConfig] = None,
) -> Dict[str, float]:
    """Measure throughput with observability off vs. on.

    Returns ``{"off": acc/s, "on": acc/s, "on_off_ratio": on/off}`` — the
    "zero-overhead-when-off" budget is enforced against the *off* number
    (vs. the committed baseline), while the ratio quantifies what turning
    sampling on costs (expected: a few percent at the default window).
    """
    config = config if config is not None else default_config()
    trace = hotpath_trace(n=n, seed=seed)
    arrays = trace.arrays()
    timings: Dict[str, float] = {}
    for label, switch in (("off", False), ("on", True)):
        best = float("inf")
        with obs.overridden(switch):
            for _ in range(repeats):
                design = build_design(design_name, config)
                simulator = Simulator(design, config, workload=trace.name)
                started = time.perf_counter()
                simulator.run(arrays)
                best = min(best, time.perf_counter() - started)
        timings[label] = n / best if best > 0 else 0.0
    timings["on_off_ratio"] = (
        timings["on"] / timings["off"] if timings["off"] else 0.0
    )
    return timings


def profile_design(
    design_name: str,
    n: int = TRACE_N,
    seed: int = TRACE_SEED,
    top: int = 25,
    config: Optional[SimulationConfig] = None,
) -> str:
    """cProfile one design over the fixed trace; returns the top-N table."""
    config = config if config is not None else default_config()
    arrays = hotpath_trace(n=n, seed=seed).arrays()
    design = build_design(design_name, config)
    simulator = Simulator(design, config)
    profiler = cProfile.Profile()
    profiler.enable()
    simulator.run(arrays)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI entry point (``python -m repro.bench.perf``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--designs", nargs="+", default=list(DEFAULT_DESIGNS),
        help="designs to measure (default: %(default)s)",
    )
    parser.add_argument("--n", type=int, default=TRACE_N, help="trace length")
    parser.add_argument("--seed", type=int, default=TRACE_SEED, help="trace seed")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per design; best is reported (default: %(default)s)",
    )
    parser.add_argument(
        "--path", default="arrays", metavar="PATH[,PATH...]",
        help="comma-separated dispatch paths to measure per design "
             "(arrays, batched, objects; default: %(default)s)",
    )
    parser.add_argument(
        "--output", type=Path, default=Path(DEFAULT_OUTPUT),
        help="report path (default: %(default)s in the current directory)",
    )
    parser.add_argument(
        "--profile", metavar="DESIGN", default=None,
        help="cProfile DESIGN instead of benchmarking; prints the top-N table",
    )
    parser.add_argument(
        "--top", type=int, default=25,
        help="rows of the cProfile table with --profile (default: %(default)s)",
    )
    parser.add_argument(
        "--obs-check", metavar="DESIGN", nargs="?", const="cosmos", default=None,
        help="measure observability overhead for DESIGN (default cosmos): "
             "throughput with REPRO_OBS off vs on",
    )
    parser.add_argument(
        "--dram-only", action="store_true",
        help="run only the DRAM bank-state microbenchmark and print it",
    )
    parser.add_argument(
        "--dram-n", type=int, default=DRAM_BENCH_N,
        help="requests in the DRAM microbenchmark (default: %(default)s)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="run only the experiment-service cache-hit microbenchmark",
    )
    parser.add_argument(
        "--serve-requests", type=int, default=SERVE_BENCH_REQUESTS,
        help="submits in the serve microbenchmark (default: %(default)s)",
    )
    parser.add_argument(
        "--history", type=Path, default=None, metavar="FILE",
        help="benchmark history file to append to "
             "(default: BENCH_history.jsonl next to the report)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip the benchmark-history append",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.serve:
        entry = measure_serve(requests=args.serve_requests, repeats=args.repeats)
        print(
            f"serve: {entry['requests_per_sec']:,.0f} requests/sec"
            f" (cache-hit fast path, best of {args.repeats},"
            f" {entry['requests']} submits over {entry['warm_specs']}"
            f" warm specs, {entry['jobs_executed']} executed)"
        )
        return 0
    if args.dram_only:
        entry = measure_dram(n=args.dram_n, seed=args.seed, repeats=args.repeats)
        print(
            f"dram: {entry['requests_per_sec']:,.0f} requests/sec"
            f" (row hit {entry['row_hit_rate']:.2f},"
            f" read {entry['avg_read_latency']:.1f}cyc,"
            f" write {entry['avg_write_latency']:.1f}cyc)"
        )
        return 0
    if args.profile is not None:
        print(profile_design(args.profile, n=args.n, seed=args.seed, top=args.top))
        return 0
    if args.obs_check is not None:
        timings = obs_overhead_check(
            args.obs_check, n=args.n, seed=args.seed, repeats=args.repeats
        )
        print(
            f"{args.obs_check}: obs off {timings['off']:,.0f} acc/s"
            f" · obs on {timings['on']:,.0f} acc/s"
            f" · ratio {timings['on_off_ratio']:.3f}"
        )
        return 0
    paths = tuple(p.strip() for p in args.path.split(",") if p.strip())
    for p in paths:
        if p not in ("arrays", "batched", "objects", "auto"):
            parser.error(f"unknown dispatch path {p!r}")
    payload = run_benchmark(
        designs=args.designs, n=args.n, seed=args.seed, repeats=args.repeats,
        paths=paths or ("arrays",),
    )
    write_report(payload, args.output)
    print(format_report(payload))
    print(f"report written to {args.output}")
    if not args.no_history:
        from .history import HISTORY_FILENAME, append_history

        history_path = (args.history if args.history is not None
                        else args.output.parent / HISTORY_FILENAME)
        record = append_history(payload, history_path)
        if record is not None:
            print(f"history appended to {history_path}"
                  f" (sha={record.get('sha') or '?'})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
