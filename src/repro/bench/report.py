"""Plain-text reporting helpers for the experiment harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, using these fixed-width table utilities.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (paper-style cross-workload avg)."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def format_table(rows: List[Dict[str, object]], columns: Sequence[str] = None) -> str:
    """Render a list of dicts as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        rendered.append([_format_cell(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def print_experiment(title: str, rows: List[Dict[str, object]], columns: Sequence[str] = None,
                     notes: Iterable[str] = ()) -> None:
    """Print one experiment's reproduction block."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}")
    print(format_table(rows, columns))
    for note in notes:
        print(f"  note: {note}")
