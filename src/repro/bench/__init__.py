"""Experiment harness: per-figure reproductions, shared runner, reporting."""

from . import experiments
from .charts import bar_chart, series_chart, sparkline
from .export import export_experiment, read_json, write_csv, write_json, write_markdown
from .perf import profile_design, run_benchmark
from .report import format_table, geometric_mean, print_experiment
from .runner import default_config, get_trace, run_design, run_matrix, trace_length
from .stats import SampleSummary, SeededComparison, compare_over_seeds
from .summary import generate_report

__all__ = [
    "SampleSummary",
    "SeededComparison",
    "bar_chart",
    "compare_over_seeds",
    "default_config",
    "export_experiment",
    "generate_report",
    "read_json",
    "series_chart",
    "sparkline",
    "write_csv",
    "write_json",
    "write_markdown",
    "experiments",
    "format_table",
    "geometric_mean",
    "get_trace",
    "print_experiment",
    "profile_design",
    "run_benchmark",
    "run_design",
    "run_matrix",
    "trace_length",
]
