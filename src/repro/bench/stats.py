"""Multi-seed statistics for simulation results.

The paper reports single runs; a careful reproduction should show that the
claimed gaps exceed run-to-run noise.  These helpers repeat a comparison
over several workload-generator seeds and summarise the distribution with
a Student-t confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim.config import SimulationConfig
from ..sim.simulator import simulate
from .runner import default_config, get_trace


@dataclass(frozen=True)
class SampleSummary:
    """Mean / spread / confidence interval of one measured quantity."""

    values: tuple
    confidence: float = 0.95

    @property
    def n(self) -> int:
        """Sample count."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1)."""
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1))

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the Student-t confidence interval."""
        if len(self.values) < 2:
            return 0.0
        try:
            from scipy import stats as scipy_stats

            t_value = scipy_stats.t.ppf(0.5 + self.confidence / 2, df=self.n - 1)
        except ImportError:  # pragma: no cover - scipy ships with the repo env
            t_value = 1.96
        return t_value * self.std / math.sqrt(self.n)

    @property
    def interval(self) -> tuple:
        """(low, high) confidence bounds around the mean."""
        half = self.ci_halfwidth
        return (self.mean - half, self.mean + half)

    def excludes(self, value: float) -> bool:
        """True when ``value`` lies outside the confidence interval."""
        low, high = self.interval
        return value < low or value > high


@dataclass
class SeededComparison:
    """Per-seed speedups of one design over another."""

    design: str
    baseline: str
    workload: str
    seeds: List[int] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)

    def summary(self, confidence: float = 0.95) -> SampleSummary:
        """Distribution summary of the measured speedups."""
        return SampleSummary(tuple(self.speedups), confidence)

    @property
    def significant_gain(self) -> bool:
        """True when the CI of the speedup excludes 1.0 from below."""
        summary = self.summary()
        return summary.n >= 2 and summary.interval[0] > 1.0


def compare_over_seeds(
    design: str,
    baseline: str,
    workload: str,
    seeds: Sequence[int] = (1, 2, 3),
    config: Optional[SimulationConfig] = None,
    max_accesses: Optional[int] = None,
) -> SeededComparison:
    """Measure ``design``'s speedup over ``baseline`` across seeds.

    Each seed generates a fresh trace (same distribution, different
    randomness); both designs see the identical trace per seed.
    """
    config = config if config is not None else default_config()
    comparison = SeededComparison(design=design, baseline=baseline, workload=workload)
    for seed in seeds:
        trace = get_trace(workload, max_accesses=max_accesses, seed=seed)
        base_result = simulate(baseline, trace, config, workload=workload)
        design_result = simulate(design, trace, config, workload=workload)
        comparison.seeds.append(seed)
        comparison.speedups.append(design_result.speedup_over(base_result))
    return comparison
