"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on offline machines lacking ``wheel`` falls back to
the legacy ``setup.py develop`` path, which this file enables.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
