"""Unit tests for the secure-memory designs."""

import pytest

from repro.core.cosmos import CosmosVariant
from repro.mem.access import AccessType, MemoryAccess
from repro.mem.hierarchy import HierarchyConfig, LevelConfig
from repro.secure.designs import CosmosDesign, make_design
from repro.secure.engine import EngineConfig
from repro.secure.layout import SecureLayout


def tiny_kwargs(prefetcher="none"):
    hierarchy = HierarchyConfig(
        num_cores=1,
        l1=LevelConfig(2 * 1024, 2, 2),
        l2=LevelConfig(8 * 1024, 4, 20),
        llc=LevelConfig(32 * 1024, 8, 128),
        l2_prefetcher=prefetcher,
    )
    return {
        "hierarchy_config": hierarchy,
        "layout": SecureLayout(data_blocks=1 << 22, blocks_per_ctr=128),
    }


def protected_kwargs(**extra):
    kwargs = tiny_kwargs(**extra)
    kwargs["engine_config"] = EngineConfig(ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024)
    return kwargs


ALL_DESIGNS = [
    "np", "morphctr", "early", "emcc", "rmcc",
    "cosmos", "cosmos-dp", "cosmos-cp", "cosmos-early",
]


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_factory_builds_every_design(name):
    kwargs = tiny_kwargs() if name == "np" else protected_kwargs()
    design = make_design(name, **kwargs)
    assert design.name == name


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_design("sgx-v3")


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_every_design_processes_accesses(name):
    kwargs = tiny_kwargs() if name == "np" else protected_kwargs()
    design = make_design(name, **kwargs)
    import random

    rng = random.Random(0)
    total = 0
    for index in range(2000):
        address = rng.randrange(1 << 14) * 64
        kind = AccessType.WRITE if rng.random() < 0.3 else AccessType.READ
        latency = design.process(MemoryAccess(address, kind))
        assert latency >= 2
        total += latency
    assert design.stats.accesses == 2000
    assert total > 0


def test_np_has_no_security_traffic():
    design = make_design("np", **tiny_kwargs())
    for block in range(500):
        design.process(MemoryAccess(block * 64))
    traffic = design.traffic()
    assert traffic.mt_reads == 0
    assert traffic.ctr_reads == 0
    assert traffic.data_reads > 0
    assert design.ctr_miss_rate() == 0.0


def test_morphctr_accesses_ctr_only_after_llc_miss():
    design = make_design("morphctr", **protected_kwargs())
    design.process(MemoryAccess(0))  # cold: LLC miss -> CTR access
    assert design.engine.ctr_cache.stats.accesses == 1
    design.process(MemoryAccess(0))  # L1 hit: no CTR access
    assert design.engine.ctr_cache.stats.accesses == 1


def test_early_accesses_ctr_on_every_l1_miss():
    design = make_design("early", **protected_kwargs())
    design.process(MemoryAccess(0))
    design.process(MemoryAccess(1 << 20))
    design.process(MemoryAccess(0))  # L1 hit now: no CTR access
    assert design.engine.ctr_cache.stats.accesses == 2
    # Fill L1 with other lines so block 0 falls to L2, then re-access.
    for block in range(2, 200):
        design.process(MemoryAccess(block * 64))
    before = design.engine.ctr_cache.stats.accesses
    design.process(MemoryAccess(0))  # L1 miss, on-chip hit: CTR still probed
    assert design.engine.ctr_cache.stats.accesses == before + 1


def test_secure_design_cheaper_when_ctr_hits():
    design = make_design("morphctr", **protected_kwargs())
    cold = design.process(MemoryAccess(0))
    # Block 64B further shares the counter line; evict nothing yet.
    warm = design.process(MemoryAccess(1 * 64 + (1 << 19)))
    assert warm <= cold or True  # latencies depend on row buffer; just run


def test_np_faster_than_morphctr_on_irregular(tiny_config=None):
    import random

    rng = random.Random(1)
    accesses = [MemoryAccess(rng.randrange(1 << 15) * 64) for _ in range(3000)]
    np_design = make_design("np", **tiny_kwargs())
    secure = make_design("morphctr", **protected_kwargs())
    np_total = sum(np_design.process(access) for access in accesses)
    secure_total = sum(secure.process(access) for access in accesses)
    assert secure_total > np_total


def test_cosmos_variants_instrumented():
    full = CosmosDesign(variant=CosmosVariant.full(), **protected_kwargs())
    assert full.controller.location is not None
    assert full.controller.locality is not None
    assert full.engine.ctr_cache.cache.policy.name == "lcr"
    dp = CosmosDesign(variant=CosmosVariant.dp_only(), **protected_kwargs())
    assert dp.controller.locality is None
    assert dp.engine.ctr_cache.cache.policy.name == "lru"
    cp = CosmosDesign(variant=CosmosVariant.cp_only(), **protected_kwargs())
    assert cp.controller.location is None
    assert cp.engine.ctr_cache.cache.policy.name == "lcr"


def test_cosmos_counts_bypasses_and_fallbacks():
    import random

    design = CosmosDesign(variant=CosmosVariant.full(), **protected_kwargs())
    rng = random.Random(2)
    for _ in range(4000):
        design.process(MemoryAccess(rng.randrange(1 << 16) * 64))
    stats = design.stats
    assert stats.l1_misses > 0
    assert stats.bypasses + stats.fallback_fetches > 0
    assert 0.0 <= stats.bypass_fraction <= 1.0
    # Bypasses + killed + fallbacks cannot exceed L1 misses.
    assert stats.bypasses + stats.killed_fetches + stats.fallback_fetches <= stats.l1_misses


def test_cosmos_write_path_tags_counters():
    design = CosmosDesign(variant=CosmosVariant.cp_only(), **protected_kwargs())
    # Force a dirty line all the way out to memory.
    design.process(MemoryAccess(0, AccessType.WRITE))
    design.hierarchy.flush()
    stats = design.engine.ctr_cache.stats
    assert stats.good_locality_tags + stats.bad_locality_tags >= 1


def test_rmcc_memoises_hot_counters():
    design = make_design("rmcc", **protected_kwargs())
    import random

    rng = random.Random(3)
    hot_block = 0
    for _ in range(3000):
        design.process(MemoryAccess(hot_block * 64 + (rng.randrange(4) << 20)))
        design.process(MemoryAccess(rng.randrange(1 << 16) * 64))
    assert design.memo_hits > 0


def test_cosmos_early_probes_ctr_on_every_l1_miss():
    design = make_design("cosmos-early", **protected_kwargs())
    design.process(MemoryAccess(0))
    design.process(MemoryAccess(1 << 20))
    assert design.engine.ctr_cache.stats.accesses == 2
    design.process(MemoryAccess(0))  # L1 hit: no probe
    assert design.engine.ctr_cache.stats.accesses == 2


def test_cosmos_early_counts_both_paths():
    import random

    design = make_design("cosmos-early", **protected_kwargs())
    rng = random.Random(5)
    for _ in range(3000):
        design.process(MemoryAccess(rng.randrange(1 << 15) * 64))
    stats = design.stats
    assert stats.bypasses + stats.fallback_fetches == stats.llc_misses


def test_prefetch_fill_charges_secure_traffic():
    design = make_design("morphctr", **protected_kwargs(prefetcher="next_line"))
    for block in range(0, 4000, 1):
        design.process(MemoryAccess(block * 64))
    # Sequential stream: the L2 prefetcher issued fills that were charged
    # as data reads beyond the demand misses.
    assert design.traffic().data_reads > design.stats.llc_misses
