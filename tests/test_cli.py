"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main
from repro.bench import runner


@pytest.fixture(autouse=True)
def tiny_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "2000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.03")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "traces")
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    yield
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()


def test_every_figure_and_table_has_a_cli_entry():
    expected = {f"fig{n}" for n in (2, 3, 4, 5, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17)}
    expected |= {"tab1", "tab2", "tab4"}
    assert expected <= set(EXPERIMENTS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cosmos" in out
    assert "fig10" in out
    assert "dfs" in out


def test_simulate_command(capsys):
    assert main(["simulate", "-d", "morphctr", "-w", "dfs", "-n", "1500"]) == 0
    out = capsys.readouterr().out
    assert "morphctr" in out
    assert "ctr_miss_rate" in out


def test_reproduce_single_experiment(capsys):
    assert main(["reproduce", "tab2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_reproduce_unknown_experiment(capsys):
    assert main(["reproduce", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
