"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main
from repro.bench import runner


@pytest.fixture(autouse=True)
def tiny_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "2000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.03")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "traces")
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    yield
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()


def test_every_figure_and_table_has_a_cli_entry():
    expected = {f"fig{n}" for n in (2, 3, 4, 5, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17)}
    expected |= {"tab1", "tab2", "tab4"}
    assert expected <= set(EXPERIMENTS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cosmos" in out
    assert "fig10" in out
    assert "dfs" in out


def test_simulate_command(capsys):
    assert main(["simulate", "-d", "morphctr", "-w", "dfs", "-n", "1500"]) == 0
    out = capsys.readouterr().out
    assert "morphctr" in out
    assert "ctr_miss_rate" in out


def test_reproduce_single_experiment(capsys):
    assert main(["reproduce", "tab2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_reproduce_unknown_experiment(capsys):
    assert main(["reproduce", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_with_obs_writes_artifacts(tmp_path, monkeypatch, capsys):
    from repro.obs.artifacts import list_jobs, obs_root

    monkeypatch.setenv("REPRO_OBS_INTERVAL", "500")
    assert main(["simulate", "-d", "morphctr", "-w", "dfs", "-n", "1500",
                 "--obs"]) == 0
    jobs = list_jobs(obs_root(runner.cache_dir()))
    assert len(jobs) == 1
    assert (jobs[0] / "timeseries.npz").is_file()
    assert (jobs[0] / "spans.trace.json").is_file()
    capsys.readouterr()

    # The obs subcommands read those artifacts back.
    assert main(["obs", "summarize"]) == 0
    out = capsys.readouterr().out
    assert "morphctr/dfs" in out
    assert "latest manifest" in out

    assert main(["obs", "dump", "0"]) == 0
    out = capsys.readouterr().out
    assert "ctr_hit_rate" in out

    assert main(["obs", "plot", "0", "ctr_hit_rate"]) == 0
    assert "ctr_hit_rate" in capsys.readouterr().out


def test_obs_merge_and_manifest_summarize(tmp_path, monkeypatch, capsys):
    from repro.obs.artifacts import latest_manifest

    monkeypatch.setenv("REPRO_OBS_INTERVAL", "500")
    assert main(["simulate", "-d", "morphctr", "-w", "dfs", "-n", "1500",
                 "--obs"]) == 0
    capsys.readouterr()

    assert main(["obs", "merge", "latest"]) == 0
    out = capsys.readouterr().out
    assert "trace events" in out

    manifest = latest_manifest(runner.cache_dir() / "manifests")
    assert manifest is not None
    trace = manifest.with_suffix(".trace.json")
    assert trace.is_file()

    # summarize accepts an explicit manifest path and reports the trace.
    assert main(["obs", "summarize", str(manifest)]) == 0
    out = capsys.readouterr().out
    assert f"manifest: {manifest.name}" in out
    assert f"trace {trace.name}" in out

    # An explicit manifest path works for merge too.
    assert main(["obs", "merge", str(manifest)]) == 0
    assert "trace events" in capsys.readouterr().out


def test_obs_merge_missing_manifest(tmp_path, capsys):
    assert main(["obs", "--cache-dir", str(tmp_path), "merge", "latest"]) == 2
    assert "no run manifests" in capsys.readouterr().err
    assert main(["obs", "merge", str(tmp_path / "nope.json")]) == 2
    assert "no manifest at" in capsys.readouterr().err


def test_obs_summarize_missing_manifest_path(tmp_path, capsys):
    assert main(["obs", "--cache-dir", str(tmp_path), "summarize",
                 str(tmp_path / "nope.json")]) == 2
    assert "no manifest at" in capsys.readouterr().err


def test_obs_summarize_empty_cache(tmp_path, capsys):
    assert main(["obs", "--cache-dir", str(tmp_path), "summarize"]) == 0
    assert "no observability artifacts" in capsys.readouterr().out


def test_obs_dump_unknown_job(tmp_path, capsys):
    assert main(["obs", "--cache-dir", str(tmp_path), "dump", "zzz"]) == 2
    assert "no unique job" in capsys.readouterr().err
