"""Unit tests for the epoch-batched kernel's vectorised building blocks.

The integration contract (byte-identical ``SimulationResult`` payloads)
lives in ``test_golden_metrics.py``; this module pins the pieces in
isolation so a classifier regression is caught at the array level, with
a readable diff, rather than as an opaque metrics mismatch:

* ``classify_epoch`` against a transliterated per-set 2-way LRU model,
  including carry handoff across epoch boundaries;
* ``hash_block_batch`` bit-for-bit against the scalar splitmix64 hash;
* ``DramModel.decode_batch`` against the scalar ``decode``;
* ``TraceArrays.from_iter`` streaming materialisation;
* the ``REPRO_SIM_PATH`` execution option and its validation;
* the kernel's scalar fallbacks (unsupported design, negative blocks).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import hash_block, hash_block_batch
from repro.exec.options import options_from_env, set_options
from repro.mem.access import AccessType, MemoryAccess
from repro.mem.dram import DramModel
from repro.sim.batched import classify_epoch, run_batched
from repro.sim.config import small_test_config
from repro.sim.simulator import Simulator, build_design
from repro.workloads.micro import zipf_trace
from repro.workloads.trace import TraceArrays


# ---------------------------------------------------------------------------
# classify_epoch vs a reference scalar 2-way LRU


def _reference_classify(blocks, keys, top, second):
    """Transliterated always-fill 2-way LRU: the model the kernel must match."""
    hits = []
    for block, key in zip(blocks, keys):
        if block == top[key]:
            hits.append(True)
        elif block == second[key]:
            hits.append(True)
            second[key] = top[key]
            top[key] = block
        else:
            hits.append(False)
            second[key] = top[key]
            top[key] = block
    return hits


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("num_keys", [1, 4, 32])
def test_classify_epoch_matches_reference_lru(seed, num_keys):
    rng = random.Random(f"classify:{seed}:{num_keys}")
    # Empty-way sentinels: MRU=-1, LRU=-2 (distinct so a carry prefix
    # always produces a change point).
    vec_top = np.full(num_keys, -1, dtype=np.int64)
    vec_second = np.full(num_keys, -2, dtype=np.int64)
    ref_top = vec_top.tolist()
    ref_second = vec_second.tolist()
    # Several epochs of varying length so the carry handoff is exercised.
    for epoch_len in (1, 3, 50, 200, 7):
        blocks = np.array(
            [rng.randrange(12) for _ in range(epoch_len)], dtype=np.int64
        )
        keys = np.array(
            [rng.randrange(num_keys) for _ in range(epoch_len)], dtype=np.int64
        )
        hits = classify_epoch(blocks, keys, vec_top, vec_second)
        expected = _reference_classify(
            blocks.tolist(), keys.tolist(), ref_top, ref_second
        )
        assert hits.tolist() == expected
        assert vec_top.tolist() == ref_top
        assert vec_second.tolist() == ref_second


@settings(max_examples=60, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 4)), min_size=1, max_size=120
    ),
    splits=st.lists(st.integers(1, 16), max_size=6),
)
def test_classify_epoch_split_points_are_pure_mechanism(accesses, splits):
    """Property: any partition of the stream into epochs classifies the
    same — the carry handoff is equivalent to one unbroken epoch."""
    blocks = np.array([a[0] for a in accesses], dtype=np.int64)
    keys = np.array([a[1] for a in accesses], dtype=np.int64)

    def run(chunk_sizes):
        top = np.full(5, -1, dtype=np.int64)
        second = np.full(5, -2, dtype=np.int64)
        hits = []
        pos = 0
        for size in chunk_sizes:
            if pos >= len(blocks):
                break
            stop = min(len(blocks), pos + size)
            hits.extend(
                classify_epoch(blocks[pos:stop], keys[pos:stop], top, second)
                .tolist()
            )
            pos = stop
        if pos < len(blocks):
            hits.extend(
                classify_epoch(blocks[pos:], keys[pos:], top, second).tolist()
            )
        return hits, top.tolist(), second.tolist()

    assert run(splits) == run([len(blocks)])


def test_classify_epoch_repeated_block_single_set():
    """Degenerate single-set stream: miss, then hits, then eviction."""
    top = np.full(1, -1, dtype=np.int64)
    second = np.full(1, -2, dtype=np.int64)
    blocks = np.array([5, 5, 6, 5, 7, 6], dtype=np.int64)
    keys = np.zeros(6, dtype=np.int64)
    hits = classify_epoch(blocks, keys, top, second)
    # State as [MRU, LRU]: [.,.] 5m [5,.] 5h [5,.] 6m [6,5] 5h [5,6]
    # 7m evicts 6 [7,5] 6m evicts 5 [6,7].
    assert hits.tolist() == [False, True, False, True, False, False]
    assert top[0] == 6 and second[0] == 7


# ---------------------------------------------------------------------------
# hash_block_batch vs scalar hash_block


def test_hash_block_batch_matches_scalar():
    rng = random.Random("hash-batch")
    blocks = [rng.randrange(1 << 48) for _ in range(2000)]
    blocks += [0, 1, (1 << 42) - 1, 1 << 42, (1 << 63) - 1]
    batch = hash_block_batch(np.array(blocks, dtype=np.uint64))
    scalar = [hash_block(b) for b in blocks]
    assert batch.tolist() == scalar


def test_hash_block_batch_custom_num_states():
    blocks = np.arange(512, dtype=np.uint64)
    batch = hash_block_batch(blocks, num_states=64)
    scalar = [hash_block(int(b), num_states=64) for b in blocks]
    assert batch.tolist() == scalar
    assert int(batch.max()) < 64


# ---------------------------------------------------------------------------
# DramModel.decode_batch vs scalar decode


@pytest.mark.parametrize("channels,banks", [(1, 16), (2, 8), (4, 4)])
def test_decode_batch_matches_scalar(channels, banks):
    dram = DramModel(num_channels=channels, num_banks=banks)
    rng = random.Random(f"decode:{channels}:{banks}")
    blocks = np.array(
        [rng.randrange(1 << 32) for _ in range(1000)], dtype=np.int64
    )
    vec_channels, vec_banks, vec_rows, vec_columns = dram.decode_batch(blocks)
    for i, block in enumerate(blocks.tolist()):
        channel, bank, row, column = dram.decode(block)
        assert (
            vec_channels[i], vec_banks[i], vec_rows[i], vec_columns[i]
        ) == (channel, bank, row, column)


# ---------------------------------------------------------------------------
# TraceArrays.from_iter streaming materialisation


def _accesses(n, seed=3):
    rng = random.Random(seed)
    return [
        MemoryAccess(
            rng.randrange(4096) << 6,
            AccessType.WRITE if rng.random() < 0.4 else AccessType.READ,
            core=rng.randrange(2),
        )
        for _ in range(n)
    ]


@pytest.mark.parametrize("n", [0, 1, 100, 200_000])
def test_from_iter_generator_matches_from_accesses(n):
    accesses = _accesses(n)
    # chunk=4096 forces multi-chunk assembly for the large case.
    streamed = TraceArrays.from_iter(iter(accesses), chunk=4096)
    packed = TraceArrays.from_accesses(accesses)
    for field in ("addresses", "types", "cores"):
        got = getattr(streamed, field)
        want = getattr(packed, field)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


def test_from_iter_sequence_shortcut():
    accesses = _accesses(64)
    assert np.array_equal(
        TraceArrays.from_iter(accesses).addresses,
        TraceArrays.from_accesses(accesses).addresses,
    )


# ---------------------------------------------------------------------------
# REPRO_SIM_PATH execution option


def test_sim_path_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_PATH", "batched")
    assert options_from_env().sim_path == "batched"
    monkeypatch.delenv("REPRO_SIM_PATH")
    assert options_from_env().sim_path == "auto"


def test_sim_path_env_invalid_value_ignored(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_PATH", "warp-drive")
    assert options_from_env().sim_path == "auto"


def test_set_options_rejects_unknown_sim_path():
    with pytest.raises(ValueError):
        set_options(sim_path="warp-drive")


# ---------------------------------------------------------------------------
# Scalar fallbacks


def test_run_batched_falls_back_on_unsupported_design():
    config = small_test_config(num_cores=1)
    trace = zipf_trace(n=500, seed=4)
    design = build_design("np", config)
    design.supports_batch_hits = lambda: False
    simulator = Simulator(design, config)
    assert run_batched(simulator, trace.arrays()) is False
    # Dispatch-level fallback: the run still completes via the arrays path.
    simulator = Simulator(design, config)
    result = simulator.run(trace, path="batched")
    assert result.accesses == len(trace)


def test_run_batched_falls_back_on_negative_blocks():
    config = small_test_config(num_cores=1)
    design = build_design("np", config)
    simulator = Simulator(design, config)
    arrays = TraceArrays.from_accesses(_accesses(16))
    arrays.addresses[3] = -64  # negative block collides with sentinels
    assert run_batched(simulator, arrays) is False


def test_run_batched_empty_trace_is_supported():
    config = small_test_config(num_cores=1)
    simulator = Simulator(build_design("np", config), config)
    assert run_batched(simulator, TraceArrays.from_accesses([])) is True
    assert simulator.accesses == 0
