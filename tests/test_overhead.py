"""Unit tests for the Table 2 storage-overhead model."""

from repro.core.config import CosmosConfig
from repro.core.overhead import (
    CET_ENTRY_BITS,
    LCR_EXTRA_BITS_PER_LINE,
    Q_TABLE_ENTRY_BITS,
    compute_overhead,
)


def test_q_tables_are_32kb_each():
    report = compute_overhead()
    q_tables = [c for c in report.components if "Q-Table" in c.name]
    assert len(q_tables) == 2
    for component in q_tables:
        assert component.kilobytes == 32.0  # 16384 x 16 bits (Table 2)


def test_cet_matches_paper_arithmetic():
    report = compute_overhead()
    cet = next(c for c in report.components if c.name == "CET")
    assert cet.bits == 8192 * CET_ENTRY_BITS
    # 8192 x 65 bits = 66,560 bytes; the paper rounds this to "66KB".
    assert 64.9 < cet.kilobytes < 65.1


def test_constants_match_table2():
    assert Q_TABLE_ENTRY_BITS == 16
    assert CET_ENTRY_BITS == 65  # 64-bit address + 1-bit prediction
    assert LCR_EXTRA_BITS_PER_LINE == 9  # 8-bit score + 1-bit flag


def test_total_close_to_paper_147kb():
    report = compute_overhead()
    # 32 + 32 + 65 KB plus the per-line LCR bits: the paper reports 147KB.
    assert 125 < report.total_kilobytes < 150


def test_fraction_of_llc_about_2_percent():
    report = compute_overhead()
    assert 0.01 < report.fraction_of_llc(8 * 1024 * 1024) < 0.025


def test_paper_area_power_totals():
    report = compute_overhead()
    assert abs(report.total_area_mm2 - 0.260) < 1e-9
    assert abs(report.total_power_mw - 206.64) < 0.02  # 45.29*2 + 92 + 24.06


def test_scales_with_configuration():
    small = compute_overhead(CosmosConfig(num_states=1024, cet_entries=256))
    large = compute_overhead(CosmosConfig(num_states=65536, cet_entries=16384))
    assert small.total_bits < large.total_bits


def test_rows_include_total():
    rows = compute_overhead().as_rows()
    assert rows[-1]["component"] == "total"
    assert len(rows) == 5  # 4 components + total
