"""End-to-end integration tests across modules.

Two kinds of integration are exercised:

1. *Functional security*: a miniature protected memory built from the real
   AES-CTR engine, counters, MAC store and Merkle tree — writes encrypt,
   reads decrypt and authenticate, and tampering/replay is detected.
2. *Simulation*: full designs driven by real workload traces, checking the
   cross-design relationships the paper's evaluation depends on.
"""

import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.secure.aes import AesCtrEngine
from repro.secure.counters import MorphCtrCounters
from repro.secure.mac import MacStore
from repro.secure.merkle import MerkleTree
from repro.sim.simulator import simulate


class ProtectedMemory:
    """A tiny functional secure memory: the paper's Fig. 1 data path."""

    def __init__(self, num_blocks=1024):
        self.aes = AesCtrEngine()
        self.counters = MorphCtrCounters()
        self.macs = MacStore()
        self.tree = MerkleTree(max(1, num_blocks // 128), arity=2)
        self.dram = {}

    def _ctr_payload(self, ctr_index):
        # Serialise the counter line's state for the integrity tree.
        base = ctr_index * 128
        values = tuple(self.counters.counter_value(base + i) for i in range(128))
        return repr(values).encode()

    def write(self, block, plaintext):
        self.counters.increment(block)
        counter = self.counters.counter_value(block)
        ciphertext = self.aes.encrypt(plaintext, block << 6, counter)
        self.dram[block] = ciphertext
        self.macs.update(block, ciphertext, counter)
        ctr_index = self.counters.ctr_index(block)
        self.tree.update_leaf(ctr_index, self._ctr_payload(ctr_index))

    def read(self, block):
        ciphertext = self.dram[block]
        counter = self.counters.counter_value(block)
        ctr_index = self.counters.ctr_index(block)
        if not self.tree.verify_leaf(ctr_index, self._ctr_payload(ctr_index)):
            raise SecurityError("counter integrity violation")
        if not self.macs.verify(block, ciphertext, counter):
            raise SecurityError("MAC mismatch")
        return self.aes.decrypt(ciphertext, block << 6, counter)


class SecurityError(Exception):
    pass


class TestFunctionalSecureMemory:
    def test_write_read_roundtrip(self):
        memory = ProtectedMemory()
        memory.write(5, b"A" * 64)
        assert memory.read(5) == b"A" * 64

    def test_many_blocks_and_overwrites(self):
        memory = ProtectedMemory()
        for block in range(50):
            memory.write(block, bytes([block]) * 64)
        for block in range(50):
            memory.write(block, bytes([block ^ 0xFF]) * 64)
        for block in range(50):
            assert memory.read(block) == bytes([block ^ 0xFF]) * 64

    def test_ciphertext_differs_from_plaintext(self):
        memory = ProtectedMemory()
        memory.write(1, b"B" * 64)
        assert memory.dram[1] != b"B" * 64

    def test_rewrite_changes_ciphertext(self):
        """Counter-mode freshness: same plaintext encrypts differently."""
        memory = ProtectedMemory()
        memory.write(1, b"C" * 64)
        first = memory.dram[1]
        memory.write(1, b"C" * 64)
        assert memory.dram[1] != first

    def test_tampered_ciphertext_detected(self):
        memory = ProtectedMemory()
        memory.write(2, b"D" * 64)
        memory.dram[2] = bytes([memory.dram[2][0] ^ 1]) + memory.dram[2][1:]
        with pytest.raises(SecurityError):
            memory.read(2)

    def test_replayed_data_detected(self):
        """A replay of old ciphertext fails the MAC (stale counter)."""
        memory = ProtectedMemory()
        memory.write(3, b"old-value" + b"\x00" * 55)
        stale = memory.dram[3]
        memory.write(3, b"new-value" + b"\x00" * 55)
        memory.dram[3] = stale
        with pytest.raises(SecurityError):
            memory.read(3)

    def test_counter_tampering_detected_by_tree(self):
        memory = ProtectedMemory()
        memory.write(4, b"E" * 64)
        ctr_index = memory.counters.ctr_index(4)
        memory.tree.tamper_leaf(ctr_index, b"\x00" * 32)
        with pytest.raises(SecurityError):
            memory.read(4)


class TestSimulationIntegration:
    def test_protection_costs_performance(self, tiny_config, dfs_trace):
        np_result = simulate("np", dfs_trace, tiny_config)
        secure = simulate("morphctr", dfs_trace, tiny_config)
        assert secure.normalized_to(np_result) < 1.0
        assert secure.traffic.total > np_result.traffic.total

    def test_mt_reads_track_ctr_misses(self, tiny_config, dfs_trace):
        secure = simulate("morphctr", dfs_trace, tiny_config)
        assert secure.traffic.mt_reads > 0
        assert secure.traffic.ctr_reads > 0
        # Every MT read belongs to a CTR fetch; ratio bounded by tree depth.
        assert secure.traffic.mt_reads <= secure.traffic.ctr_reads * 30

    def test_identical_hierarchy_behaviour_across_designs(self, tiny_config, dfs_trace):
        """Designs must not perturb the data-side cache behaviour."""
        np_result = simulate("np", dfs_trace, tiny_config)
        secure = simulate("morphctr", dfs_trace, tiny_config)
        cosmos = simulate("cosmos", dfs_trace, tiny_config)
        assert np_result.l1_miss_rate == secure.l1_miss_rate == cosmos.l1_miss_rate
        assert np_result.llc_miss_rate == secure.llc_miss_rate == cosmos.llc_miss_rate

    def test_cosmos_never_slower_than_baseline_on_regular(self, tiny_config):
        from repro.workloads.ml import generate_ml_trace

        trace = generate_ml_trace("mlp", num_cores=1, max_accesses=20_000, scale=0.01)
        base = simulate("morphctr", trace, tiny_config)
        cosmos = simulate("cosmos", trace, tiny_config)
        # Paper Sec. 6.3: no regression on regular workloads (allow noise).
        assert cosmos.speedup_over(base) > 0.95

    def test_multicore_trace_through_multicore_design(self, quad_config):
        from repro.workloads.graph import preferential_attachment_graph
        from repro.workloads.graph_algos import generate_graph_trace

        graph = preferential_attachment_graph(400, edges_per_vertex=4, seed=2)
        trace = generate_graph_trace("bfs", graph=graph, num_cores=4, max_accesses=8000)
        result = simulate("cosmos", trace, quad_config, workload="bfs")
        assert result.accesses == 8000
        assert result.ipc > 0
