"""Golden-metrics determinism: object-trace vs array-trace fast path.

``Simulator.run`` dispatches array-backed traces to ``design.process_fast``
and plain iterables of ``MemoryAccess`` to ``design.process``.  Both paths
must execute the identical sequence of cache/engine/RL operations, so the
full ``SimulationResult.to_dict()`` payload has to be *byte-identical*
between them — the contract that lets the hot path stay allocation-free
without ever becoming a second, subtly different simulator.
"""

import json

import pytest

from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.workloads.micro import zipf_trace

DESIGNS = ["np", "morphctr", "early", "cosmos"]


@pytest.fixture(scope="module")
def trace():
    """A seeded mixed read/write trace with real reuse (Zipf popularity)."""
    return zipf_trace(n=6000, alpha=1.0, write_fraction=0.4, seed=11)


@pytest.mark.parametrize("design", DESIGNS)
def test_object_and_array_paths_are_byte_identical(design, trace):
    config = small_test_config(num_cores=1)
    # Plain list => legacy object path (no ``arrays`` attribute to sniff).
    object_result = simulate(design, list(trace.accesses), config, workload="zipf")
    # Trace => array fast path (``Simulator.run`` calls ``trace.arrays()``).
    array_result = simulate(design, trace, config, workload="zipf")
    object_json = json.dumps(object_result.to_dict(), sort_keys=True)
    array_json = json.dumps(array_result.to_dict(), sort_keys=True)
    assert object_json == array_json


def test_array_path_actually_processes_every_access(trace):
    config = small_test_config(num_cores=1)
    result = simulate("np", trace, config)
    assert result.accesses == len(trace)
