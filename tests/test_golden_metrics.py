"""Golden-metrics determinism across the three dispatch paths.

``Simulator.run`` dispatches array-backed traces to ``design.process_fast``
("arrays"), plain iterables of ``MemoryAccess`` to ``design.process``
("objects"), and — when the design supports it — the epoch-batched
vectorised kernel ("batched").  All three paths must execute the identical
sequence of cache/engine/RL operations, so the full
``SimulationResult.to_dict()`` payload has to be *byte-identical* between
them — the contract that lets the hot paths stay allocation-free without
ever becoming a second, subtly different simulator.

The batched kernel additionally promises that its epoch size is pure
mechanism: any ``batch_epoch`` (including degenerate sizes like 1, primes
that never align with ``progress_interval``, and "whole trace at once")
yields the same metrics and the same progress-hook sequence.
"""

import json

import pytest

from repro.sim.config import small_test_config
from repro.sim.simulator import Simulator, build_design, simulate
from repro.workloads.micro import zipf_trace

DESIGNS = ["np", "morphctr", "early", "cosmos"]

#: All-pairs reference: objects is the slow, obviously-correct baseline.
PATHS = ["arrays", "batched"]


@pytest.fixture(scope="module")
def trace():
    """A seeded mixed read/write trace with real reuse (Zipf popularity)."""
    return zipf_trace(n=6000, alpha=1.0, write_fraction=0.4, seed=11)


def _result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def object_reference(trace):
    """Per-design objects-path payloads, computed once for the module."""
    config = small_test_config(num_cores=1)
    return {
        design: _result_json(
            simulate(design, list(trace.accesses), config, workload="zipf")
        )
        for design in DESIGNS
    }


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("design", DESIGNS)
def test_paths_are_byte_identical(design, path, trace, object_reference):
    config = small_test_config(num_cores=1)
    result = simulate(design, trace, config, workload="zipf", path=path)
    assert _result_json(result) == object_reference[design]


@pytest.mark.parametrize("design", ["np", "cosmos"])
@pytest.mark.parametrize("warmup", [0, 1000])
def test_paths_agree_under_warmup(design, warmup, trace):
    """Warmup (run, then reset stats mid-trace) must not split the paths.

    The batched kernel runs warmup through the same epoch machinery and
    then zeroes counters while keeping its L1 carry state — this is only
    sound if the post-reset metrics still match the scalar paths exactly.
    """
    config = small_test_config(num_cores=1)
    payloads = {}
    for path, source in [
        ("objects", list(trace.accesses)),
        ("arrays", trace),
        ("batched", trace),
    ]:
        simulator = Simulator(build_design(design, config), config, "zipf")
        result = simulator.run(source, warmup_accesses=warmup, path=path)
        payloads[path] = _result_json(result)
    assert payloads["arrays"] == payloads["objects"]
    assert payloads["batched"] == payloads["objects"]


@pytest.mark.parametrize("epoch", [1, 7, 1024, None])
def test_batched_epoch_size_is_pure_mechanism(epoch, trace, object_reference):
    """Chunk boundaries must be invisible: any epoch, same payload.

    ``None`` exercises the kernel default; 1 forces a carry handoff on
    every access; 7 never divides the trace; 1024 is a typical size.
    """
    config = small_test_config(num_cores=1)
    batch_epoch = len(trace) if epoch is None else epoch
    result = simulate(
        "cosmos", trace, config, workload="zipf",
        path="batched", batch_epoch=batch_epoch,
    )
    assert _result_json(result) == object_reference["cosmos"]


@pytest.mark.parametrize("epoch", [7, 64])
def test_batched_progress_hooks_match_arrays(epoch, trace):
    """Hook sequence is part of the contract, not just the final metrics.

    ``progress_interval=13`` never aligns with the epoch, so the kernel
    has to split chunks mid-epoch to fire hooks at exactly the same
    access counts (and with identical running latency) as the scalar
    arrays path.
    """
    config = small_test_config(num_cores=1)

    def run(path, batch_epoch=None):
        events = []

        def hook(done, simulator):
            events.append((done, simulator.total_latency))

        simulator = Simulator(build_design("morphctr", config), config, "zipf")
        simulator.run(
            trace, progress_hook=hook, progress_interval=13,
            path=path, batch_epoch=batch_epoch,
        )
        return events

    reference = run("arrays")
    assert reference  # interval 13 on a 6000-access trace must fire
    assert run("batched", batch_epoch=epoch) == reference


def test_array_path_actually_processes_every_access(trace):
    config = small_test_config(num_cores=1)
    result = simulate("np", trace, config)
    assert result.accesses == len(trace)


def test_batched_path_actually_processes_every_access(trace):
    config = small_test_config(num_cores=1)
    result = simulate("np", trace, config, path="batched")
    assert result.accesses == len(trace)
