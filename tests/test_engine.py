"""Unit tests for the secure-memory engine."""

from repro.secure.counters import SplitCounters
from repro.secure.engine import EngineConfig, SecureMemoryEngine
from repro.secure.layout import SecureLayout


def make_engine(**config_kwargs):
    layout = SecureLayout(data_blocks=1 << 20, blocks_per_ctr=128)
    defaults = dict(ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024)
    defaults.update(config_kwargs)
    return SecureMemoryEngine(layout, config=EngineConfig(**defaults))


def test_ctr_hit_is_cheap():
    engine = make_engine()
    engine.ctr_access(0)
    hit, latency = engine.ctr_access(5)  # same counter line
    assert hit
    assert latency == engine.config.ctr_lookup_latency + engine.config.ctr_combine_latency


def test_ctr_miss_charges_dram_and_mt():
    engine = make_engine()
    hit, latency = engine.ctr_access(0)
    assert not hit
    assert latency > engine.config.ctr_lookup_latency
    assert engine.traffic.ctr_reads == 1
    assert engine.traffic.mt_reads > 0


def test_mt_reads_shrink_with_cached_path():
    engine = make_engine()
    engine.ctr_access(0)
    first = engine.traffic.mt_reads
    engine.ctr_access(128)  # sibling counter line shares most of the path
    assert engine.traffic.mt_reads - first < first


def test_read_data_counts_traffic_and_macs():
    engine = make_engine()
    for block in range(16):
        engine.read_data(block)
    assert engine.traffic.data_reads == 16
    assert engine.traffic.mac_accesses == 2  # one per 8 accesses


def test_secure_write_increments_counter():
    engine = make_engine()
    engine.secure_write(0)
    assert engine.scheme.counter_value(0) == 1
    assert engine.traffic.data_writes == 1
    assert engine.events.writes_seen == 1


def test_write_overflow_generates_reencryption_traffic():
    layout = SecureLayout(data_blocks=1 << 20, blocks_per_ctr=64)
    engine = SecureMemoryEngine(
        layout,
        scheme=SplitCounters(),
        config=EngineConfig(ctr_cache_bytes=8 * 1024, mt_cache_bytes=4 * 1024),
    )
    for _ in range(200):  # 7-bit minor overflows at 128
        engine.secure_write(0)
    assert engine.events.ctr_overflows >= 1
    assert engine.traffic.reencryption_requests >= 128


def test_ctr_classifier_hook_used_on_writes():
    engine = make_engine()
    seen = []

    def classifier(ctr_index):
        seen.append(ctr_index)
        return 1, 7

    engine.ctr_classifier = classifier
    engine.secure_write(300)
    assert seen == [engine.scheme.ctr_index(300)]
    line = engine.ctr_cache.cache.get_line(engine.ctr_cache.ctr_block_address(300))
    assert line.locality_flag == 1
    assert line.locality_score == 7


def test_dirty_ctr_eviction_counts_ctr_write():
    engine = make_engine(ctr_cache_bytes=4 * 1024, ctr_cache_assoc=4)  # 64 lines
    engine.ctr_access(0, is_write=True)
    for line_index in range(1, 512):
        engine.ctr_access(line_index * 128)
    assert engine.traffic.ctr_writes >= 1


def test_prefetcher_by_name_charges_integrity_checks():
    engine = make_engine(ctr_prefetcher_name="next_line")
    engine.ctr_access(0)
    # The next-line prefetch of counter line 1 costs a CTR read + MT walk.
    assert engine.traffic.ctr_reads == 2
    assert engine.ctr_cache.cache.stats.prefetch_issued == 1
    # And the prefetched line services the next demand access.
    hit, _ = engine.ctr_access(128)
    assert hit


def test_policy_by_name():
    engine = make_engine(ctr_policy_name="rrip")
    assert engine.ctr_cache.cache.policy.name == "rrip"


def test_mac_in_ecc_disables_mac_traffic():
    engine = make_engine(mac_in_ecc=True)
    for block in range(32):
        engine.read_data(block)
    assert engine.traffic.mac_accesses == 0
    # Everything else still charged normally.
    assert engine.traffic.data_reads == 32


def test_decrypt_ready_adds_aes_latency():
    engine = make_engine()
    assert engine.decrypt_ready_latency(10) == 10 + engine.config.aes_latency


def test_reencryption_rate_metric():
    engine = make_engine()
    assert engine.events.reencryption_rate == 0.0
    engine.secure_write(0)
    assert engine.events.reencryption_rate == 0.0
