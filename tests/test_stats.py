"""Unit tests for the statistics containers."""

from repro.mem.stats import CacheStats, LatencyStats, TrafficStats


class TestCacheStats:
    def test_rates(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.accesses == 4
        assert stats.miss_rate == 0.25
        assert stats.hit_rate == 0.75

    def test_empty_rates(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0
        assert stats.prefetch_accuracy == 0.0

    def test_prefetch_accuracy(self):
        stats = CacheStats(prefetch_issued=10, prefetch_useful=3)
        assert stats.prefetch_accuracy == 0.3

    def test_reset(self):
        stats = CacheStats(hits=5, misses=5, evictions=2, writebacks=1)
        stats.reset()
        assert stats.accesses == 0
        assert stats.evictions == 0


class TestTrafficStats:
    def test_total_and_overhead(self):
        traffic = TrafficStats(
            data_reads=10, data_writes=5, ctr_reads=3, ctr_writes=1,
            mt_reads=20, mac_accesses=2, reencryption_requests=4,
        )
        assert traffic.total == 45
        assert traffic.security_overhead == 30

    def test_as_dict_roundtrip(self):
        traffic = TrafficStats(data_reads=1, mt_reads=2)
        data = traffic.as_dict()
        assert data["data_reads"] == 1
        assert data["mt_reads"] == 2
        assert data["total"] == 3

    def test_reset(self):
        traffic = TrafficStats(data_reads=9)
        traffic.reset()
        assert traffic.total == 0


class TestLatencyStats:
    def test_average(self):
        stats = LatencyStats()
        stats.record(10)
        stats.record(20)
        assert stats.average == 15.0

    def test_empty_average(self):
        assert LatencyStats().average == 0.0

    def test_histogram_categories(self):
        stats = LatencyStats()
        stats.record(5, category="demand")
        stats.record(7, category="demand")
        stats.record(9, category="writeback")
        assert stats.histogram == {"demand": 2, "writeback": 1}
