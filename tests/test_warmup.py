"""Tests for warmup handling (measure-after-warm methodology)."""

from repro.mem.access import MemoryAccess
from repro.sim.simulator import Simulator, build_design


def test_warmup_excludes_cold_misses(tiny_config):
    """The same short loop, measured cold vs after warmup."""
    loop = [MemoryAccess(block * 64) for block in range(8)] * 50

    cold = Simulator(build_design("np", tiny_config), tiny_config, "loop")
    cold_result = cold.run(list(loop))

    warm = Simulator(build_design("np", tiny_config), tiny_config, "loop")
    warm_result = warm.run(list(loop), warmup_accesses=8)

    assert warm_result.accesses == len(loop) - 8
    # After warmup the loop hits L1 every time: no misses in the window.
    assert warm_result.l1_miss_rate == 0.0
    assert cold_result.l1_miss_rate > 0.0
    assert warm_result.traffic.total == 0


def test_warmup_preserves_learned_predictor_state(tiny_config, dfs_trace):
    design = build_design("cosmos", tiny_config)
    simulator = Simulator(design, tiny_config, "dfs")
    result = simulator.run(list(dfs_trace), warmup_accesses=3000)
    assert result.accesses == len(dfs_trace) - 3000
    # Prediction stats were reset but the Q-table kept its training: the
    # measured window alone must carry graded predictions.
    assert design.controller.location.stats.predictions > 0


def test_warmup_resets_secure_traffic(tiny_config, dfs_trace):
    design = build_design("morphctr", tiny_config)
    simulator = Simulator(design, tiny_config, "dfs")
    result = simulator.run(list(dfs_trace), warmup_accesses=len(dfs_trace) - 100)
    # Only the last 100 accesses are measured.
    assert result.accesses == 100
    assert result.traffic.total < 2000


def test_warmup_longer_than_trace(tiny_config, dfs_trace):
    design = build_design("np", tiny_config)
    simulator = Simulator(design, tiny_config, "dfs")
    result = simulator.run(list(dfs_trace), warmup_accesses=10 * len(dfs_trace))
    assert result.accesses == 0


def test_reset_stats_keeps_cache_contents(tiny_config):
    design = build_design("morphctr", tiny_config)
    design.process(MemoryAccess(0))
    occupancy = design.hierarchy.llc.occupancy
    design.reset_stats()
    assert design.hierarchy.llc.occupancy == occupancy
    assert design.hierarchy.llc.stats.accesses == 0
    # The resident block still hits after the reset.
    design.process(MemoryAccess(0))
    assert design.hierarchy.l1[0].stats.hits == 1
