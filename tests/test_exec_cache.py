"""Unit tests for the content-addressed result cache."""

import json

from repro.exec import CACHE_VERSION, JobSpec, ResultCache
from repro.mem.stats import TrafficStats
from repro.sim.config import small_test_config
from repro.sim.results import SimulationResult


def make_result(**overrides):
    base = dict(
        design="morphctr",
        workload="dfs",
        accesses=500,
        instructions=2000,
        cycles=1234.5,
        total_latency=4000,
        l1_miss_rate=0.4,
        l2_miss_rate=0.6,
        llc_miss_rate=0.9,
        ctr_miss_rate=0.8,
        traffic=TrafficStats(data_reads=100, mt_reads=300),
        extra={"prediction_accuracy": 0.875},
    )
    base.update(overrides)
    return SimulationResult(**base)


def make_job(**overrides):
    base = dict(design="morphctr", workload="dfs", config=small_test_config(),
                num_cores=1, trace_length=2000, graph_scale=0.05)
    base.update(overrides)
    return JobSpec(**base)


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec, result = make_job(), make_result()
    cache.put(spec, result)
    loaded = cache.get(spec.content_hash())
    assert loaded is not None
    assert loaded == result  # dataclass equality: every metric identical
    assert cache.hits == 1 and cache.misses == 0


def test_missing_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    assert cache.get("0" * 64) is None
    assert cache.misses == 1
    assert cache.hit_rate == 0.0


def test_corrupt_entry_is_tolerated_and_removed(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    path = cache.path_for(spec.content_hash())
    path.write_text("{ totally not json")
    assert cache.get(spec.content_hash()) is None
    assert not path.exists()  # corrupt file cleaned up
    # The cell can be re-cached afterwards.
    cache.put(spec, make_result())
    assert cache.get(spec.content_hash()) is not None


def test_truncated_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    path = cache.path_for(spec.content_hash())
    path.write_text(path.read_text()[: 40])  # simulate a torn write
    assert cache.get(spec.content_hash()) is None


def test_version_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    path = cache.path_for(spec.content_hash())
    entry = json.loads(path.read_text())
    entry["cache_version"] = CACHE_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(spec.content_hash()) is None


def test_entry_hash_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    other_hash = "f" * 64
    cache.path_for(spec.content_hash()).rename(cache.path_for(other_hash))
    assert cache.get(other_hash) is None


def test_atomic_write_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path / "results")
    for seed in range(5):
        cache.put(make_job(seed=seed), make_result())
    leftovers = [p for p in (tmp_path / "results").iterdir()
                 if not p.name.endswith(".json")]
    assert leftovers == []


def test_put_failure_is_nonfatal(tmp_path):
    blocker = tmp_path / "results"
    blocker.write_text("a file where the cache directory should be")
    cache = ResultCache(blocker)
    cache.put(make_job(), make_result())  # must not raise
    assert cache.get(make_job().content_hash()) is None
