"""Unit tests for the content-addressed result cache."""

import json

from repro.exec import CACHE_VERSION, JobSpec, ResultCache
from repro.mem.stats import TrafficStats
from repro.sim.config import small_test_config
from repro.sim.results import SimulationResult


def make_result(**overrides):
    base = dict(
        design="morphctr",
        workload="dfs",
        accesses=500,
        instructions=2000,
        cycles=1234.5,
        total_latency=4000,
        l1_miss_rate=0.4,
        l2_miss_rate=0.6,
        llc_miss_rate=0.9,
        ctr_miss_rate=0.8,
        traffic=TrafficStats(data_reads=100, mt_reads=300),
        extra={"prediction_accuracy": 0.875},
    )
    base.update(overrides)
    return SimulationResult(**base)


def make_job(**overrides):
    base = dict(design="morphctr", workload="dfs", config=small_test_config(),
                num_cores=1, trace_length=2000, graph_scale=0.05)
    base.update(overrides)
    return JobSpec(**base)


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec, result = make_job(), make_result()
    cache.put(spec, result)
    loaded = cache.get(spec.content_hash())
    assert loaded is not None
    assert loaded == result  # dataclass equality: every metric identical
    assert cache.hits == 1 and cache.misses == 0


def test_missing_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    assert cache.get("0" * 64) is None
    assert cache.misses == 1
    assert cache.hit_rate == 0.0


def test_corrupt_entry_is_tolerated_and_removed(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    path = cache.path_for(spec.content_hash())
    path.write_text("{ totally not json")
    assert cache.get(spec.content_hash()) is None
    assert not path.exists()  # corrupt file cleaned up
    # The cell can be re-cached afterwards.
    cache.put(spec, make_result())
    assert cache.get(spec.content_hash()) is not None


def test_truncated_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    path = cache.path_for(spec.content_hash())
    path.write_text(path.read_text()[: 40])  # simulate a torn write
    assert cache.get(spec.content_hash()) is None


def test_version_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    path = cache.path_for(spec.content_hash())
    entry = json.loads(path.read_text())
    entry["cache_version"] = CACHE_VERSION + 1
    path.write_text(json.dumps(entry))
    assert cache.get(spec.content_hash()) is None


def test_entry_hash_mismatch_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result())
    other_hash = "f" * 64
    cache.path_for(spec.content_hash()).rename(cache.path_for(other_hash))
    assert cache.get(other_hash) is None


def test_atomic_write_leaves_no_temp_files(tmp_path):
    cache = ResultCache(tmp_path / "results")
    for seed in range(5):
        cache.put(make_job(seed=seed), make_result())
    leftovers = [p for p in (tmp_path / "results").iterdir()
                 if not p.name.endswith(".json")]
    assert leftovers == []


def test_put_failure_is_nonfatal(tmp_path):
    blocker = tmp_path / "results"
    blocker.write_text("a file where the cache directory should be")
    cache = ResultCache(blocker)
    cache.put(make_job(), make_result())  # must not raise
    assert cache.get(make_job().content_hash()) is None


def test_racing_writers_keep_the_first_winner(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    first, second = make_result(cycles=111.0), make_result(cycles=222.0)
    assert cache.put(spec, first) is True
    # A second writer (another server process, or a batch run finishing the
    # same deterministic job) must leave the winner's entry alone.
    assert cache.put(spec, second) is False
    loaded = cache.get(spec.content_hash())
    assert loaded is not None and loaded.cycles == 111.0


def test_loser_never_replaces_after_winner_is_corrupted_away(tmp_path):
    cache = ResultCache(tmp_path / "results")
    spec = make_job()
    cache.put(spec, make_result(cycles=111.0))
    path = cache.path_for(spec.content_hash())
    path.unlink()  # e.g. a corrupt read deleted the entry
    assert cache.put(spec, make_result(cycles=222.0)) is True  # slot is free again
    loaded = cache.get(spec.content_hash())
    assert loaded is not None and loaded.cycles == 222.0


def test_sweep_tmp_removes_stale_and_keeps_fresh(tmp_path):
    import os

    cache = ResultCache(tmp_path / "results")
    cache.put(make_job(), make_result())  # materialise the directory
    stale = cache.directory / "deadbeef.1234.tmp"
    stale.write_text("{torn")
    old = 4000.0
    os.utime(stale, (stale.stat().st_atime - old, stale.stat().st_mtime - old))
    fresh = cache.directory / "cafef00d.5678.tmp"
    fresh.write_text("{in-progress")
    assert cache.sweep_tmp(max_age_s=3600.0) == 1
    assert not stale.exists()
    assert fresh.exists()  # may belong to a live writer
    # Real entries are untouched and the sweep is idempotent.
    assert cache.get(make_job().content_hash()) is not None
    assert cache.sweep_tmp(max_age_s=3600.0) == 0


def test_sweep_tmp_on_missing_directory_is_a_noop(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    assert cache.sweep_tmp() == 0
