"""Unit tests for the RL-based CTR locality predictor (Algorithm 1)."""

from repro.core.config import CosmosConfig, Hyperparameters
from repro.core.locality_predictor import (
    BAD_LOCALITY,
    GOOD_LOCALITY,
    CtrLocalityPredictor,
)


def make_predictor(cet_entries=64, epsilon=0.0, **hyper_kwargs):
    hyper = Hyperparameters(epsilon_c=epsilon, **hyper_kwargs)
    config = CosmosConfig(num_states=1024, cet_entries=cet_entries, hyper=hyper)
    return CtrLocalityPredictor(config)


def test_prediction_returns_action_and_score():
    predictor = make_predictor()
    action, score = predictor.predict(5)
    assert action in (GOOD_LOCALITY, BAD_LOCALITY)
    assert isinstance(score, int)


def test_repeated_line_learns_good_locality():
    predictor = make_predictor()
    for _ in range(300):
        predictor.predict(42)
    action, _ = predictor.predict(42)
    assert action == GOOD_LOCALITY


def test_streaming_lines_learn_bad_locality():
    predictor = make_predictor(cet_entries=16)
    action = None
    for block in range(3000):
        action, _ = predictor.predict(block * 100)  # never re-accessed
    # After the stream, a fresh cold line should be classified bad.
    action, _ = predictor.predict(10_000_000)
    assert action == BAD_LOCALITY


def test_good_fraction_tracks_stream_mix(dfs_trace=None):
    predictor = make_predictor(cet_entries=64)
    # Alternate a hot line with a cold stream: hot accesses should push the
    # good fraction above zero but far below one.
    for index in range(2000):
        predictor.predict(7)
        predictor.predict(1000 + index * 50)
    fraction = predictor.stats.good_fraction
    assert 0.0 < fraction < 1.0


def test_cet_eviction_rewards_applied():
    predictor = make_predictor(cet_entries=4)
    for block in range(100):
        predictor.predict(block * 10)
    assert predictor.stats.cet_evictions > 0


def test_stats_accounting_consistent():
    predictor = make_predictor()
    for block in range(50):
        predictor.predict(block)
    stats = predictor.stats
    assert stats.predictions == 50
    assert stats.cet_hits + stats.cet_misses == 50
    assert stats.rewarded_correct + stats.rewarded_incorrect == 50


def test_grading_accuracy_in_unit_range():
    predictor = make_predictor()
    for block in range(200):
        predictor.predict(block % 10)
    assert 0.0 <= predictor.stats.grading_accuracy <= 1.0


def test_spatially_nearby_lines_count_as_good_evidence():
    predictor = make_predictor()
    predictor.predict(100)
    # The +/-1-line radius makes 101 a CET "hit" (good-locality evidence).
    before = predictor.stats.cet_hits
    predictor.predict(101)
    assert predictor.stats.cet_hits == before + 1


def test_deterministic_with_seed():
    a = make_predictor(epsilon=0.1)
    b = make_predictor(epsilon=0.1)
    out_a = [a.predict(block % 13)[0] for block in range(200)]
    out_b = [b.predict(block % 13)[0] for block in range(200)]
    assert out_a == out_b
