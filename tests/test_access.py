"""Unit tests for the core access data types."""

from repro.mem.access import (
    BLOCK_SHIFT,
    BLOCK_SIZE,
    AccessType,
    MemoryAccess,
    block_base,
    block_of,
)


def test_block_size_constants_consistent():
    assert BLOCK_SIZE == 1 << BLOCK_SHIFT
    assert BLOCK_SIZE == 64


def test_block_address_strips_offset():
    access = MemoryAccess(0x1234)
    assert access.block_address == 0x1234 >> 6


def test_same_block_for_all_offsets():
    base = 0x40000
    blocks = {MemoryAccess(base + offset).block_address for offset in range(64)}
    assert len(blocks) == 1


def test_adjacent_blocks_differ():
    assert MemoryAccess(0).block_address != MemoryAccess(64).block_address


def test_is_write_flag():
    assert MemoryAccess(0, AccessType.WRITE).is_write
    assert not MemoryAccess(0, AccessType.READ).is_write
    assert not MemoryAccess(0).is_write  # reads by default


def test_core_defaults_to_zero():
    assert MemoryAccess(0).core == 0
    assert MemoryAccess(0, AccessType.READ, 3).core == 3


def test_block_of_matches_property():
    for address in (0, 63, 64, 65, 4096, 123456789):
        assert block_of(address) == MemoryAccess(address).block_address


def test_block_base_is_aligned():
    for address in (0, 63, 64, 100, 8191):
        base = block_base(address)
        assert base % 64 == 0
        assert base <= address < base + 64


def test_access_is_hashable_and_frozen():
    access = MemoryAccess(128, AccessType.READ, 1)
    assert access in {access}
    try:
        access.address = 0  # type: ignore[misc]
    except AttributeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("MemoryAccess should be immutable")
