"""Differential oracle: paths, schemes and conservation invariants.

Covers the three cross-check flavours in :mod:`repro.verify.differential`
plus the reporting machinery itself (flatten / diff_dicts / first
divergence), including deliberately-broken inputs so the oracle is known
to *fail* when it should, not just pass on healthy runs.
"""

import random

import pytest

from repro.mem.access import AccessType, MemoryAccess
from repro.secure.counters import make_counter_scheme
from repro.secure.functional import FunctionalSecureMemory
from repro.sim.simulator import SimulationConfig, build_design, Simulator
from repro.verify import (
    Op,
    check_invariants,
    diff_functional,
    diff_paths,
    lockstep_path_pair,
    lockstep_paths,
    run_with_invariants,
)
from repro.verify.differential import diff_dicts, flatten
from repro.workloads.trace import TraceArrays

SCHEMES = ("monolithic", "split", "morphctr")


def make_memory(scheme: str, num_blocks: int = 128, **kwargs) -> FunctionalSecureMemory:
    return FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme), **kwargs
    )


def random_accesses(seed: str, count: int = 400, footprint: int = 256):
    rng = random.Random(seed)
    hot = [rng.randrange(footprint) for _ in range(16)]
    accesses = []
    for _ in range(count):
        block = rng.choice(hot) if rng.random() < 0.6 else rng.randrange(footprint)
        kind = AccessType.WRITE if rng.random() < 0.3 else AccessType.READ
        accesses.append(MemoryAccess(block << 6, kind, core=0))
    return accesses


def random_ops(seed: str, count: int = 120, footprint: int = 64):
    rng = random.Random(seed)
    written = []
    ops = []
    for i in range(count):
        if not written or rng.random() < 0.5:
            block = rng.randrange(footprint)
            ops.append(Op(block=block, is_write=True, payload=f"v{i}".encode()))
            written.append(block)
        else:
            ops.append(Op(block=rng.choice(written), is_write=False))
    return ops


# ----------------------------------------------------------------------
# Reporting machinery
# ----------------------------------------------------------------------
def test_flatten_produces_dotted_scalar_keys():
    nested = {"a": {"b": 1, "c": [10, {"d": 2}]}, "e": None}
    assert flatten(nested) == {"a.b": 1, "a.c[0]": 10, "a.c[1].d": 2, "e": None}


def test_diff_dicts_reports_changed_and_absent_fields_sorted():
    left = {"x": {"y": 1, "only_left": 5}, "same": 3}
    right = {"x": {"y": 2}, "same": 3, "only_right": 7}
    divergences = diff_dicts(left, right)
    assert [d.key for d in divergences] == ["only_right", "x.only_left", "x.y"]
    by_key = {d.key: d for d in divergences}
    assert by_key["x.y"].left == 1 and by_key["x.y"].right == 2
    assert by_key["x.only_left"].right == "<absent>"
    assert by_key["only_right"].left == "<absent>"


def test_diff_dicts_honours_the_divergence_limit():
    left = {f"k{i}": i for i in range(40)}
    right = {f"k{i}": i + 1 for i in range(40)}
    assert len(diff_dicts(left, right, limit=5)) == 5


# ----------------------------------------------------------------------
# Array path vs object path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", ["np", "morphctr", "cosmos", "synergy", "cosmos-synergy"])
def test_array_and_object_paths_agree_byte_for_byte(design):
    report = diff_paths(design, random_accesses(f"paths:{design}"), SimulationConfig())
    assert report.matched, report.to_dict()
    assert not report.divergences


def test_lockstep_paths_agrees_access_by_access():
    accesses = random_accesses("lockstep", count=200)
    assert lockstep_paths("cosmos", accesses, SimulationConfig()) is None


@pytest.mark.parametrize("design", ["np", "cosmos", "synergy"])
def test_arrays_and_batched_paths_agree_byte_for_byte(design):
    report = diff_paths(
        design, random_accesses(f"batched:{design}"), SimulationConfig(),
        path_pair=("arrays", "batched"), epoch=128,
    )
    assert report.matched, report.to_dict()
    assert report.label == f"paths:{design}:arrays-vs-batched"


def test_lockstep_path_pair_agrees_epoch_by_epoch():
    accesses = random_accesses("lockstep-pair", count=500)
    assert lockstep_path_pair(
        "cosmos", TraceArrays.from_accesses(accesses), "arrays", "batched",
        SimulationConfig(), epoch=64,
    ) is None


# ----------------------------------------------------------------------
# Functional memory: scheme vs scheme
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pair", [("monolithic", "split"), ("split", "morphctr"),
                                  ("morphctr", "monolithic")])
def test_counter_schemes_decrypt_identically(pair):
    ops = random_ops(f"func:{pair}")
    report = diff_functional(
        ops, make_memory(pair[0]), make_memory(pair[1]), label=f"{pair[0]}-vs-{pair[1]}"
    )
    assert report.matched, report.to_dict()
    assert report.first_divergence_at is None


class _LyingMemory(FunctionalSecureMemory):
    """Returns garbage for one block — the oracle must localise it."""

    def __init__(self, lie_block: int, **kwargs):
        super().__init__(**kwargs)
        self._lie_block = lie_block

    def read(self, block: int) -> bytes:
        value = super().read(block)
        if block == self._lie_block:
            return bytes(64)
        return value


def test_diff_functional_pinpoints_the_first_divergent_read():
    ops = [
        Op(block=3, is_write=True, payload=b"good"),
        Op(block=7, is_write=True, payload=b"also good"),
        Op(block=7, is_write=False),
        Op(block=3, is_write=False),
    ]
    liar = _LyingMemory(3, num_blocks=64, scheme=make_counter_scheme("split"))
    report = diff_functional(ops, make_memory("monolithic", 64), liar)
    assert not report.matched
    assert report.first_divergence_at == 3
    assert report.divergences[0].key == "read[3].block3"


# ----------------------------------------------------------------------
# Conservation invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", ["np", "emcc", "cosmos", "synergy"])
def test_invariants_hold_on_real_runs(design):
    report = run_with_invariants(design, random_accesses(f"inv:{design}"))
    assert report.matched, report.to_dict()


def run_design(design_name: str, accesses):
    config = SimulationConfig()
    design = build_design(design_name, config)
    Simulator(design, config).run(accesses)
    return design


def test_invariants_catch_unauthenticated_counter_fetches():
    design = run_design("cosmos", random_accesses("corrupt:ctr"))
    design.engine.traffic.ctr_reads += 1  # one fetch "skipped" verification
    problems = check_invariants(design)
    assert any("authenticated exactly once" in p for p in problems)


def test_invariants_catch_reencryption_traffic_mismatch():
    design = run_design("cosmos", random_accesses("corrupt:reenc"))
    design.engine.traffic.reencryption_requests += 3
    problems = check_invariants(design)
    assert any("overflow accounting" in p for p in problems)


def test_invariants_catch_widening_miss_funnel():
    design = run_design("np", random_accesses("corrupt:funnel"))
    design.stats.llc_misses = design.stats.l1_misses + 1
    problems = check_invariants(design)
    assert any("llc_misses" in p for p in problems)
