"""Property-based tests for the counter encodings.

Seeded/hypothesis-generated cases (not hand-picked values) for the two
non-trivial encodings in :mod:`repro.secure.counters`:

* MorphCtr ``pack_line``/``unpack_line`` — the 512-bit DRAM image of a
  morphable counter line must round-trip exactly for every representable
  minor set, in whichever format (uniform / ZCC) the packer chooses, and
  must reject out-of-range inputs loudly rather than truncate.
* Split-counter overflow arithmetic — per-block effective counters must
  be strictly monotonic across minor overflow (the OTP-freshness
  invariant: a repeated (PA, CTR) pair would reuse a one-time pad), and
  each overflow must report a correctly-shaped re-encryption event.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.secure.counters import (
    MorphCtrCounters,
    ReencryptionEvent,
    SplitCounters,
    make_counter_scheme,
)

SLOW = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])

BPC = MorphCtrCounters.blocks_per_ctr  # 128


@st.composite
def representable_minors(draw):
    """A sparse minor dict some MorphCtr format can encode (width <= 63)."""
    if draw(st.booleans()):
        # Uniform family: every minor fits the fixed 3-bit width.
        offsets = draw(st.lists(st.integers(0, BPC - 1), unique=True, max_size=BPC))
        return {o: draw(st.integers(min_value=0, max_value=7)) for o in offsets}
    # ZCC family: bitmap + nnz minors at the widest width within 448 bits.
    width = draw(st.integers(min_value=1, max_value=40))
    max_nnz = (MorphCtrCounters.minor_storage_bits - BPC) // width
    nnz = draw(st.integers(min_value=0, max_value=min(max_nnz, 24)))
    offsets = draw(
        st.lists(st.integers(0, BPC - 1), unique=True, min_size=nnz, max_size=nnz)
    )
    return {o: draw(st.integers(min_value=1, max_value=(1 << width) - 1)) for o in offsets}


# ----------------------------------------------------------------------
# MorphCtr pack/unpack round-trip
# ----------------------------------------------------------------------
@SLOW
@given(major=st.integers(0, (1 << MorphCtrCounters.major_bits) - 1),
       minors=representable_minors())
def test_morphctr_pack_unpack_round_trip(major, minors):
    blob = MorphCtrCounters.pack_line(major, minors)
    assert len(blob) == MorphCtrCounters.LINE_BYTES
    got_major, got_minors, got_format = MorphCtrCounters.unpack_line(blob)
    assert got_major == major
    assert got_minors == {k: v for k, v in minors.items() if v > 0}
    assert got_format == MorphCtrCounters.format_of(minors)


@SLOW
@given(minors=representable_minors())
def test_morphctr_packed_format_matches_declared_preference(minors):
    # The packer must choose exactly the format format_of() reports —
    # uniform whenever it fits, ZCC otherwise.
    _, _, fmt = MorphCtrCounters.unpack_line(MorphCtrCounters.pack_line(0, minors))
    if all(v < (1 << MorphCtrCounters.uniform_minor_bits) for v in minors.values()):
        assert fmt == "uniform"
    else:
        assert fmt == "zcc"


def test_morphctr_pack_rejects_out_of_range_inputs():
    with pytest.raises(ValueError):
        MorphCtrCounters.pack_line(1 << MorphCtrCounters.major_bits, {})
    with pytest.raises(ValueError):
        MorphCtrCounters.pack_line(0, {BPC: 1})
    with pytest.raises(ValueError):
        MorphCtrCounters.pack_line(0, {0: -1})
    with pytest.raises(ValueError):
        MorphCtrCounters.unpack_line(b"\x00" * 63)


def test_morphctr_pack_overflows_on_unrepresentable_minors():
    # 41 eight-bit minors need 128 + 41*8 = 456 > 448 bits and overflow
    # the uniform width too: no format fits.
    assert not MorphCtrCounters.representable({i: 255 for i in range(41)})
    with pytest.raises(OverflowError):
        MorphCtrCounters.pack_line(0, {i: 255 for i in range(41)})


def test_morphctr_pack_overflows_on_width_beyond_format_field():
    # A 64-bit minor is "representable" by the width-agnostic in-memory
    # check but cannot be described by the 6-bit width field of the
    # packed format — pack must refuse rather than alias the width.
    minors = {0: 1 << 63}
    assert MorphCtrCounters.representable(minors)
    with pytest.raises(OverflowError):
        MorphCtrCounters.pack_line(0, minors)


@SLOW
@given(seed=st.integers(0, 2**32 - 1))
def test_morphctr_live_lines_always_pack_and_round_trip(seed):
    # Whatever state random increments drive a line into, its snapshot
    # must serialise to the 512-bit image and round-trip exactly.
    rng = random.Random(seed)
    scheme = make_counter_scheme("morphctr")
    for _ in range(300):
        scheme.increment(rng.randrange(2 * BPC))
    for line_index in (0, 1):
        major, minors = scheme.snapshot_line(line_index)
        blob = MorphCtrCounters.pack_line(major, minors)
        got_major, got_minors, _ = MorphCtrCounters.unpack_line(blob)
        assert (got_major, got_minors) == (major, {k: v for k, v in minors.items() if v})


# ----------------------------------------------------------------------
# Split-counter overflow arithmetic
# ----------------------------------------------------------------------
@SLOW
@given(seed=st.integers(0, 2**32 - 1))
def test_split_counters_strictly_monotonic_across_overflow(seed):
    rng = random.Random(seed)
    scheme = SplitCounters()
    bpc = scheme.blocks_per_ctr
    # Hammer a small hot set within one line so minor overflow actually
    # happens (7-bit minors overflow after 127 bumps of one block).
    hot = [rng.randrange(bpc) for _ in range(2)]
    last = {b: scheme.counter_value(b) for b in range(bpc)}
    overflows = 0
    for _ in range(400):
        block = rng.choice(hot)
        before_others = {b: scheme.counter_value(b) for b in range(bpc) if b != block}
        event = scheme.increment(block)
        value = scheme.counter_value(block)
        # OTP freshness: the written block's effective counter strictly
        # increases on every single write, including the overflow write.
        assert value > last[block]
        last[block] = value
        for b, before in before_others.items():
            after = scheme.counter_value(b)
            assert after >= before  # neighbours never roll back
            last[b] = after
        if event is not None:
            overflows += 1
            assert isinstance(event, ReencryptionEvent)
            assert event.ctr_index == scheme.ctr_index(block)
            assert event.first_data_block == event.ctr_index * bpc
            assert event.num_blocks == bpc
            assert event.dram_requests == 2 * bpc
    assert overflows >= 1, "trace never exercised minor overflow"


def test_split_overflow_bumps_major_and_resets_minors():
    scheme = SplitCounters()
    for _ in range(127):
        assert scheme.increment(0) is None
    event = scheme.increment(0)
    assert event is not None
    major, minors = scheme.snapshot_line(0)
    assert major == 1
    assert minors == {}
    # Values keep increasing after the reset.
    assert scheme.counter_value(0) == 1 << scheme.minor_bits
    scheme.increment(0)
    assert scheme.counter_value(0) == (1 << scheme.minor_bits) | 1


@SLOW
@given(seed=st.integers(0, 2**32 - 1))
def test_split_snapshot_restore_round_trips_line_state(seed):
    rng = random.Random(seed)
    scheme = SplitCounters()
    for _ in range(150):
        scheme.increment(rng.randrange(scheme.blocks_per_ctr))
    snapshot = scheme.snapshot_line(0)
    values = [scheme.counter_value(b) for b in range(scheme.blocks_per_ctr)]
    scheme.increment(rng.randrange(scheme.blocks_per_ctr))
    scheme.restore_line(0, snapshot)
    assert [scheme.counter_value(b) for b in range(scheme.blocks_per_ctr)] == values
