"""Aggressor workload generators: structure, determinism, benign floor.

The generators emit plain reads/writes; what makes them hammers is the
bank/row structure — checked here by decoding every trace through the
same geometry the planner assumes.  The below-threshold regression pins
the other side of the contract: ordinary zipf/db/graph tenants at the
default geometry never earn a disturbance flip.
"""

import numpy as np
import pytest

from repro.mem.dram import DramModel, DramTimings
from repro.verify.hammer import HammerConfig, ops_from_trace, plan_hammer
from repro.secure.counters import make_counter_scheme
from repro.secure.functional import FunctionalSecureMemory
from repro.workloads.hammer import HAMMER_WORKLOADS, generate_hammer_trace


def _geometry(row_blocks=4, num_banks=2, num_channels=1):
    return DramModel(
        timings=DramTimings(refresh_interval=0),
        num_banks=num_banks,
        num_channels=num_channels,
        row_size_bytes=row_blocks * 64,
    )


def _memory(num_blocks=1 << 12, scheme="monolithic"):
    return FunctionalSecureMemory(
        num_blocks=num_blocks, scheme=make_counter_scheme(scheme)
    )


@pytest.mark.parametrize("workload", HAMMER_WORKLOADS)
def test_same_seed_byte_identical(workload):
    a = generate_hammer_trace(workload, seed=5, max_accesses=800).arrays()
    b = generate_hammer_trace(workload, seed=5, max_accesses=800).arrays()
    assert np.array_equal(a.addresses, b.addresses)
    assert np.array_equal(a.types, b.types)
    assert np.array_equal(a.cores, b.cores)


def test_different_seed_moves_the_victim():
    rows = {
        generate_hammer_trace("hammer-double", seed=s).metadata["victim_row"]
        for s in range(8)
    }
    assert len(rows) > 1


@pytest.mark.parametrize("workload", HAMMER_WORKLOADS)
def test_aggressors_alternate_rows_in_one_bank(workload):
    """Consecutive aggressor accesses must re-open rows of a single bank."""
    trace = generate_hammer_trace(workload, seed=0, max_accesses=600, start=0)
    arrays = trace.arrays()
    geometry = _geometry()
    hammer_core = int(arrays.cores.max())
    mask = (arrays.cores == hammer_core) & (arrays.types != 1)  # reads only
    blocks = (arrays.addresses[mask] >> 6).tolist()
    assert len(blocks) > 100
    decoded = [geometry.decode(block) for block in blocks]
    banks = {(channel, bank) for channel, bank, _, _ in decoded}
    assert banks == {(0, 0)}
    for prev, cur in zip(decoded, decoded[1:]):
        assert prev[2] != cur[2], "same row twice in a row = row hit, no ACT"


def test_aggressor_rows_sandwich_the_victim():
    trace = generate_hammer_trace("hammer-double", seed=0)
    victim = trace.metadata["victim_row"]
    assert trace.metadata["aggressor_rows"] == [victim - 1, victim + 1]
    many = generate_hammer_trace("hammer-many", seed=0)
    victim = many.metadata["victim_row"]
    assert many.metadata["aggressor_rows"] == [
        victim - 3, victim - 1, victim + 1, victim + 3
    ]


def test_mixed_carries_a_benign_tenant():
    trace = generate_hammer_trace("hammer-mixed", seed=0, max_accesses=1000)
    arrays = trace.arrays()
    cores = set(arrays.cores.tolist())
    assert cores == {0, 1}
    benign = arrays.addresses[arrays.cores == 0]
    hammer = arrays.addresses[arrays.cores == 1]
    assert len(benign) > 0 and len(hammer) > 0
    # Tenant footprint is disjoint from the aggressor rows.
    assert int(benign.min()) >= int(hammer.max())


def test_prologue_writes_victim_row():
    trace = generate_hammer_trace("hammer-single", seed=0, start=0)
    arrays = trace.arrays()
    geometry = _geometry()
    victim = trace.metadata["victim_row"]
    write_rows = {
        geometry.decode(int(a) >> 6)[2]
        for a in arrays.addresses[arrays.is_write]
    }
    assert victim in write_rows


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        generate_hammer_trace("hammer-sideways")


def test_registered_in_bench_runner():
    from repro.bench.runner import _generate

    trace = _generate("hammer-double", num_cores=2, length=512, scale=1.0, seed=3)
    assert trace.name == "hammer-double"
    assert len(trace.arrays()) == 512


def test_listed_by_cli():
    from repro.__main__ import build_parser, main

    assert build_parser() is not None
    assert main(["list"]) == 0


def test_trace_simulates_with_activity():
    """Hammer traces run through the full simulator like any workload."""
    from repro.sim.config import small_test_config
    from repro.sim.simulator import simulate

    trace = generate_hammer_trace("hammer-double", num_cores=2, max_accesses=2000)
    result = simulate("np", trace, small_test_config(num_cores=2),
                      workload="hammer-double")
    assert result.cycles > 0


@pytest.mark.parametrize("workload", HAMMER_WORKLOADS)
def test_every_pattern_earns_flips(workload):
    """Each aggressor pattern crosses threshold at the default geometry."""
    trace = generate_hammer_trace(workload, num_cores=2, seed=1, start=0,
                                  max_accesses=1200)
    ops = ops_from_trace(trace, 1 << 12)
    plan = plan_hammer(ops, _memory(), HammerConfig(), seed=1)
    assert plan.flips, f"{workload} never crossed threshold"
    assert plan.max_pressure >= HammerConfig().threshold


# ----------------------------------------------------------------------
# Below-threshold regression: benign tenants never flip
# ----------------------------------------------------------------------
def _benign_traces():
    from repro.workloads.db import generate_db_trace
    from repro.workloads.graph_algos import generate_graph_trace
    from repro.workloads.micro import zipf_trace

    yield "zipf", zipf_trace(n=2000, footprint_blocks=1 << 12, start=0, seed=0)
    yield "db", generate_db_trace("ycsb", num_cores=2, max_accesses=2000)
    yield "graph", generate_graph_trace("bfs", num_cores=2, max_accesses=2000,
                                        graph_scale=0.05)


def test_benign_workloads_plan_zero_flips():
    config = HammerConfig()
    memory = _memory()
    for name, trace in _benign_traces():
        ops = ops_from_trace(trace, 1 << 12)
        plan = plan_hammer(ops, memory, config, seed=0)
        assert not plan.flips, (
            f"{name}: benign trace earned {len(plan.flips)} flips "
            f"(max pressure {plan.max_pressure} vs threshold {config.threshold})"
        )
        assert plan.max_pressure < config.threshold, name
