"""Unit tests for the benchmark runner (trace cache, env knobs)."""

import os

import pytest

from repro.bench import runner
from repro.workloads.graph_algos import GRAPH_WORKLOADS


@pytest.fixture
def quick_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "2000")
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.02")
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "traces")
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()
    yield
    runner._MEMORY_CACHE.clear()
    runner._RESULT_CACHE.clear()


def test_trace_length_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_LEN", "1234")
    monkeypatch.delenv("REPRO_QUICK", raising=False)
    assert runner.trace_length() == 1234
    monkeypatch.setenv("REPRO_QUICK", "1")
    assert runner.trace_length() == 246


def test_graph_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_GRAPH_SCALE", "0.5")
    assert runner.graph_scale() == 0.5


def test_get_trace_generates_and_caches(quick_env):
    trace = runner.get_trace("dfs")
    assert len(trace) == 2000
    again = runner.get_trace("dfs")
    assert again is trace  # in-memory cache hit


def test_disk_cache_roundtrip(quick_env):
    trace = runner.get_trace("bfs")
    runner._MEMORY_CACHE.clear()
    reloaded = runner.get_trace("bfs")
    assert reloaded is not trace
    assert len(reloaded) == len(trace)
    assert [a.address for a in reloaded][:50] == [a.address for a in trace][:50]
    assert [a.core for a in reloaded][:50] == [a.core for a in trace][:50]


@pytest.mark.parametrize("workload", ["mcf", "dlrm", "mlp"])
def test_get_trace_covers_all_generators(quick_env, workload):
    assert len(runner.get_trace(workload)) == 2000


def test_get_trace_rejects_unknown(quick_env):
    with pytest.raises(ValueError):
        runner.get_trace("nonexistent")


def test_run_design_result_cache(quick_env):
    first = runner.run_design("np", "dfs")
    second = runner.run_design("np", "dfs")
    assert second is first  # memoised under the default config


def test_run_matrix_shape(quick_env):
    matrix = runner.run_matrix(["np", "morphctr"], ["dfs"])
    assert set(matrix) == {"dfs"}
    assert set(matrix["dfs"]) == {"np", "morphctr"}
    assert matrix["dfs"]["morphctr"].ctr_miss_rate >= 0.0


def test_default_config_is_scaled_table3():
    config = runner.default_config()
    assert config.hierarchy.num_cores == 4
    assert config.hierarchy.llc.size_bytes == 512 * 1024


def test_all_paper_workloads_resolvable():
    # Every workload named by the figures maps to a generator.
    from repro.workloads.ml import ML_WORKLOADS
    from repro.workloads.spec import SPEC_WORKLOADS

    names = list(GRAPH_WORKLOADS) + list(SPEC_WORKLOADS) + list(ML_WORKLOADS) + ["mlp"]
    for name in names:
        runner._generate(name, num_cores=1, length=64, scale=0.02)


def test_cache_dir_is_lazy(monkeypatch, tmp_path):
    # No module-level override: the environment knob is honoured at call
    # time, not frozen at import time.
    monkeypatch.setattr(runner, "CACHE_DIR", None)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "fromenv"))
    assert runner.cache_dir() == tmp_path / "fromenv"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert runner.cache_dir().name == ".trace_cache"
    # An explicit override (what tests use) wins over everything.
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "explicit")
    assert runner.cache_dir() == tmp_path / "explicit"


def test_run_design_matrix_shape_and_memo_sharing(quick_env):
    matrix = runner.run_design_matrix(["np", "morphctr"], ["dfs"], jobs=1)
    assert set(matrix) == {"dfs"}
    assert set(matrix["dfs"]) == {"np", "morphctr"}
    # Default-config cells land in the same in-process memo run_design uses.
    assert runner.run_design("np", "dfs") is matrix["dfs"]["np"]


def test_run_design_matrix_disk_cache_hit(quick_env):
    runner.run_design_matrix(["np"], ["dfs"], jobs=1)
    runner._RESULT_CACHE.clear()
    runner._MEMORY_CACHE.clear()
    again = runner.run_design_matrix(["np"], ["dfs"], jobs=1)
    assert again["dfs"]["np"].accesses == 2000
    assert len(list((runner.cache_dir() / "results").glob("*.json"))) == 1


def test_save_trace_is_atomic_no_temp_leftovers(quick_env):
    runner.get_trace("dfs")
    leftovers = [p for p in runner.cache_dir().iterdir()
                 if ".tmp" in p.name]
    assert leftovers == []


def test_get_trace_regenerates_truncated_cache_file(quick_env):
    trace = runner.get_trace("dfs", num_cores=1)
    (path,) = list(runner.cache_dir().glob("dfs-*.npz"))
    path.write_bytes(path.read_bytes()[:200])  # torn mid-copy
    runner._MEMORY_CACHE.clear()
    again = runner.get_trace("dfs", num_cores=1)
    assert [a for a in again.arrays().addresses] == [a for a in trace.arrays().addresses]
    # The torn file was replaced by a loadable regeneration.
    (path,) = list(runner.cache_dir().glob("dfs-*.npz"))
    assert path.stat().st_size > 200
