"""Tests for the DRAM calibration harness (repro.mem.calibrate)."""

import json
from dataclasses import replace
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.mem.calibrate import (
    CalibrationProfile,
    ReferenceCurve,
    available_profiles,
    blp_curve,
    compare_curve,
    curve_error,
    fit_timings,
    load_profile,
    load_reference,
    pin_profile,
    refresh_probe,
    row_hit_ladder,
    run_calibration,
    run_microbenchmarks,
    turnaround_sweep,
)
from repro.mem.calibrate.patterns import Curve
from repro.mem.dram import DramModel, DramTimings


def ddr4():
    return DramModel()


# ----------------------------------------------------------------------
# Microbenchmark patterns
# ----------------------------------------------------------------------
class TestPatterns:
    def test_row_hit_ladder_monotone_decreasing(self):
        curve = row_hit_ladder(ddr4, requests=512)
        assert curve.ys == sorted(curve.ys, reverse=True)
        assert all(a < b for a, b in zip(curve.ys[1:], curve.ys[:-1]))
        # Endpoints bracket the pure-hit / pure-miss read latencies.
        timings = DramTimings()
        assert curve.ys[-1] < curve.ys[0]
        assert curve.ys[0] >= timings.row_miss_latency
        assert curve.ys[-1] >= timings.row_hit_latency

    def test_row_hit_ladder_hit_rates_match_rung(self):
        curve = row_hit_ladder(ddr4, hits_per_row=(1, 4), requests=512)
        expected = [0.0, 0.75]
        for got, want in zip(curve.extra["row_hit_rate"], expected):
            assert abs(got - want) < 0.02

    def test_turnaround_sweep_monotone_decreasing(self):
        curve = turnaround_sweep(ddr4, requests=256)
        assert all(a < b for a, b in zip(curve.ys[1:], curve.ys[:-1]))

    def test_turnaround_sweep_counts_grant_order_switches(self):
        # Period p over n requests flips floor((n-1)/p)-ish times; all of
        # them delay a burst in a bus-saturating stream, so the counted
        # turnarounds must track the commanded switch density exactly.
        curve = turnaround_sweep(ddr4, periods=(1, 4, 16), requests=256)
        counts = curve.extra["turnarounds"]
        assert counts[0] == 255  # every request switches direction
        assert counts[1] == 63
        assert counts[2] == 15

    def test_turnaround_sweep_detects_broken_accounting(self):
        """The sweep separates grant-order from no-turnaround models.

        A model with turnaround zeroed out must fall outside the pinned
        band at short periods — this is the curve that exposed the
        issue-order accounting bug.
        """
        good = turnaround_sweep(ddr4, requests=256)
        reference = ReferenceCurve.from_curve(good)

        def no_turnaround():
            return DramModel(timings=replace(DramTimings(), turnaround=0))

        broken = turnaround_sweep(no_turnaround, requests=256)
        comparison = compare_curve(broken, reference)
        assert not comparison.ok
        assert not comparison.points[0].ok  # shortest period diverges most

    def test_blp_curve_flattens_at_num_banks(self):
        curve = blp_curve(ddr4, banks_used=(1, 2, 4, 8, 16, 32), requests=128)
        model = ddr4()
        # The x grid is clamped to the geometry...
        assert max(curve.xs) == model.num_banks
        # ...so the last two points (16 and clamped 32) are identical,
        # while utilisation strictly improves up to the bank count.
        assert curve.ys[-1] == curve.ys[-2]
        ramp = curve.ys[: curve.xs.index(float(model.num_banks)) + 1]
        assert all(a < b for a, b in zip(ramp[:-1], ramp[1:]))

    def test_refresh_probe_measures_interference(self):
        curve = refresh_probe(ddr4, gaps=(64, 1024), windows=4)
        # Both gaps are below saturation, so stalls are visible and the
        # differenced overhead is strictly positive.
        assert all(y > 0 for y in curve.ys)
        assert all(s >= 3 for s in curve.extra["refresh_stalls"])

    def test_refresh_probe_requires_refresh(self):
        def no_refresh():
            return DramModel(timings=replace(DramTimings(), refresh_interval=0))

        with pytest.raises(ValueError):
            refresh_probe(no_refresh)

    def test_suite_is_deterministic(self):
        first = run_microbenchmarks(ddr4, requests=256)
        second = run_microbenchmarks(ddr4, requests=256)
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]

    def test_include_filters_by_name(self):
        curves = run_microbenchmarks(ddr4, requests=128, include=["blp_curve"])
        assert [c.name for c in curves] == ["blp_curve"]


# ----------------------------------------------------------------------
# Reference comparison
# ----------------------------------------------------------------------
class TestComparator:
    def test_identical_curves_pass(self):
        curve = blp_curve(ddr4, requests=64)
        comparison = compare_curve(curve, ReferenceCurve.from_curve(curve))
        assert comparison.ok
        assert comparison.max_rel_err == 0.0

    def test_point_outside_band_fails(self):
        curve = Curve("c", "x", "y", xs=[1.0, 2.0], ys=[100.0, 200.0])
        reference = ReferenceCurve(
            name="c", xs=[1.0, 2.0], ys=[100.0, 170.0], tol_rel=0.05, tol_abs=1.0
        )
        comparison = compare_curve(curve, reference)
        assert not comparison.ok
        assert [p.ok for p in comparison.points] == [True, False]

    def test_band_uses_max_of_abs_and_rel(self):
        reference = ReferenceCurve(
            name="c", xs=[1.0], ys=[10.0], tol_rel=0.1, tol_abs=2.0
        )
        assert reference.band(10.0) == 2.0  # abs floor wins at small values
        assert reference.band(100.0) == 10.0

    def test_mismatched_grid_is_an_error(self):
        curve = Curve("c", "x", "y", xs=[1.0, 2.0], ys=[1.0, 2.0])
        reference = ReferenceCurve(name="c", xs=[1.0, 3.0], ys=[1.0, 2.0])
        with pytest.raises(ValueError):
            compare_curve(curve, reference)


# ----------------------------------------------------------------------
# Pinned profiles
# ----------------------------------------------------------------------
class TestProfiles:
    def test_builtin_profiles_ship(self):
        names = available_profiles()
        assert "ddr4-2400" in names
        assert "ddr5-4800" in names

    def test_ddr4_profile_matches_model_defaults(self):
        profile = load_profile("ddr4-2400")
        assert profile.timings == DramTimings()
        model = profile.build_model()
        assert model.num_banks == 16
        assert model.num_channels == 1

    def test_pinned_calibration_passes(self):
        profile = load_profile("ddr4-2400")
        report = run_calibration(profile)
        assert report.ok, [c.to_dict() for c in report.comparisons if not c.ok]
        assert {c.name for c in report.comparisons} == {
            "row_hit_ladder",
            "turnaround_sweep",
            "blp_curve",
            "refresh_probe",
        }

    def test_perturbed_timings_fail_calibration(self):
        profile = load_profile("ddr4-2400")
        slow = replace(profile, timings=replace(profile.timings, cas=60))
        report = run_calibration(slow, references=load_reference("ddr4-2400"))
        assert not report.ok

    def test_pin_round_trips(self, tmp_path):
        profile = CalibrationProfile(
            name="tiny", timings=DramTimings(), description="round trip"
        )
        path = pin_profile(profile, directory=tmp_path, requests=128)
        assert path == tmp_path / "tiny.json"
        loaded = load_profile("tiny", directory=tmp_path)
        assert loaded.timings == profile.timings
        assert loaded.description == "round trip"
        references = load_reference("tiny", directory=tmp_path)
        assert {r.name for r in references} == {
            "row_hit_ladder",
            "turnaround_sweep",
            "blp_curve",
            "refresh_probe",
        }
        report = run_calibration(loaded, references=references, requests=128)
        assert report.ok

    def test_unknown_profile_lists_available(self):
        with pytest.raises(FileNotFoundError, match="ddr4-2400"):
            load_profile("ddr9-nope")

    def test_format_version_checked(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="format 99"):
            load_profile("bad", directory=tmp_path)


# ----------------------------------------------------------------------
# Fitter
# ----------------------------------------------------------------------
def _quick_refs(timings):
    factory = lambda: DramModel(timings=timings)
    curves = run_microbenchmarks(
        factory, requests=192, include=["row_hit_ladder", "turnaround_sweep"]
    )
    return [ReferenceCurve.from_curve(c) for c in curves]


class TestFitter:
    def test_curve_error_zero_for_identical(self):
        curve = row_hit_ladder(ddr4, requests=128)
        assert curve_error(curve, ReferenceCurve.from_curve(curve)) == 0.0

    def test_fit_recovers_perturbed_knobs(self):
        true = DramTimings()
        refs = _quick_refs(true)
        perturbed = replace(true, cas=51, turnaround=16)
        result = fit_timings(
            refs, initial=perturbed, seed=0, requests=192, max_rounds=4
        )
        assert result.error < result.initial_error
        assert result.error < 0.05
        # The ladder only observes tRP+tRCD+tCL summed, so check the sum.
        fitted = result.timings
        true_sum = true.rp + true.rcd + true.cas
        assert abs((fitted.rp + fitted.rcd + fitted.cas) - true_sum) <= 3

    def test_fit_already_optimal_is_a_noop(self):
        true = DramTimings()
        refs = _quick_refs(true)
        result = fit_timings(
            refs, initial=true, seed=0, requests=192, max_rounds=2
        )
        assert result.error == 0.0
        assert result.adjusted == {}

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_fit_is_deterministic_for_fixed_seed(self, seed):
        refs = _quick_refs(DramTimings())
        perturbed = replace(DramTimings(), cas=45)
        first = fit_timings(
            refs, initial=perturbed, seed=seed, requests=192,
            knobs=("cas", "turnaround"), max_rounds=2,
        )
        second = fit_timings(
            refs, initial=perturbed, seed=seed, requests=192,
            knobs=("cas", "turnaround"), max_rounds=2,
        )
        assert first.to_dict() == second.to_dict()
        assert first.timings == second.timings


# ----------------------------------------------------------------------
# Config wiring
# ----------------------------------------------------------------------
class TestConfigWiring:
    def test_engine_builds_dram_from_profile(self):
        from repro.secure.engine import EngineConfig, SecureMemoryEngine
        from repro.secure.layout import SecureLayout

        layout = SecureLayout(data_blocks=1 << 14)
        config = EngineConfig(dram_profile="ddr5-4800")
        engine = SecureMemoryEngine(layout, config=config)
        assert engine.dram.num_banks == 32
        assert engine.dram.timings.burst == 10

    def test_explicit_dram_wins_over_profile(self):
        from repro.mem.dram import DramModel
        from repro.secure.engine import EngineConfig, SecureMemoryEngine
        from repro.secure.layout import SecureLayout

        layout = SecureLayout(data_blocks=1 << 14)
        explicit = DramModel()
        engine = SecureMemoryEngine(
            layout, config=EngineConfig(dram_profile="ddr5-4800"), dram=explicit
        )
        assert engine.dram is explicit

    def test_with_ctr_cache_bytes_preserves_engine_knobs(self):
        from repro.sim.config import SimulationConfig

        config = SimulationConfig()
        config.engine.dram_profile = "ddr4-2400"
        config.engine.mac_in_ecc = True
        config.engine.ctr_policy_name = "rrip"
        resized = config.with_ctr_cache_bytes(64 * 1024)
        assert resized.engine.ctr_cache_bytes == 64 * 1024
        assert resized.engine.dram_profile == "ddr4-2400"
        assert resized.engine.mac_in_ecc is True
        assert resized.engine.ctr_policy_name == "rrip"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_verify_dram_calib_passes_and_writes_artifact(self, tmp_path, capsys):
        from repro.__main__ import build_parser

        out = tmp_path / "calib" / "report.json"
        parser = build_parser()
        args = parser.parse_args(
            ["verify", "dram-calib", "--profile", "ddr4-2400", "--out", str(out)]
        )
        assert args.func(args) == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["profiles"]["ddr4-2400"]["ok"] is True
        capsys.readouterr()

    def test_verify_dram_calib_fails_on_budget_mismatch(self, capsys):
        # A different request budget shifts the backlog-dominated sweeps
        # outside their bands — the check must notice, not shrug.
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["verify", "dram-calib", "--profile", "ddr4-2400",
             "--requests", "512"]
        )
        assert args.func(args) == 1
        capsys.readouterr()
