"""Tests for the database-kernel workloads."""

import pytest

from repro.workloads.analysis import characterize
from repro.workloads.db import DB_WORKLOADS, generate_db_trace


def test_workload_names():
    assert set(DB_WORKLOADS) == {"hashjoin", "btree", "ycsb"}


@pytest.mark.parametrize("workload", DB_WORKLOADS)
def test_generates_requested_length(workload):
    trace = generate_db_trace(workload, num_cores=2, max_accesses=4000)
    assert len(trace) == 4000
    assert trace.name == workload


def test_unknown_workload():
    with pytest.raises(ValueError):
        generate_db_trace("olap")


def test_deterministic():
    a = generate_db_trace("ycsb", num_cores=1, max_accesses=2000, seed=9)
    b = generate_db_trace("ycsb", num_cores=1, max_accesses=2000, seed=9)
    assert [x.address for x in a] == [x.address for x in b]


def test_hash_join_probe_is_irregular():
    trace = generate_db_trace("hashjoin", num_cores=1, max_accesses=8000,
                              working_set=30_000)
    result = characterize(trace.accesses)
    assert result.sequential_fraction < 0.6  # scans + random bucket probes


def test_btree_has_hot_root_and_cold_leaves():
    trace = generate_db_trace("btree", num_cores=1, max_accesses=10_000,
                              working_set=100_000)
    counts = {}
    for access in trace:
        counts[access.block_address] = counts.get(access.block_address, 0) + 1
    frequencies = sorted(counts.values(), reverse=True)
    # Root node lines are orders of magnitude hotter than a median leaf.
    assert frequencies[0] > 20 * frequencies[len(frequencies) // 2]


def test_ycsb_read_heavy():
    trace = generate_db_trace("ycsb", num_cores=1, max_accesses=10_000)
    assert trace.write_fraction < 0.15  # 95/5 read/update mix


def test_ycsb_skewed_popularity():
    trace = generate_db_trace("ycsb", num_cores=1, max_accesses=10_000,
                              working_set=50_000)
    result = characterize(trace.accesses)
    # 80% of operations hit the hot 1% of records; with multi-line records
    # and index blocks the hottest 1% of *blocks* still carry a big share.
    uniform_reference = characterize(
        generate_db_trace("hashjoin", num_cores=1, max_accesses=10_000,
                          working_set=50_000).accesses
    )
    assert result.top1pct_block_share > 0.05
    assert result.top1pct_block_share > uniform_reference.top1pct_block_share


def test_per_core_partitions_disjoint():
    trace = generate_db_trace("btree", num_cores=2, max_accesses=4000)
    blocks = {0: set(), 1: set()}
    for access in trace:
        blocks[access.core].add(access.block_address)
    assert not (blocks[0] & blocks[1])


def test_simulates_end_to_end():
    from repro.sim.config import small_test_config
    from repro.sim.simulator import simulate

    trace = generate_db_trace("hashjoin", num_cores=1, max_accesses=6000)
    result = simulate("cosmos", trace, small_test_config(), workload="hashjoin")
    assert result.accesses == 6000
